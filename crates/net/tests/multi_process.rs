//! Multi-process acceptance tests: the net backend must actually cross
//! process boundaries (distinct worker PIDs), preserve the exactly-once
//! window/round semantics of the thread backend, and leave no orphaned
//! `plasma-server` processes behind.

use plasma_backend::{BackendKind, Delivery, Execution, ExecutionBackend};
use plasma_net::{NetBackend, NetConfig};
use std::path::PathBuf;

fn config(groups: u32) -> NetConfig {
    NetConfig {
        groups,
        worker_bin: Some(PathBuf::from(env!("CARGO_BIN_EXE_plasma-server"))),
    }
}

/// Drives the same event stream the backend crate's unit parity test uses
/// and checks the window balances across two real processes.
#[test]
fn two_processes_carry_and_verify_a_window() {
    let mut b = NetBackend::launch(config(2)).expect("launch workers");

    // ≥ 2 distinct worker processes, none of which is this process: the
    // acceptance criterion that the backend is genuinely multi-process.
    let pids = b.worker_pids();
    assert_eq!(pids.len(), 2);
    assert_ne!(pids[0], pids[1], "groups must be separate processes");
    assert!(pids.iter().all(|&p| p != std::process::id()));
    assert_eq!(b.stats().workers_spawned, 2);

    b.server_up(0, 2);
    b.server_up(1, 2);
    for i in 0..10u64 {
        b.transmit(Delivery {
            server: (i % 2) as u32,
            actor: i,
            bytes: 64,
            remote: i % 2 == 1,
        });
        b.execute(Execution {
            server: (i % 2) as u32,
            actor: i,
            service_ns: 1_000,
        });
    }
    let w = b.window_close(1);
    assert!(w.matched, "window must verify exactly-once carriage");
    assert_eq!(w.deliveries, 10);
    assert_eq!(w.executions, 10);
    b.round_barrier(1);

    let s = b.stats();
    assert_eq!(s.kindless(), (10, 10, 1, 0, 1));
    assert!(s.frames_sent > 0 && s.frames_received > 0);
    assert!(s.wire_bytes_sent > 0 && s.wire_bytes_received > 0);
    assert!(s.max_inflight_frames > 0);
    assert_eq!(b.kind(), BackendKind::Net);

    b.shutdown();
}

/// Extension trait keeping the assertion above readable.
trait Kindless {
    fn kindless(&self) -> (u64, u64, u64, u64, u64);
}

impl Kindless for plasma_backend::BackendStats {
    fn kindless(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.deliveries,
            self.executions,
            self.windows_closed,
            self.window_mismatches,
            self.rounds,
        )
    }
}

/// A server retired mid-window still has its partial carriage folded into
/// the next barrier — the retired-drain path.
#[test]
fn retired_server_carriage_folds_into_next_window() {
    let mut b = NetBackend::launch(config(2)).expect("launch workers");
    b.server_up(0, 2);
    b.server_up(1, 2);
    for i in 0..6u64 {
        b.transmit(Delivery {
            server: (i % 2) as u32,
            actor: i,
            bytes: 32,
            remote: false,
        });
    }
    // Server 1 crashes mid-window: its 3 deliveries must not vanish.
    b.server_down(1);
    let w = b.window_close(1);
    assert!(w.matched, "retired carriage must balance the window");
    assert_eq!(w.deliveries, 6);

    // Deliveries to a down server are dropped coordinator-side, exactly
    // like the thread backend's unknown-server semantics.
    b.transmit(Delivery {
        server: 1,
        actor: 99,
        bytes: 32,
        remote: false,
    });
    let w2 = b.window_close(2);
    assert!(w2.matched);
    assert_eq!(w2.deliveries, 0);
    b.shutdown();
}

/// GEM control traffic rides the same per-group TCP connections: reports
/// published to workers come back bit-for-bit as query candidates, the
/// decision broadcast reaches every group, and the window barrier still
/// balances with control frames in flight.
#[test]
fn control_queries_cross_processes_and_balance_windows() {
    use plasma_backend::{ControlDecision, ControlMsg, ControlQuery, MigrationOrder, ServerReport};
    let mut b = NetBackend::launch(config(2)).expect("launch workers");
    b.server_up(0, 2);
    b.server_up(1, 2);
    let mk = |server: u32, cpu: f64| ServerReport {
        server,
        vcpus: 2,
        actor_count: 3,
        mem_bytes: 1 << 30,
        total_speed_bits: 2.0f64.to_bits(),
        net_bps_bits: 1e9f64.to_bits(),
        cpu_bits: cpu.to_bits(),
        mem_bits: 0.25f64.to_bits(),
        net_bits: 0.1f64.to_bits(),
    };
    let r0 = mk(0, 0.9);
    let r1 = mk(1, 0.2);
    b.publish_report(7, &r0);
    b.publish_report(7, &r1);
    let q = ControlQuery {
        gem: 0,
        round: 1,
        generation: 7,
        upper_bits: 0.8f64.to_bits(),
        lower_bits: 0.3f64.to_bits(),
        scope: vec![1, 0],
    };
    let replies = b.control(&ControlMsg::Query(q.clone()));
    assert_eq!(replies.len(), 2, "one reply per group with in-scope servers");
    // Group 0 holds the hot server, group 1 the idle one; each votes from
    // its own holdings.
    assert!(replies[0].vote_out && !replies[0].vote_in);
    assert!(!replies[1].vote_out && replies[1].vote_in);
    // Reassembling candidates in scope order across the per-group replies
    // recovers exactly what was published — the bit-parity property the
    // EMR's merge step relies on.
    let mut merged = Vec::new();
    for &s in &q.scope {
        for rep in &replies {
            if let Some(c) = rep.candidates.iter().find(|c| c.server == s) {
                merged.push(*c);
            }
        }
    }
    assert_eq!(merged, vec![r1, r0]);
    let out = b.control(&ControlMsg::Decision(ControlDecision {
        round: 1,
        grow: 1,
        shrink: 0,
        migrations: vec![MigrationOrder {
            actor: 5,
            src: 0,
            dst: 1,
        }],
    }));
    assert!(out.is_empty());
    let w = b.window_close(1);
    assert!(w.matched, "control carriage must balance the window barrier");
    let s = b.stats();
    assert_eq!(s.control_reports, 2);
    assert_eq!(s.control_queries, 1);
    assert_eq!(s.control_replies, 2);
    assert_eq!(s.control_decisions, 1);
    assert!(s.control_wire_bytes > 0, "control frames must be accounted");
    b.shutdown();
}

/// Injected link delay is stamped onto remote deliveries and accounted as
/// deterministic transport latency — same numbers every run.
#[test]
fn link_delay_accounts_deterministic_transport_latency() {
    let collect = || {
        let mut b = NetBackend::launch(config(2)).expect("launch workers");
        b.server_up(0, 1);
        b.server_up(1, 1);
        b.link_delay(5_000);
        for i in 0..4u64 {
            b.transmit(Delivery {
                server: (i % 2) as u32,
                actor: i,
                bytes: 16,
                // Only remote deliveries ride the degraded link.
                remote: i % 2 == 1,
            });
        }
        b.link_delay(0);
        b.transmit(Delivery {
            server: 0,
            actor: 9,
            bytes: 16,
            remote: true,
        });
        let w = b.window_close(1);
        assert!(w.matched);
        let s = b.stats();
        b.shutdown();
        (s.channel_samples, s.channel_ns_total, s.channel_ns_max)
    };
    let a = collect();
    assert_eq!(a, (2, 10_000, 5_000));
    assert_eq!(
        a,
        collect(),
        "injected delay accounting must be deterministic"
    );
}

/// Shutdown reaps every worker: the child processes are gone afterwards
/// (the `net-parity` CI job checks the same property fleet-wide with
/// pgrep after the parity run).
#[test]
fn shutdown_leaves_no_orphan_workers() {
    let mut b = NetBackend::launch(config(3)).expect("launch workers");
    let pids = b.worker_pids();
    assert_eq!(pids.len(), 3);
    b.server_up(0, 1);
    b.window_close(1);
    b.shutdown();
    // Idempotent.
    b.shutdown();
    #[cfg(target_os = "linux")]
    for pid in pids {
        // Reaped children must not linger as live processes. (The PID
        // could in principle be recycled, but not in the microseconds
        // between wait() returning and this check.)
        let alive = std::path::Path::new(&format!("/proc/{pid}/stat")).exists()
            && std::fs::read_to_string(format!("/proc/{pid}/stat"))
                .map(|s| !s.contains(") Z "))
                .unwrap_or(false);
        assert!(!alive, "worker {pid} still running after shutdown");
    }
}

/// Dropping the backend without an explicit shutdown still reaps workers.
#[test]
fn drop_shuts_down_workers() {
    let pids;
    {
        let mut b = NetBackend::launch(config(2)).expect("launch workers");
        pids = b.worker_pids();
        b.server_up(0, 1);
        b.transmit(Delivery {
            server: 0,
            actor: 1,
            bytes: 8,
            remote: false,
        });
    }
    #[cfg(target_os = "linux")]
    for pid in pids {
        let alive = std::path::Path::new(&format!("/proc/{pid}/stat")).exists()
            && std::fs::read_to_string(format!("/proc/{pid}/stat"))
                .map(|s| !s.contains(") Z "))
                .unwrap_or(false);
        assert!(!alive, "worker {pid} survived Drop");
    }
    #[cfg(not(target_os = "linux"))]
    let _ = pids;
}
