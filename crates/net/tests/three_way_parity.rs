//! Three-way parity: a same-seed scenario must serialize to byte-identical
//! normalized BENCH JSON — and an identical decision digest — under sim,
//! live, and net. This is the crate-level twin of the `net-parity` CI job
//! (which runs the same gate through `plasma-eval parity`).

use plasma_actor::BackendKind;
use plasma_apps::common::EvalScale;
use plasma_bench::eval::{run_scenario_on, ScenarioResult};
use std::sync::Once;

/// Points worker discovery at the binary cargo built for this test run,
/// so the runtime's `NetConfig::default()` resolves it regardless of which
/// target directory layout the test executes from.
fn ensure_worker_bin() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        std::env::set_var("PLASMA_SERVER_BIN", env!("CARGO_BIN_EXE_plasma-server"));
    });
}

/// The `plasma-eval parity` normalization: backend-clock `*_ns` counters,
/// `backend_*` transport counters, and `control_*` reply/byte tallies are
/// carrier-dependent by design (net answers one `QReply` per worker group
/// and counts real wire bytes; sim answers each query with one reply).
fn normalized(mut r: ScenarioResult) -> String {
    for (metric, v) in &mut r.metrics {
        if metric.ends_with("_ns")
            || metric.starts_with("backend_")
            || metric.starts_with("control_")
        {
            v.value = 0.0;
        }
    }
    r.to_pretty_string()
}

fn run(name: &str, backend: BackendKind) -> ScenarioResult {
    run_scenario_on(name, EvalScale::Smoke, None, backend).expect("known scenario")
}

/// Deciding scenarios (nonzero decision sequences) plus a chaos scenario
/// that exercises the link-degradation → injected-delay path.
const SCENARIOS: &[&str] = &["pagerank", "estore", "estore-chaos"];

#[test]
fn net_replays_sim_and_live_byte_for_byte() {
    ensure_worker_bin();
    for name in SCENARIOS {
        let sim = run(name, BackendKind::Sim);
        let digest = sim.metric("decision_digest").expect("present").value;
        let decisions = sim.metric("decisions_total").expect("present").value;
        assert!(decisions > 0.0, "`{name}` smoke preset must decide");

        let net = run(name, BackendKind::Net);
        assert_eq!(
            net.metric("decision_digest").expect("present").value,
            digest,
            "`{name}`: net decision sequence diverged from sim"
        );
        // Digest parity must hold *while* the control plane actually rode
        // the wire — a net run that answered no queries proves nothing.
        assert!(
            net.metric("control_queries").expect("present").value > 0.0,
            "`{name}`: net run carried no control queries"
        );
        assert!(
            net.metric("control_wire_bytes").expect("present").value > 0.0,
            "`{name}`: net run carried no control bytes"
        );
        let live = run(name, BackendKind::Live);

        let sim_text = normalized(sim);
        assert_eq!(
            normalized(net),
            sim_text,
            "`{name}`: normalized BENCH diverged sim vs net"
        );
        assert_eq!(
            normalized(live),
            sim_text,
            "`{name}`: normalized BENCH diverged sim vs live"
        );
    }
}

#[test]
fn net_runs_are_deterministic_across_repeats() {
    ensure_worker_bin();
    let a = run("estore", BackendKind::Net);
    let b = run("estore", BackendKind::Net);
    assert_eq!(
        a.metric("decision_digest").unwrap().value,
        b.metric("decision_digest").unwrap().value
    );
    assert_eq!(
        normalized(a),
        normalized(b),
        "net BENCH bytes not stable across repeats"
    );
}

/// A net-backed run reports the transport counters (and actually spawned
/// multiple worker processes) — checked at the runtime level through the
/// same path `plasma-eval run --backend net` takes.
#[test]
fn net_run_reports_transport_scalars() {
    ensure_worker_bin();
    let r = run("estore", BackendKind::Net);
    let frames = r.metric("backend_frames_sent").expect("present").value;
    let bytes = r.metric("backend_wire_bytes_sent").expect("present").value;
    assert!(frames > 0.0, "net run must ship frames");
    assert!(bytes > frames, "frames are multi-byte");
    assert!(r.metric("backend_frames_received").unwrap().value > 0.0);
    assert!(r.metric("backend_max_inflight").unwrap().value > 0.0);
    // Under sim the same metrics exist and are identically zero.
    let s = run("estore", BackendKind::Sim);
    assert_eq!(s.metric("backend_frames_sent").unwrap().value, 0.0);
    assert_eq!(s.metric("backend_wire_bytes_sent").unwrap().value, 0.0);
}
