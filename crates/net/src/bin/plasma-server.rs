//! The `plasma-server` worker binary: hosts one server group's carriage
//! accounting in its own OS process. Spawned by `NetBackend::launch`; not
//! meant to be run by hand (it immediately dials back to the coordinator
//! address it was given and exits when that connection closes).

use std::process::ExitCode;

fn main() -> ExitCode {
    let (addr, group) = match plasma_net::worker::parse_args(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("plasma-server: {e}");
            eprintln!("usage: plasma-server --connect HOST:PORT --group N");
            return ExitCode::from(2);
        }
    };
    match plasma_net::worker::run(&addr, group) {
        Ok(_exit) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("plasma-server (group {group}): {e}");
            ExitCode::FAILURE
        }
    }
}
