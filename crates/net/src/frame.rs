//! The `plasma-net` frame layer: versioned, length-prefixed messages.
//!
//! Every message between the coordinator and a `plasma-server` worker is
//! one frame:
//!
//! ```text
//! frame := len:u32be  body
//! body  := version:u8  kind:u8  payload
//! ```
//!
//! `len` counts the body (version byte included), big-endian like every
//! other integer on this wire (see `plasma_backend::wire`). The version
//! byte is [`WIRE_VERSION`]; a reader that sees any other value fails with
//! `DecodeError::BadVersion` before touching the payload, which is what
//! lets the protocol evolve without silent misparses. `len` is capped at
//! [`MAX_FRAME_LEN`] so a corrupt or hostile prefix cannot make a reader
//! allocate gigabytes.
//!
//! Decoding is strict: unknown kinds, non-canonical booleans, and payloads
//! that do not consume exactly `len` bytes are all clean `DecodeError`s.
//! Strictness buys the round-trip property the `net_frame` fuzz target
//! checks — any byte string that decodes re-encodes to itself.

use plasma_backend::wire::{put_u32, put_u64, DecodeError, WireCursor};
use plasma_backend::{ControlDecision, ControlQuery, ControlReply, Delivery, Execution};
use plasma_backend::ServerReport;

/// Protocol version stamped into (and required of) every frame, and
/// carried explicitly in the [`Frame::Hello`] handshake so a version
/// mismatch fails the handshake cleanly instead of surfacing as a
/// mid-stream decode error. Version 2 added the control-plane frames
/// (REPORT/QUERY/QREPLY/DECISION), the control counters in
/// [`WindowCounters`], and the Hello version field itself.
pub const WIRE_VERSION: u8 = 2;

/// Upper bound on a frame body. Control-plane frames scale with cluster
/// size (a query reply carries one 64-byte candidate row per in-scope
/// server), so the cap is sized for hundreds of servers; it exists to
/// bound allocation on garbage, not to constrain real traffic.
pub const MAX_FRAME_LEN: usize = 64 * 1024;

/// One worker-side accounting bucket: what a worker carried for one server
/// within the current profiling window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WindowCounters {
    /// Deliveries carried.
    pub deliveries: u64,
    /// Services carried.
    pub executions: u64,
    /// Simulated service time carried, ns.
    pub busy_ns: u64,
    /// Injected (chaos link-degradation) transport delay, summed, ns.
    pub delay_ns_total: u64,
    /// Worst injected transport delay on one delivery, ns.
    pub delay_ns_max: u64,
    /// Deliveries that carried a nonzero injected delay.
    pub delayed: u64,
    /// LEM report rows carried.
    pub reports: u64,
    /// Control queries answered.
    pub queries: u64,
    /// Query replies returned.
    pub replies: u64,
    /// Round decisions received.
    pub decisions: u64,
}

impl WindowCounters {
    /// Folds another bucket into this one.
    pub fn fold(&mut self, w: &WindowCounters) {
        self.deliveries += w.deliveries;
        self.executions += w.executions;
        self.busy_ns += w.busy_ns;
        self.delay_ns_total += w.delay_ns_total;
        self.delay_ns_max = self.delay_ns_max.max(w.delay_ns_max);
        self.delayed += w.delayed;
        self.reports += w.reports;
        self.queries += w.queries;
        self.replies += w.replies;
        self.decisions += w.decisions;
    }

    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.deliveries);
        put_u64(out, self.executions);
        put_u64(out, self.busy_ns);
        put_u64(out, self.delay_ns_total);
        put_u64(out, self.delay_ns_max);
        put_u64(out, self.delayed);
        put_u64(out, self.reports);
        put_u64(out, self.queries);
        put_u64(out, self.replies);
        put_u64(out, self.decisions);
    }

    fn decode(c: &mut WireCursor<'_>) -> Result<Self, DecodeError> {
        Ok(WindowCounters {
            deliveries: c.u64()?,
            executions: c.u64()?,
            busy_ns: c.u64()?,
            delay_ns_total: c.u64()?,
            delay_ns_max: c.u64()?,
            delayed: c.u64()?,
            reports: c.u64()?,
            queries: c.u64()?,
            replies: c.u64()?,
            decisions: c.u64()?,
        })
    }
}

/// Message kinds. Coordinator→worker kinds sit below `0x80`; worker→
/// coordinator replies sit at `0x80 |` their trigger, so a hex dump reads
/// as request/response pairs.
mod kind {
    pub const HELLO: u8 = 0x01;
    pub const SERVER_UP: u8 = 0x02;
    pub const SERVER_DOWN: u8 = 0x03;
    pub const DELIVER: u8 = 0x04;
    pub const EXECUTE: u8 = 0x05;
    pub const WINDOW_MARK: u8 = 0x06;
    pub const ROUND_MARK: u8 = 0x07;
    pub const SHUTDOWN: u8 = 0x08;
    pub const REPORT: u8 = 0x09;
    pub const QUERY: u8 = 0x0A;
    pub const DECISION: u8 = 0x0B;
    pub const SERVER_RETIRED: u8 = 0x83;
    pub const WINDOW_ACK: u8 = 0x86;
    pub const ROUND_ACK: u8 = 0x87;
    pub const QREPLY: u8 = 0x8A;
}

/// One wire message. See the [module docs](self) for the byte layout.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Worker → coordinator, first frame on a fresh connection: which
    /// server group this worker process hosts and which protocol version
    /// it speaks. The coordinator validates `wire_version` before any
    /// other traffic — the negotiation half of the version handshake.
    Hello {
        /// The worker's group index.
        group: u32,
        /// The worker's [`WIRE_VERSION`].
        wire_version: u8,
    },
    /// Coordinator → worker: open (or re-open) a server's carrier.
    ServerUp {
        /// Server id.
        server: u32,
        /// The server's vCPU count (informational on the worker side).
        vcpus: u32,
    },
    /// Coordinator → worker: retire a server; the worker replies
    /// [`Frame::ServerRetired`] with the server's partial window.
    ServerDown {
        /// Server id.
        server: u32,
    },
    /// Coordinator → worker: carry one message delivery. `delay_ns` is the
    /// injected chaos transport delay active when the frame was written
    /// (0 fault-free).
    Deliver {
        /// The delivery carriage record.
        delivery: Delivery,
        /// Injected transport delay, ns.
        delay_ns: u64,
    },
    /// Coordinator → worker: carry one message service.
    Execute {
        /// The execution carriage record.
        execution: Execution,
    },
    /// Coordinator → worker: FIFO window barrier; the worker replies
    /// [`Frame::WindowAck`] and resets its window counters.
    WindowMark {
        /// Snapshot generation the window closes for.
        generation: u64,
    },
    /// Coordinator → worker: FIFO round barrier; the worker replies
    /// [`Frame::RoundAck`].
    RoundMark {
        /// Elasticity round number.
        round: u64,
    },
    /// Coordinator → worker: drain and exit cleanly.
    Shutdown,
    /// Coordinator → worker: one server's LEM report row for a snapshot
    /// generation. The worker holds it verbatim and echoes it back in
    /// query replies.
    Report {
        /// Snapshot generation the row was published for.
        generation: u64,
        /// The report row (byte-exact snapshot copy).
        report: ServerReport,
    },
    /// Coordinator → worker: a GEM's control query; the worker replies
    /// [`Frame::QReply`] evaluated against the report rows it holds.
    Query {
        /// The query.
        query: ControlQuery,
    },
    /// Coordinator → worker: a round's published decision (broadcast).
    Decision {
        /// The decision.
        decision: ControlDecision,
    },
    /// Worker → coordinator: a retired server's partial-window counters.
    ServerRetired {
        /// Server id.
        server: u32,
        /// The server's counters since the last window mark.
        counters: WindowCounters,
    },
    /// Worker → coordinator: the summed window counters of every hosted
    /// server, echoing the mark's generation.
    WindowAck {
        /// Echoed snapshot generation.
        generation: u64,
        /// Summed counters for the window.
        counters: WindowCounters,
    },
    /// Worker → coordinator: round-barrier liveness ack.
    RoundAck {
        /// Echoed round number.
        round: u64,
    },
    /// Worker → coordinator: the answer to a [`Frame::Query`].
    QReply {
        /// The reply.
        reply: ControlReply,
    },
}

impl Frame {
    /// Appends the full length-prefixed encoding of this frame.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let at = out.len();
        put_u32(out, 0); // length backpatched below
        out.push(WIRE_VERSION);
        match self {
            Frame::Hello {
                group,
                wire_version,
            } => {
                out.push(kind::HELLO);
                put_u32(out, *group);
                out.push(*wire_version);
            }
            Frame::ServerUp { server, vcpus } => {
                out.push(kind::SERVER_UP);
                put_u32(out, *server);
                put_u32(out, *vcpus);
            }
            Frame::ServerDown { server } => {
                out.push(kind::SERVER_DOWN);
                put_u32(out, *server);
            }
            Frame::Deliver { delivery, delay_ns } => {
                out.push(kind::DELIVER);
                delivery.wire_encode(out);
                put_u64(out, *delay_ns);
            }
            Frame::Execute { execution } => {
                out.push(kind::EXECUTE);
                execution.wire_encode(out);
            }
            Frame::WindowMark { generation } => {
                out.push(kind::WINDOW_MARK);
                put_u64(out, *generation);
            }
            Frame::RoundMark { round } => {
                out.push(kind::ROUND_MARK);
                put_u64(out, *round);
            }
            Frame::Shutdown => out.push(kind::SHUTDOWN),
            Frame::Report { generation, report } => {
                out.push(kind::REPORT);
                put_u64(out, *generation);
                report.wire_encode(out);
            }
            Frame::Query { query } => {
                out.push(kind::QUERY);
                query.wire_encode(out);
            }
            Frame::Decision { decision } => {
                out.push(kind::DECISION);
                decision.wire_encode(out);
            }
            Frame::ServerRetired { server, counters } => {
                out.push(kind::SERVER_RETIRED);
                put_u32(out, *server);
                counters.encode(out);
            }
            Frame::WindowAck {
                generation,
                counters,
            } => {
                out.push(kind::WINDOW_ACK);
                put_u64(out, *generation);
                counters.encode(out);
            }
            Frame::RoundAck { round } => {
                out.push(kind::ROUND_ACK);
                put_u64(out, *round);
            }
            Frame::QReply { reply } => {
                out.push(kind::QREPLY);
                reply.wire_encode(out);
            }
        }
        let body = (out.len() - at - 4) as u32;
        out[at..at + 4].copy_from_slice(&body.to_be_bytes());
    }

    /// The full encoding as a fresh buffer.
    pub fn encode_vec(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        self.encode(&mut out);
        out
    }

    /// Tries to decode one frame from the front of `buf`.
    ///
    /// Returns `Ok(None)` when `buf` holds only a prefix of a frame (more
    /// bytes needed — the torn-read case), `Ok(Some((frame, consumed)))` on
    /// success, and a [`DecodeError`] on malformed input. Never panics and
    /// never reads past `buf`.
    pub fn decode_prefix(buf: &[u8]) -> Result<Option<(Frame, usize)>, DecodeError> {
        if buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes(buf[..4].try_into().unwrap()) as usize;
        if len > MAX_FRAME_LEN {
            return Err(DecodeError::Oversize(len as u64));
        }
        // A body needs at least its version and kind bytes.
        if len < 2 {
            return Err(DecodeError::Truncated);
        }
        if buf.len() < 4 + len {
            return Ok(None);
        }
        let body = &buf[4..4 + len];
        let mut c = WireCursor::new(body);
        let version = c.u8()?;
        if version != WIRE_VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let k = c.u8()?;
        let frame = match k {
            kind::HELLO => Frame::Hello {
                group: c.u32()?,
                wire_version: c.u8()?,
            },
            kind::SERVER_UP => Frame::ServerUp {
                server: c.u32()?,
                vcpus: c.u32()?,
            },
            kind::SERVER_DOWN => Frame::ServerDown { server: c.u32()? },
            kind::DELIVER => Frame::Deliver {
                delivery: Delivery::wire_decode(&mut c)?,
                delay_ns: c.u64()?,
            },
            kind::EXECUTE => Frame::Execute {
                execution: Execution::wire_decode(&mut c)?,
            },
            kind::WINDOW_MARK => Frame::WindowMark {
                generation: c.u64()?,
            },
            kind::ROUND_MARK => Frame::RoundMark { round: c.u64()? },
            kind::SHUTDOWN => Frame::Shutdown,
            kind::REPORT => Frame::Report {
                generation: c.u64()?,
                report: ServerReport::wire_decode(&mut c)?,
            },
            kind::QUERY => Frame::Query {
                query: ControlQuery::wire_decode(&mut c)?,
            },
            kind::DECISION => Frame::Decision {
                decision: ControlDecision::wire_decode(&mut c)?,
            },
            kind::SERVER_RETIRED => Frame::ServerRetired {
                server: c.u32()?,
                counters: WindowCounters::decode(&mut c)?,
            },
            kind::WINDOW_ACK => Frame::WindowAck {
                generation: c.u64()?,
                counters: WindowCounters::decode(&mut c)?,
            },
            kind::ROUND_ACK => Frame::RoundAck { round: c.u64()? },
            kind::QREPLY => Frame::QReply {
                reply: ControlReply::wire_decode(&mut c)?,
            },
            other => return Err(DecodeError::BadKind(other)),
        };
        if c.consumed() != body.len() {
            return Err(DecodeError::Trailing {
                consumed: c.consumed(),
                announced: body.len(),
            });
        }
        Ok(Some((frame, 4 + len)))
    }
}

/// Reassembles frames from an arbitrarily torn byte stream.
///
/// Feed whatever the transport produced — single bytes, half a length
/// prefix, three frames at once — via [`FrameBuffer::extend`], then drain
/// complete frames with [`FrameBuffer::next`]. Both the worker loop and the
/// coordinator read side sit on one of these, so torn TCP reads can never
/// misframe a message.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameBuffer {
    /// An empty reassembly buffer.
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// Appends raw transport bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Reclaim consumed prefix before growing, so long-lived streams
        // don't accrete an unbounded buffer.
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos > 4096) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame, `Ok(None)` when more bytes are
    /// needed, or a [`DecodeError`] if the stream is malformed (after
    /// which the buffer is poisoned garbage — callers drop the
    /// connection). Deliberately named like `Iterator::next` (same pull
    /// shape) without implementing the trait, whose signature can't carry
    /// the tri-state result.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Frame>, DecodeError> {
        match Frame::decode_prefix(&self.buf[self.pos..])? {
            None => Ok(None),
            Some((frame, consumed)) => {
                self.pos += consumed;
                Ok(Some(frame))
            }
        }
    }

    /// Bytes currently buffered and not yet consumed.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Frame> {
        vec![
            Frame::Hello {
                group: 1,
                wire_version: WIRE_VERSION,
            },
            Frame::ServerUp {
                server: 4,
                vcpus: 2,
            },
            Frame::Deliver {
                delivery: Delivery {
                    server: 4,
                    actor: 99,
                    bytes: 512,
                    remote: true,
                },
                delay_ns: 1_500_000,
            },
            Frame::Execute {
                execution: Execution {
                    server: 4,
                    actor: 99,
                    service_ns: 42_000,
                },
            },
            Frame::Report {
                generation: 7,
                report: ServerReport {
                    server: 4,
                    vcpus: 2,
                    actor_count: 9,
                    mem_bytes: 1 << 31,
                    total_speed_bits: 1500.0_f64.to_bits(),
                    net_bps_bits: 1e9_f64.to_bits(),
                    cpu_bits: 0.625_f64.to_bits(),
                    mem_bits: 0.25_f64.to_bits(),
                    net_bits: 0.125_f64.to_bits(),
                },
            },
            Frame::Query {
                query: ControlQuery {
                    gem: 0,
                    round: 3,
                    generation: 7,
                    upper_bits: 0.8_f64.to_bits(),
                    lower_bits: 0.2_f64.to_bits(),
                    scope: vec![4, 6],
                },
            },
            Frame::QReply {
                reply: ControlReply {
                    gem: 0,
                    round: 3,
                    generation: 7,
                    vote_out: false,
                    vote_in: true,
                    candidates: vec![ServerReport {
                        server: 4,
                        vcpus: 2,
                        actor_count: 9,
                        mem_bytes: 1 << 31,
                        total_speed_bits: 1500.0_f64.to_bits(),
                        net_bps_bits: 1e9_f64.to_bits(),
                        cpu_bits: 0.125_f64.to_bits(),
                        mem_bits: 0.25_f64.to_bits(),
                        net_bits: 0.0_f64.to_bits(),
                    }],
                },
            },
            Frame::Decision {
                decision: ControlDecision {
                    round: 3,
                    grow: 1,
                    shrink: 0,
                    migrations: vec![plasma_backend::MigrationOrder {
                        actor: 99,
                        src: 4,
                        dst: 6,
                    }],
                },
            },
            Frame::WindowMark { generation: 7 },
            Frame::WindowAck {
                generation: 7,
                counters: WindowCounters {
                    deliveries: 1,
                    executions: 1,
                    busy_ns: 42_000,
                    delay_ns_total: 1_500_000,
                    delay_ns_max: 1_500_000,
                    delayed: 1,
                    reports: 1,
                    queries: 1,
                    replies: 1,
                    decisions: 1,
                },
            },
            Frame::RoundMark { round: 3 },
            Frame::RoundAck { round: 3 },
            Frame::ServerDown { server: 4 },
            Frame::ServerRetired {
                server: 4,
                counters: WindowCounters::default(),
            },
            Frame::Shutdown,
        ]
    }

    #[test]
    fn every_kind_round_trips_byte_exactly() {
        for f in samples() {
            let bytes = f.encode_vec();
            let (back, n) = Frame::decode_prefix(&bytes).unwrap().unwrap();
            assert_eq!(n, bytes.len(), "{f:?} must consume exactly its bytes");
            assert_eq!(back, f);
            assert_eq!(back.encode_vec(), bytes, "{f:?} re-encode must be stable");
        }
    }

    /// Split length prefixes and torn payloads: a frame fed one byte at a
    /// time yields `None` until the final byte, then the frame — never an
    /// error, never a hang.
    #[test]
    fn torn_reads_reassemble_at_every_split() {
        for f in samples() {
            let bytes = f.encode_vec();
            let mut fb = FrameBuffer::new();
            for (i, b) in bytes.iter().enumerate() {
                fb.extend(std::slice::from_ref(b));
                let got = fb.next().unwrap();
                if i + 1 < bytes.len() {
                    assert!(got.is_none(), "{f:?}: premature frame at byte {i}");
                } else {
                    assert_eq!(got.as_ref(), Some(&f));
                }
            }
        }
    }

    /// A short write (frame truncated mid-stream, connection gone) leaves
    /// the reader waiting for bytes, not panicking or misframing.
    #[test]
    fn short_writes_leave_the_buffer_pending() {
        let bytes = samples()[2].encode_vec();
        for cut in 0..bytes.len() {
            let mut fb = FrameBuffer::new();
            fb.extend(&bytes[..cut]);
            assert_eq!(fb.next().unwrap(), None, "cut at {cut}");
            assert_eq!(fb.pending(), cut);
        }
    }

    #[test]
    fn malformed_version_is_a_clean_error() {
        let mut bytes = Frame::Shutdown.encode_vec();
        bytes[4] = 9; // version byte sits right after the length prefix
        assert_eq!(
            Frame::decode_prefix(&bytes).unwrap_err(),
            DecodeError::BadVersion(9)
        );
    }

    /// A v1 worker's Hello (header version 1, no payload version byte)
    /// fails at the version check — before the kind or payload is touched
    /// — so a coordinator can turn it into a clean handshake error.
    #[test]
    fn old_version_hello_fails_before_payload_parse() {
        let mut v1_hello = Vec::new();
        put_u32(&mut v1_hello, 6); // version + kind + group:u32
        v1_hello.push(1); // wire version 1
        v1_hello.push(kind::HELLO);
        put_u32(&mut v1_hello, 3);
        assert_eq!(
            Frame::decode_prefix(&v1_hello).unwrap_err(),
            DecodeError::BadVersion(1)
        );
    }

    /// The Hello payload carries the version explicitly, so a decoded
    /// handshake exposes what the peer speaks.
    #[test]
    fn hello_carries_the_wire_version() {
        let bytes = Frame::Hello {
            group: 2,
            wire_version: WIRE_VERSION,
        }
        .encode_vec();
        match Frame::decode_prefix(&bytes).unwrap().unwrap().0 {
            Frame::Hello {
                group,
                wire_version,
            } => {
                assert_eq!((group, wire_version), (2, WIRE_VERSION));
            }
            other => panic!("expected Hello, got {other:?}"),
        }
    }

    #[test]
    fn unknown_kind_oversize_and_trailing_are_clean_errors() {
        let mut bad_kind = Frame::Shutdown.encode_vec();
        bad_kind[5] = 0x7F;
        assert_eq!(
            Frame::decode_prefix(&bad_kind).unwrap_err(),
            DecodeError::BadKind(0x7F)
        );

        let mut oversize = Vec::new();
        put_u32(&mut oversize, (MAX_FRAME_LEN + 1) as u32);
        assert!(matches!(
            Frame::decode_prefix(&oversize).unwrap_err(),
            DecodeError::Oversize(_)
        ));

        // A Shutdown body with an extra byte announced and present.
        let mut trailing = Vec::new();
        put_u32(&mut trailing, 3);
        trailing.push(WIRE_VERSION);
        trailing.push(kind::SHUTDOWN);
        trailing.push(0xAA);
        assert!(matches!(
            Frame::decode_prefix(&trailing).unwrap_err(),
            DecodeError::Trailing { .. }
        ));
    }

    #[test]
    fn back_to_back_frames_pop_in_order() {
        let mut stream = Vec::new();
        for f in samples() {
            f.encode(&mut stream);
        }
        let mut fb = FrameBuffer::new();
        // Feed in ragged chunks to exercise the reassembly path.
        for chunk in stream.chunks(7) {
            fb.extend(chunk);
            // Interleave draining so the buffer compaction path runs too.
            while let Some(f) = fb.next().unwrap() {
                let _ = f;
            }
        }
        let mut fb2 = FrameBuffer::new();
        fb2.extend(&stream);
        let mut got = Vec::new();
        while let Some(f) = fb2.next().unwrap() {
            got.push(f);
        }
        assert_eq!(got, samples());
        assert_eq!(fb2.pending(), 0);
    }
}
