#![warn(missing_docs)]

//! Multi-process TCP execution backend for the PLASMA runtime.
//!
//! `plasma-net` is the third rung of the backend ladder. The backend crate
//! proves the carrier abstraction with an in-queue adapter (sim) and an
//! OS-thread carrier (live); this crate carries the same surface across
//! real *process* boundaries: every [`Delivery`](plasma_backend::Delivery)
//! and [`Execution`](plasma_backend::Execution) is serialized onto a
//! versioned, length-prefixed binary wire format and shipped over
//! localhost TCP to `plasma-server` worker processes — one process per
//! server group — which account the carriage and answer window/round
//! barriers over the same FIFO connection.
//!
//! The layering mirrors the paper's separation of mechanism from policy:
//! elasticity decisions are made once, by the deterministic coordinator,
//! and are *carried* by whichever medium the run selects. Because nothing
//! a carrier returns may steer scheduling, a same-seed scenario produces
//! byte-identical normalized BENCH JSON and an identical timestamp-free
//! `decision_digest` under sim, live, and net — the three-way parity the
//! `net-parity` CI job gates.
//!
//! Crate layout:
//!
//! - [`frame`] — the wire format: `len:u32be` framing, version byte,
//!   message kinds, strict decode, and [`FrameBuffer`] reassembly over
//!   torn reads. Field-level codecs for the carriage types live in
//!   `plasma_backend::wire` so the types and their encoding stay together.
//! - [`worker`] — the `plasma-server` loop: per-server accounting buckets
//!   and barrier acks. The binary itself is a thin wrapper over
//!   [`worker::run`].
//! - [`NetBackend`] — the coordinator side: spawns and addresses workers,
//!   multiplexes frames over per-group connections, drains retired
//!   carriers, and preserves the exactly-once window-close and
//!   round-barrier semantics of the thread backend.

pub mod frame;
pub mod worker;

mod backend;

pub use backend::{locate_worker, NetBackend, NetConfig};
pub use frame::{Frame, FrameBuffer, WindowCounters, MAX_FRAME_LEN, WIRE_VERSION};
