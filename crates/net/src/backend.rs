//! The coordinator side: spawn workers, multiplex frames, barrier windows.
//!
//! `NetBackend` implements `ExecutionBackend` across real process
//! boundaries. At launch it binds an ephemeral localhost listener, spawns
//! one `plasma-server` process per server *group*, and waits for each to
//! connect and identify itself with a `Hello` frame. Servers map onto
//! groups by `server % groups`, so every server's frames ride exactly one
//! FIFO TCP connection — the ordering property the exactly-once barrier
//! argument needs — while one connection multiplexes the carriage of many
//! servers.
//!
//! Data frames (`ServerUp`/`ServerDown`/`Deliver`/`Execute`) are written
//! through a buffered writer and only flushed at barriers, so carriage
//! costs one syscall per ~64 KiB rather than one per message. Barriers are
//! synchronous request/response: the coordinator flushes, writes the mark,
//! then blocks (with a timeout) for each worker's ack, folds the returned
//! window counters together with any partial windows drained from retired
//! servers, and compares the total against its own send tally — any loss
//! or duplication is a `window_mismatches` increment, gated to zero by the
//! three-way parity suite.
//!
//! Nothing a worker returns feeds back into logical scheduling; like the
//! thread backend, the wire is a carrier and a measurement side-channel,
//! which is why a same-seed run serializes to byte-identical BENCH JSON
//! under sim, live, and net.

use std::collections::BTreeSet;
use std::io::{BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use plasma_backend::{
    BackendKind, BackendStats, ControlMsg, ControlReply, Delivery, Execution, ExecutionBackend,
    ServerReport, WindowReport,
};

use crate::frame::{Frame, FrameBuffer, WindowCounters, WIRE_VERSION};

/// How long launch waits for all workers to connect and hello.
const LAUNCH_TIMEOUT: Duration = Duration::from_secs(20);
/// How long a barrier waits for one worker ack. Generous: a worker only
/// does counter arithmetic per frame.
const ACK_TIMEOUT: Duration = Duration::from_secs(10);
/// How long shutdown waits for a worker process to exit before killing it.
const EXIT_TIMEOUT: Duration = Duration::from_secs(5);

/// Configuration for [`NetBackend::launch`].
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Worker processes to spawn; servers map onto them by
    /// `server % groups`. Must be at least 1.
    pub groups: u32,
    /// Path to the `plasma-server` binary. `None` resolves via
    /// [`locate_worker`] (the `PLASMA_SERVER_BIN` environment variable,
    /// then the directory of the current executable and its parent).
    pub worker_bin: Option<PathBuf>,
}

impl Default for NetConfig {
    /// Two groups — the smallest topology that actually crosses process
    /// boundaries between servers — with the worker binary auto-located.
    /// Environment-free; use [`NetConfig::from_env`] to honor
    /// `PLASMA_NET_GROUPS`.
    fn default() -> Self {
        NetConfig {
            groups: 2,
            worker_bin: None,
        }
    }
}

impl NetConfig {
    /// The default configuration with the group count taken from the
    /// `PLASMA_NET_GROUPS` environment variable (carriage topology only;
    /// it cannot affect logical results).
    ///
    /// An unset variable keeps the default of 2. A set-but-invalid value —
    /// not an integer, or below 1 — is rejected *here*, at parse time,
    /// with an error naming the variable and the offending value, instead
    /// of surfacing as a downstream launch assertion.
    pub fn from_env() -> std::io::Result<Self> {
        let mut cfg = NetConfig::default();
        if let Ok(v) = std::env::var("PLASMA_NET_GROUPS") {
            cfg.groups = match v.parse::<u32>() {
                Ok(g) if g >= 1 => g,
                _ => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidInput,
                        format!(
                            "PLASMA_NET_GROUPS={v:?} is invalid: expected an integer >= 1 \
                             (number of worker processes)"
                        ),
                    ));
                }
            };
        }
        Ok(cfg)
    }
}

/// Finds the `plasma-server` worker binary.
///
/// Resolution order: the `PLASMA_SERVER_BIN` environment variable, then a
/// binary named `plasma-server` next to the current executable, then in
/// its parent directory (test binaries live in `target/<profile>/deps/`,
/// one level below the bins cargo builds for the same profile).
pub fn locate_worker() -> std::io::Result<PathBuf> {
    if let Ok(p) = std::env::var("PLASMA_SERVER_BIN") {
        let p = PathBuf::from(p);
        if p.is_file() {
            return Ok(p);
        }
        return Err(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!("PLASMA_SERVER_BIN={} does not exist", p.display()),
        ));
    }
    let name = format!("plasma-server{}", std::env::consts::EXE_SUFFIX);
    let exe = std::env::current_exe()?;
    let mut dirs: Vec<&Path> = Vec::new();
    if let Some(d) = exe.parent() {
        dirs.push(d);
        if let Some(dd) = d.parent() {
            dirs.push(dd);
        }
    }
    for d in &dirs {
        let candidate = d.join(&name);
        if candidate.is_file() {
            return Ok(candidate);
        }
    }
    Err(std::io::Error::new(
        std::io::ErrorKind::NotFound,
        format!(
            "cannot find `{name}` near {} (build it with `cargo build -p plasma-net` \
             or point PLASMA_SERVER_BIN at it)",
            exe.display()
        ),
    ))
}

/// Reads and validates a worker's `Hello` from `r`, returning the
/// announced group.
///
/// The negotiation half of the version handshake: a worker speaking a
/// different wire version fails here with a clean error naming both
/// versions — whether the mismatch surfaces as a `BadVersion` on the
/// frame header (older workers) or as a mismatched version field inside
/// the Hello payload itself. Leftover bytes stay in `fb` for the caller.
pub(crate) fn read_hello(r: &mut dyn Read, fb: &mut FrameBuffer) -> std::io::Result<u32> {
    let mut chunk = [0u8; 256];
    loop {
        match fb.next() {
            Ok(Some(Frame::Hello {
                group,
                wire_version,
            })) => {
                if wire_version != WIRE_VERSION {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!(
                            "wire version mismatch in handshake: worker speaks \
                             v{wire_version}, coordinator speaks v{WIRE_VERSION}"
                        ),
                    ));
                }
                return Ok(group);
            }
            Ok(Some(other)) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("expected Hello, got {other:?}"),
                ));
            }
            Ok(None) => {}
            Err(e) => return Err(crate::worker::decode_failure(e)),
        }
        let n = r.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::ErrorKind::UnexpectedEof.into());
        }
        fb.extend(&chunk[..n]);
    }
}

/// One worker connection: the child process plus its FIFO TCP stream.
struct Conn {
    child: Child,
    /// Read side (acks). `writer` owns a clone of the same socket.
    stream: TcpStream,
    writer: BufWriter<TcpStream>,
    rbuf: FrameBuffer,
    rchunk: Box<[u8; 16 * 1024]>,
    /// Cleared when a write/read fails; a dead conn fails barriers
    /// (`matched = false`) instead of wedging them.
    alive: bool,
}

impl Conn {
    /// Reads one frame, blocking up to the stream's read timeout.
    fn read_frame(&mut self) -> std::io::Result<(Frame, u64)> {
        let mut got = 0u64;
        loop {
            match self.rbuf.next() {
                Ok(Some(f)) => return Ok((f, got)),
                Ok(None) => {}
                Err(e) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        e.to_string(),
                    ))
                }
            }
            let n = self.stream.read(&mut self.rchunk[..])?;
            if n == 0 {
                return Err(std::io::ErrorKind::UnexpectedEof.into());
            }
            got += n as u64;
            self.rbuf.extend(&self.rchunk[..n]);
        }
    }
}

/// The multi-process TCP carrier: spawns `plasma-server` worker
/// processes (one per server group), multiplexes carriage frames over
/// per-group localhost TCP connections, and verifies exactly-once
/// carriage at window/round barriers. See the `backend` module source
/// for the full protocol walkthrough.
pub struct NetBackend {
    epoch: Instant,
    conns: Vec<Conn>,
    /// Servers currently up, coordinator-side; frames for servers outside
    /// this set are dropped and excluded from the send tally (mirroring
    /// the thread backend's unknown-server semantics).
    up: BTreeSet<u32>,
    stats: BackendStats,
    sent_deliveries: u64,
    sent_executions: u64,
    sent_reports: u64,
    sent_queries: u64,
    recv_qreplies: u64,
    sent_decisions: u64,
    /// Partial windows drained from servers retired mid-window; folded
    /// into the next window barrier so it still balances.
    retired: WindowCounters,
    /// Injected chaos transport delay stamped onto remote deliveries, ns.
    link_delay_ns: u64,
    /// Frames written since the last fully-acked barrier.
    inflight: u64,
    scratch: Vec<u8>,
    shut: bool,
}

impl NetBackend {
    /// Spawns the worker processes and waits for all of them to connect
    /// and complete the Hello version handshake.
    pub fn launch(cfg: NetConfig) -> std::io::Result<NetBackend> {
        if cfg.groups < 1 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "NetConfig.groups = {} is invalid: at least 1 worker group is required",
                    cfg.groups
                ),
            ));
        }
        let bin = match &cfg.worker_bin {
            Some(p) => p.clone(),
            None => locate_worker()?,
        };
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let mut children: Vec<Child> = Vec::with_capacity(cfg.groups as usize);
        for group in 0..cfg.groups {
            let child = Command::new(&bin)
                .arg("--connect")
                .arg(addr.to_string())
                .arg("--group")
                .arg(group.to_string())
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                .spawn()
                .map_err(|e| {
                    std::io::Error::new(
                        e.kind(),
                        format!("spawning {} for group {group}: {e}", bin.display()),
                    )
                })?;
            children.push(child);
        }

        // Accept until every group said hello; pair streams to groups by
        // the Hello payload, not accept order.
        let deadline = Instant::now() + LAUNCH_TIMEOUT;
        let mut slots: Vec<Option<(TcpStream, FrameBuffer)>> =
            (0..cfg.groups).map(|_| None).collect();
        let mut pending = cfg.groups as usize;
        while pending > 0 {
            match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(Some(ACK_TIMEOUT))?;
                    let mut fb = FrameBuffer::new();
                    let group = {
                        let mut rd = &stream;
                        read_hello(&mut rd, &mut fb)?
                    };
                    let slot = slots.get_mut(group as usize).ok_or_else(|| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!("worker announced out-of-range group {group}"),
                        )
                    })?;
                    if slot.is_some() {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!("two workers announced group {group}"),
                        ));
                    }
                    *slot = Some((stream, fb));
                    pending -= 1;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() > deadline {
                        for c in &mut children {
                            let _ = c.kill();
                            let _ = c.wait();
                        }
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            format!("{pending} worker(s) never connected"),
                        ));
                    }
                    // A worker that died before connecting would hang the
                    // accept loop to the deadline; fail fast instead.
                    for c in &mut children {
                        if let Ok(Some(status)) = c.try_wait() {
                            return Err(std::io::Error::new(
                                std::io::ErrorKind::BrokenPipe,
                                format!("worker exited during launch: {status}"),
                            ));
                        }
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(e),
            }
        }

        let mut conns = Vec::with_capacity(cfg.groups as usize);
        for (child, slot) in children.into_iter().zip(slots) {
            let (stream, rbuf) = slot.expect("all slots filled");
            let writer = BufWriter::with_capacity(64 * 1024, stream.try_clone()?);
            conns.push(Conn {
                child,
                stream,
                writer,
                rbuf,
                rchunk: Box::new([0u8; 16 * 1024]),
                alive: true,
            });
        }
        let stats = BackendStats {
            workers_spawned: cfg.groups as u64,
            ..BackendStats::default()
        };
        Ok(NetBackend {
            epoch: Instant::now(),
            conns,
            up: BTreeSet::new(),
            stats,
            sent_deliveries: 0,
            sent_executions: 0,
            sent_reports: 0,
            sent_queries: 0,
            recv_qreplies: 0,
            sent_decisions: 0,
            retired: WindowCounters::default(),
            link_delay_ns: 0,
            inflight: 0,
            scratch: Vec::with_capacity(64),
            shut: false,
        })
    }

    /// OS process ids of the worker processes, by group.
    pub fn worker_pids(&self) -> Vec<u32> {
        self.conns.iter().map(|c| c.child.id()).collect()
    }

    /// Worker processes spawned (the group count).
    pub fn worker_count(&self) -> usize {
        self.conns.len()
    }

    fn group_of(&self, server: u32) -> usize {
        (server as usize) % self.conns.len()
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Writes one frame to `group`'s buffered stream. Returns whether the
    /// frame was accepted (the conn was alive and the write succeeded).
    fn send(&mut self, group: usize, frame: &Frame) -> bool {
        let conn = &mut self.conns[group];
        if !conn.alive {
            return false;
        }
        self.scratch.clear();
        frame.encode(&mut self.scratch);
        if conn.writer.write_all(&self.scratch).is_err() {
            conn.alive = false;
            return false;
        }
        self.stats.frames_sent += 1;
        self.stats.wire_bytes_sent += self.scratch.len() as u64;
        if matches!(
            frame,
            Frame::Report { .. } | Frame::Query { .. } | Frame::Decision { .. }
        ) {
            self.stats.control_wire_bytes += self.scratch.len() as u64;
        }
        self.inflight += 1;
        self.stats.max_inflight_frames = self.stats.max_inflight_frames.max(self.inflight);
        true
    }

    /// Flushes every live connection's write buffer.
    fn flush_all(&mut self) {
        for conn in &mut self.conns {
            if conn.alive && conn.writer.flush().is_err() {
                conn.alive = false;
            }
        }
    }

    /// Reads one reply frame from `group`, accounting received bytes.
    /// A failure (timeout, EOF, malformed frame) marks the conn dead.
    fn recv(&mut self, group: usize) -> Option<Frame> {
        let conn = &mut self.conns[group];
        if !conn.alive {
            return None;
        }
        match conn.read_frame() {
            Ok((frame, bytes)) => {
                self.stats.frames_received += 1;
                self.stats.wire_bytes_received += bytes;
                Some(frame)
            }
            Err(_) => {
                conn.alive = false;
                None
            }
        }
    }

    /// Sends a window mark to every live worker and folds the acks.
    /// Returns the summed counters and whether every ack arrived intact.
    fn collect_windows(&mut self, generation: u64) -> (WindowCounters, bool) {
        self.flush_all();
        let mut marked: Vec<usize> = Vec::with_capacity(self.conns.len());
        for g in 0..self.conns.len() {
            if self.send(g, &Frame::WindowMark { generation }) {
                marked.push(g);
            }
        }
        self.flush_all();
        let mut sum = WindowCounters::default();
        let mut complete = marked.len() == self.conns.len();
        for g in marked {
            match self.recv(g) {
                Some(Frame::WindowAck {
                    generation: echoed,
                    counters,
                }) if echoed == generation => sum.fold(&counters),
                _ => complete = false,
            }
        }
        (sum, complete)
    }
}

impl ExecutionBackend for NetBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Net
    }

    fn monotonic_ns(&self) -> u64 {
        self.now_ns()
    }

    fn server_up(&mut self, server: u32, vcpus: u32) {
        // Re-announcing a live server must not reset its carrier (boot
        // paths overlap with reboot paths upstream).
        if !self.up.insert(server) {
            return;
        }
        let group = self.group_of(server);
        self.send(group, &Frame::ServerUp { server, vcpus });
    }

    fn server_down(&mut self, server: u32) {
        if !self.up.remove(&server) {
            return;
        }
        let group = self.group_of(server);
        // Drain the server's partial window synchronously so the next
        // window barrier still balances (a crashed server's delivered
        // messages were delivered even though the server is gone by
        // window close).
        if self.send(group, &Frame::ServerDown { server }) {
            if self.conns[group].alive && self.conns[group].writer.flush().is_err() {
                self.conns[group].alive = false;
            }
            if let Some(Frame::ServerRetired {
                server: echoed,
                counters,
            }) = self.recv(group)
            {
                if echoed == server {
                    self.retired.fold(&counters);
                }
            }
        }
    }

    fn transmit(&mut self, d: Delivery) {
        if self.up.contains(&d.server) {
            let delay_ns = if d.remote { self.link_delay_ns } else { 0 };
            let group = self.group_of(d.server);
            if self.send(
                group,
                &Frame::Deliver {
                    delivery: d,
                    delay_ns,
                },
            ) {
                self.sent_deliveries += 1;
            }
        }
        self.stats.deliveries += 1;
    }

    fn execute(&mut self, e: Execution) {
        if self.up.contains(&e.server) {
            let group = self.group_of(e.server);
            if self.send(group, &Frame::Execute { execution: e }) {
                self.sent_executions += 1;
            }
        }
        self.stats.executions += 1;
    }

    fn window_close(&mut self, generation: u64) -> WindowReport {
        let (mut sum, complete) = self.collect_windows(generation);
        sum.fold(&self.retired.clone());
        self.retired = WindowCounters::default();
        let matched = complete
            && sum.deliveries == self.sent_deliveries
            && sum.executions == self.sent_executions
            && sum.reports == self.sent_reports
            && sum.queries == self.sent_queries
            && sum.replies == self.recv_qreplies
            && sum.decisions == self.sent_decisions;
        let report = WindowReport {
            generation,
            deliveries: sum.deliveries,
            executions: sum.executions,
            matched,
        };
        self.stats.windows_closed += 1;
        if !matched {
            self.stats.window_mismatches += 1;
        }
        self.stats.worker_busy_ns += sum.busy_ns;
        // Injected chaos delay is the net transport's deterministic
        // latency side-channel (there is no shared wall clock between
        // processes to measure real one-way latency against).
        self.stats.channel_ns_total += sum.delay_ns_total;
        self.stats.channel_ns_max = self.stats.channel_ns_max.max(sum.delay_ns_max);
        self.stats.channel_samples += sum.delayed;
        self.sent_deliveries = 0;
        self.sent_executions = 0;
        self.sent_reports = 0;
        self.sent_queries = 0;
        self.recv_qreplies = 0;
        self.sent_decisions = 0;
        if matched {
            self.inflight = 0;
        }
        report
    }

    fn round_barrier(&mut self, round: u64) {
        self.flush_all();
        let mut marked: Vec<usize> = Vec::with_capacity(self.conns.len());
        for g in 0..self.conns.len() {
            if self.send(g, &Frame::RoundMark { round }) {
                marked.push(g);
            }
        }
        self.flush_all();
        let mut complete = marked.len() == self.conns.len();
        for g in marked {
            match self.recv(g) {
                Some(Frame::RoundAck { round: echoed }) if echoed == round => {}
                _ => complete = false,
            }
        }
        if !complete {
            self.stats.window_mismatches += 1;
        } else {
            self.inflight = 0;
        }
        self.stats.rounds += 1;
    }

    fn link_delay(&mut self, extra_ns: u64) {
        self.link_delay_ns = extra_ns;
    }

    fn publish_report(&mut self, generation: u64, report: &ServerReport) {
        if self.up.contains(&report.server) {
            let group = self.group_of(report.server);
            if self.send(
                group,
                &Frame::Report {
                    generation,
                    report: *report,
                },
            ) {
                self.sent_reports += 1;
            }
        }
        self.stats.control_reports += 1;
    }

    fn control(&mut self, msg: &ControlMsg) -> Vec<ControlReply> {
        match msg {
            ControlMsg::Query(q) => {
                self.stats.control_queries += 1;
                // One copy of the query per group owning an in-scope live
                // server, in ascending group order; QReplies are read back
                // synchronously in the same order. TCP FIFO plus
                // one-reply-per-query makes the pairing deterministic, so
                // reply order never depends on worker scheduling.
                let mut groups: BTreeSet<usize> = BTreeSet::new();
                for s in &q.scope {
                    if self.up.contains(s) {
                        groups.insert(self.group_of(*s));
                    }
                }
                let mut sent: Vec<usize> = Vec::with_capacity(groups.len());
                for &g in &groups {
                    if self.send(g, &Frame::Query { query: q.clone() }) {
                        self.sent_queries += 1;
                        sent.push(g);
                    }
                }
                self.flush_all();
                let mut replies = Vec::with_capacity(sent.len());
                for g in sent {
                    if let Some(Frame::QReply { reply }) = self.recv(g) {
                        // Count the reply's exact wire footprint (recv's
                        // byte tally is per-read, not per-frame).
                        self.scratch.clear();
                        Frame::QReply {
                            reply: reply.clone(),
                        }
                        .encode(&mut self.scratch);
                        self.stats.control_wire_bytes += self.scratch.len() as u64;
                        self.recv_qreplies += 1;
                        self.stats.control_replies += 1;
                        replies.push(reply);
                    }
                }
                replies
            }
            ControlMsg::Decision(d) => {
                self.stats.control_decisions += 1;
                // Decisions are broadcast: every group learns the round's
                // outcome even if none of its servers moved.
                for g in 0..self.conns.len() {
                    if self.send(g, &Frame::Decision { decision: d.clone() }) {
                        self.sent_decisions += 1;
                    }
                }
                Vec::new()
            }
            ControlMsg::Reply(_) => Vec::new(),
        }
    }

    fn stats(&self) -> BackendStats {
        let mut s = self.stats;
        s.wall_ns = self.now_ns();
        s
    }

    fn shutdown(&mut self) {
        if self.shut {
            return;
        }
        self.shut = true;
        for g in 0..self.conns.len() {
            self.send(g, &Frame::Shutdown);
        }
        self.flush_all();
        for conn in &mut self.conns {
            // Closing our copies of the socket unblocks a worker stuck in
            // read even if the Shutdown frame never made it out.
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
            let deadline = Instant::now() + EXIT_TIMEOUT;
            loop {
                match conn.child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    _ => {
                        let _ = conn.child.kill();
                        let _ = conn.child.wait();
                        break;
                    }
                }
            }
        }
    }
}

impl Drop for NetBackend {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn read_hello_accepts_matching_version() {
        let bytes = Frame::Hello {
            group: 3,
            wire_version: WIRE_VERSION,
        }
        .encode_vec();
        let mut r = Cursor::new(bytes);
        let mut fb = FrameBuffer::new();
        assert_eq!(read_hello(&mut r, &mut fb).unwrap(), 3);
    }

    #[test]
    fn read_hello_rejects_old_header_version() {
        // A v1 worker's Hello: header version 1, payload just the group
        // (v1 had no version field). Must fail as a named version
        // mismatch before any payload parsing.
        let mut bytes = vec![0, 0, 0, 6, 1, 0x01];
        bytes.extend(9u32.to_be_bytes());
        let mut r = Cursor::new(bytes);
        let mut fb = FrameBuffer::new();
        let err = read_hello(&mut r, &mut fb).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(
            msg.contains("wire version mismatch") && msg.contains("v1"),
            "got: {msg}"
        );
    }

    #[test]
    fn read_hello_rejects_mismatched_hello_field() {
        // Header version matches but the Hello's announced version does
        // not — the negotiation field, not the codec, catches this one.
        let bytes = Frame::Hello {
            group: 0,
            wire_version: WIRE_VERSION + 1,
        }
        .encode_vec();
        let mut r = Cursor::new(bytes);
        let mut fb = FrameBuffer::new();
        let err = read_hello(&mut r, &mut fb).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("wire version mismatch in handshake"));
    }

    #[test]
    fn read_hello_rejects_non_hello_frame() {
        let bytes = Frame::Shutdown.encode_vec();
        let mut r = Cursor::new(bytes);
        let mut fb = FrameBuffer::new();
        let err = read_hello(&mut r, &mut fb).unwrap_err();
        assert!(err.to_string().contains("expected Hello"));
    }

    /// All `PLASMA_NET_GROUPS` cases in one test: the variable is process
    /// global, so splitting these across tests would race under the
    /// parallel test runner.
    #[test]
    fn net_groups_env_is_validated_at_parse_time() {
        std::env::remove_var("PLASMA_NET_GROUPS");
        assert_eq!(NetConfig::from_env().unwrap().groups, 2);

        std::env::set_var("PLASMA_NET_GROUPS", "3");
        assert_eq!(NetConfig::from_env().unwrap().groups, 3);

        for bad in ["0", "-1", "two", ""] {
            std::env::set_var("PLASMA_NET_GROUPS", bad);
            let err = NetConfig::from_env().unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
            let msg = err.to_string();
            assert!(
                msg.contains("PLASMA_NET_GROUPS") && msg.contains(bad),
                "error must name the variable and value: {msg}"
            );
        }
        std::env::remove_var("PLASMA_NET_GROUPS");
    }

    #[test]
    fn zero_groups_is_rejected_at_launch() {
        let cfg = NetConfig {
            groups: 0,
            worker_bin: None,
        };
        let err = match NetBackend::launch(cfg) {
            Err(e) => e,
            Ok(_) => panic!("groups = 0 must be rejected"),
        };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("at least 1 worker group"));
    }
}
