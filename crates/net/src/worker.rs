//! The `plasma-server` worker loop: one process, one server group.
//!
//! A worker is the process-level analogue of `LiveBackend`'s per-server
//! thread: it connects back to the coordinator, announces its group with a
//! [`Frame::Hello`], then services the coordinator's frame stream — opening
//! per-server accounting buckets on `ServerUp`, tallying `Deliver`/
//! `Execute` carriage, and answering window/round barriers over the same
//! TCP connection. Because TCP is FIFO, a barrier ack proves every frame
//! written before the mark was received before it — the same exactly-once
//! argument the thread backend makes with channel markers.
//!
//! A worker owns no policy and no clock authority: it counts what it is
//! handed and echoes barriers. When the coordinator's connection closes
//! (clean `Shutdown` or coordinator death), the worker exits; an orphaned
//! `plasma-server` process would mean this invariant broke, which the
//! `net-parity` CI job checks for explicitly.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;

use plasma_backend::control::{answer_query, ServerReport};
use plasma_backend::wire::DecodeError;

use crate::frame::{Frame, FrameBuffer, WindowCounters, WIRE_VERSION};

/// How the worker loop ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkerExit {
    /// The coordinator sent a clean [`Frame::Shutdown`].
    Shutdown,
    /// The coordinator's connection closed without a shutdown frame (its
    /// process died); the worker exits rather than linger as an orphan.
    Disconnected,
}

/// Maps a stream decode failure to an `io::Error`, turning a version
/// mismatch into a clean handshake-style failure that names both versions
/// instead of a bare mid-stream decode error.
pub(crate) fn decode_failure(e: DecodeError) -> std::io::Error {
    let msg = match e {
        DecodeError::BadVersion(v) => format!(
            "wire version mismatch: peer speaks v{v}, this side speaks v{WIRE_VERSION}; \
             closing the connection"
        ),
        other => other.to_string(),
    };
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// Runs the worker loop to completion: connect, hello, serve frames.
///
/// Returns how the loop ended, or an `io::Error` on connect/protocol
/// failures (malformed frames surface as `InvalidData`; a coordinator
/// speaking a different wire version surfaces as a clean version-mismatch
/// error naming both versions).
pub fn run(addr: &str, group: u32) -> std::io::Result<WorkerExit> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let hello = Frame::Hello {
        group,
        wire_version: WIRE_VERSION,
    }
    .encode_vec();
    stream.write_all(&hello)?;

    let mut fb = FrameBuffer::new();
    let mut chunk = [0u8; 16 * 1024];
    // Per-server window buckets. BTreeMap so sums fold in a deterministic
    // order (the sums are commutative anyway, but determinism is the house
    // style).
    let mut servers: BTreeMap<u32, WindowCounters> = BTreeMap::new();
    // Group-level control accounting (queries are per-group, not
    // per-server), folded into every window ack alongside the buckets.
    let mut ctrl = WindowCounters::default();
    // Held LEM report rows for `held_generation`, answered on Query.
    let mut held: BTreeMap<u32, ServerReport> = BTreeMap::new();
    let mut held_generation = 0u64;
    let mut reply = Vec::with_capacity(64);

    loop {
        while let Some(frame) = fb.next().map_err(decode_failure)? {
            reply.clear();
            match frame {
                Frame::ServerUp { server, vcpus } => {
                    let _ = vcpus;
                    servers.entry(server).or_default();
                }
                Frame::ServerDown { server } => {
                    let counters = servers.remove(&server).unwrap_or_default();
                    held.remove(&server);
                    Frame::ServerRetired { server, counters }.encode(&mut reply);
                }
                Frame::Deliver { delivery, delay_ns } => {
                    let w = servers.entry(delivery.server).or_default();
                    w.deliveries += 1;
                    if delay_ns > 0 {
                        w.delayed += 1;
                        w.delay_ns_total += delay_ns;
                        w.delay_ns_max = w.delay_ns_max.max(delay_ns);
                    }
                }
                Frame::Execute { execution } => {
                    let w = servers.entry(execution.server).or_default();
                    w.executions += 1;
                    w.busy_ns += execution.service_ns;
                }
                Frame::WindowMark { generation } => {
                    let mut sum = WindowCounters::default();
                    for w in servers.values_mut() {
                        sum.fold(w);
                        *w = WindowCounters::default();
                    }
                    sum.fold(&ctrl);
                    ctrl = WindowCounters::default();
                    Frame::WindowAck {
                        generation,
                        counters: sum,
                    }
                    .encode(&mut reply);
                }
                Frame::RoundMark { round } => {
                    Frame::RoundAck { round }.encode(&mut reply);
                }
                Frame::Report { generation, report } => {
                    if generation != held_generation {
                        held.clear();
                        held_generation = generation;
                    }
                    servers.entry(report.server).or_default().reports += 1;
                    held.insert(report.server, report);
                }
                Frame::Query { query } => {
                    ctrl.queries += 1;
                    ctrl.replies += 1;
                    Frame::QReply {
                        reply: answer_query(held_generation, &held, &query),
                    }
                    .encode(&mut reply);
                }
                Frame::Decision { decision } => {
                    let _ = decision;
                    ctrl.decisions += 1;
                }
                Frame::Shutdown => return Ok(WorkerExit::Shutdown),
                // Coordinator never sends worker->coordinator kinds or a
                // second Hello; receiving one means the peer is confused.
                Frame::Hello { .. }
                | Frame::ServerRetired { .. }
                | Frame::WindowAck { .. }
                | Frame::RoundAck { .. }
                | Frame::QReply { .. } => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("unexpected frame from coordinator: {frame:?}"),
                    ));
                }
            }
            if !reply.is_empty() {
                stream.write_all(&reply)?;
            }
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Ok(WorkerExit::Disconnected);
        }
        fb.extend(&chunk[..n]);
    }
}

/// Parses `plasma-server` CLI arguments: `--connect ADDR --group N`.
///
/// Returns `(addr, group)` or a usage error string.
pub fn parse_args<I: Iterator<Item = String>>(mut args: I) -> Result<(String, u32), String> {
    let mut addr: Option<String> = None;
    let mut group: Option<u32> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => match args.next() {
                Some(a) => addr = Some(a),
                None => return Err("--connect expects HOST:PORT".into()),
            },
            "--group" => match args.next().and_then(|g| g.parse().ok()) {
                Some(g) => group = Some(g),
                None => return Err("--group expects an integer".into()),
            },
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    match (addr, group) {
        (Some(a), Some(g)) => Ok((a, g)),
        _ => Err("both --connect HOST:PORT and --group N are required".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> std::vec::IntoIter<String> {
        s.iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn version_mismatch_is_a_named_handshake_failure() {
        let err = decode_failure(DecodeError::BadVersion(1));
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(
            msg.contains("wire version mismatch")
                && msg.contains("v1")
                && msg.contains(&format!("v{WIRE_VERSION}")),
            "both versions must be named: {msg}"
        );
        // Other decode failures keep their plain rendering.
        assert_eq!(
            decode_failure(DecodeError::Truncated).to_string(),
            DecodeError::Truncated.to_string()
        );
    }

    #[test]
    fn args_parse_and_reject() {
        assert_eq!(
            parse_args(argv(&["--connect", "127.0.0.1:9", "--group", "3"])).unwrap(),
            ("127.0.0.1:9".to_string(), 3)
        );
        assert!(parse_args(argv(&["--connect", "x"])).is_err());
        assert!(parse_args(argv(&["--group", "1"])).is_err());
        assert!(parse_args(argv(&["--bogus"])).is_err());
        assert!(parse_args(argv(&["--group", "zebra", "--connect", "x"])).is_err());
    }
}
