#![warn(missing_docs)]

//! PLASMA's **elasticity management runtime** (EMR).
//!
//! The EMR is the paper's §4: it consumes the profiling runtime's (EPR)
//! per-window snapshots, evaluates the compiled EPL policy against them, and
//! executes elasticity actions through the actor runtime:
//!
//! - [`view`] — the evaluation context: a scoped view over a profiling
//!   snapshot plus server capacity metadata.
//! - [`eval`] — the condition evaluator: computes the variable bindings
//!   (environments) that satisfy a rule's condition.
//! - [`action`] — migration actions and priority-based conflict resolution
//!   (§4.3).
//! - [`lem`] — Local Elasticity Managers (Alg. 1): interaction rules
//!   (`colocate`, `separate`, `pin`) evaluated per server.
//! - [`gem`] — Global Elasticity Managers (Alg. 2): resource rules
//!   (`balance`, `reserve`) over a global snapshot, plus scale in/out
//!   votes.
//! - [`emr`] — [`PlasmaEmr`], the [`ElasticityController`] implementation
//!   that wires LEM and GEM phases into elasticity ticks with modeled
//!   control-plane latency, admits migrations via QUERY/QREPLY-style
//!   capacity checks, and places newly created actors by rule (§4.2).
//! - [`baselines`] — the comparison systems from the evaluation: an
//!   Orleans-style count balancer, the frequency-based "default rule"
//!   colocator, and a heavy-to-idle migrator.
//!
//! [`ElasticityController`]: plasma_actor::ElasticityController

pub mod action;
pub mod baselines;
pub mod emr;
pub mod eval;
#[cfg(test)]
mod eval_props;
pub mod gem;
pub mod lem;
pub mod view;

pub use action::{Action, ActionKind};
pub use emr::{EmrConfig, PlasmaEmr};
