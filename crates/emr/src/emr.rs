//! [`PlasmaEmr`]: the elasticity controller wiring LEM and GEM planning
//! into the actor runtime.
//!
//! One elasticity round follows the paper's two-level protocol (Figs. 2/4,
//! Algs. 1-2):
//!
//! 1. **Tick** — LEMs read the profiling snapshot; each reports to its GEM.
//!    GEMs with enough reports plan resource actions (`balance`,
//!    `reserve`) over their managed servers and vote on scaling; LEMs plan
//!    interaction actions (`colocate`, `separate`, `pin`), letting
//!    colocation partners chase this round's resource migrations.
//! 2. **Apply** (one control round-trip later) — conflicting actions are
//!    resolved by priority, each migration is admitted only if the target
//!    has idle capacity (the QUERY/QREPLY handshake of Alg. 1), and
//!    admitted actions are handed to the runtime's live-migration machinery.
//!
//! Scaling follows §4.2: when a majority of GEMs observe all their servers
//! overloaded, a server is provisioned; when a majority observe all idle,
//! one server is drained and decommissioned.

use std::collections::{BTreeMap, BTreeSet};

use plasma_actor::ids::{ActorId, ActorTypeId};
use plasma_actor::{
    ControlDecision, ControlQuery, ElasticityController, MigrationOrder, Runtime, ServerReport,
};
use plasma_cluster::{InstanceType, ServerId};
use plasma_epl::analyze::CompiledPolicy;
use plasma_epl::ast::{ActorRef, Behavior, Cond, Feature};
use plasma_trace::{Component, EventId, TraceEventKind, Tracer};

use crate::action::{resolve_conflicts, Action, ActionKind, RuleStat};
use crate::eval::BoundPolicy;
use crate::gem::{Bounds, GemConfig};
use crate::view::{EvalCtx, EvalFrame};
use crate::{gem, lem};

/// Control token for the apply phase.
const TOKEN_APPLY: u64 = 1;

/// Trace label for a behavior kind.
fn kind_str(kind: ActionKind) -> &'static str {
    match kind {
        ActionKind::Balance => "balance",
        ActionKind::Reserve => "reserve",
        ActionKind::Colocate => "colocate",
        ActionKind::Separate => "separate",
    }
}

/// Rule index as it appears in trace events: internal actions (scale-in
/// drains, marked `usize::MAX`) map to `u64::MAX`, which exporters render
/// as `null`.
fn rule_trace_id(rule: usize) -> u64 {
    if rule == usize::MAX {
        u64::MAX
    } else {
        rule as u64
    }
}

/// Configuration of the EMR.
#[derive(Clone, Debug)]
pub struct EmrConfig {
    /// Number of GEMs (the paper runs several for scalability and fault
    /// tolerance, §5.7).
    pub num_gems: usize,
    /// Fallback watermarks for rules that state none.
    pub default_bounds: Bounds,
    /// Maximum migrations one `balance` invocation may plan per round.
    pub max_balance_moves: usize,
    /// Minimum utilization gap for a balance move.
    pub min_gap: f64,
    /// Whether the EMR may grow/shrink the cluster.
    pub auto_scale: bool,
    /// Flavor provisioned on scale-out.
    pub scale_instance: InstanceType,
    /// How many servers may be drained per round on scale-in.
    pub scale_in_step: usize,
    /// How many servers may be requested per round on scale-out.
    pub scale_out_step: usize,
    /// Alg. 2's `K`: a GEM only processes its reports once it has heard
    /// from more than `k_reports` servers.
    pub k_reports: usize,
}

impl Default for EmrConfig {
    fn default() -> Self {
        EmrConfig {
            num_gems: 1,
            default_bounds: Bounds::DEFAULT,
            max_balance_moves: 8,
            min_gap: 0.10,
            auto_scale: false,
            scale_instance: InstanceType::m1_small(),
            scale_in_step: 2,
            scale_out_step: 1,
            k_reports: 0,
        }
    }
}

/// One planned-but-not-yet-applied elasticity round.
struct Round {
    /// The tick that planned the round (for trace correlation).
    number: u64,
    /// When planning happened; the plan→apply gap is the LEM→GEM→LEM
    /// decision latency the evaluation harness reports.
    planned_at: plasma_sim::SimTime,
    /// Snapshot generation the plan was computed from. If a profiling
    /// window (or an injected snapshot-skew fault) rolls a new generation
    /// before the apply instant, the apply phase detects the skew.
    planned_generation: u64,
    /// Servers requested this round (for the decision broadcast).
    grow: u32,
    /// Servers put into draining this round (for the decision broadcast).
    shrink: u32,
    actions: Vec<Action>,
}

/// Counters the EMR exports into the run report each round.
#[derive(Debug, Default, Clone, Copy)]
pub struct EmrStats {
    /// Elasticity rounds executed.
    pub ticks: u64,
    /// Actions planned (pre conflict resolution).
    pub planned: u64,
    /// Migrations admitted and issued.
    pub admitted: u64,
    /// Actions dropped by admission control or migration guards.
    pub rejected: u64,
    /// Scale-out events.
    pub scale_outs: u64,
    /// Scale-in (decommission) events.
    pub scale_ins: u64,
    /// Plan→apply round-trips completed.
    pub rounds_applied: u64,
    /// Total simulated plan→apply decision latency over applied rounds, in
    /// milliseconds (the LEM→GEM→LEM control loop of Alg. 1).
    pub decision_latency_ms_total: f64,
    /// Worst simulated plan→apply decision latency, in milliseconds.
    pub decision_latency_ms_max: f64,
    /// Total nanoseconds on the execution backend's monotonic clock spent
    /// building the evaluation frame and running GEM/LEM planning.
    /// Identically 0 under the sim backend (its carrier clock never moves)
    /// and host-dependent under live — so it is kept out of traces and
    /// benchmark baselines, exported only as a report scalar.
    pub eval_ns: u64,
    /// Rounds whose apply phase ran against a newer snapshot generation
    /// than the one it was planned from (a profiling window — or an
    /// injected snapshot-skew fault — closed mid-round).
    pub snapshot_skew_rounds: u64,
    /// Evaluation consumers (GEM scopes, the LEM pass, the apply phase)
    /// served by an already-built snapshot/frame instead of rebuilding one.
    pub snapshot_reuse: u64,
    /// Rounds whose evaluation frame was rebuilt from scratch (first round,
    /// scope changes, generation gaps past the delta history).
    pub frame_rebuilds: u64,
    /// Rounds whose retained evaluation frame was advanced in place by
    /// applying snapshot deltas instead of rebuilding.
    pub frame_patches: u64,
    /// Total nanoseconds on the execution backend's monotonic clock spent
    /// patching the retained frame (a subset of `eval_ns`, with the same
    /// backend caveat: identically 0 under sim).
    pub frame_patch_ns: u64,
}

/// The PLASMA elasticity management runtime.
pub struct PlasmaEmr {
    policy: CompiledPolicy,
    cfg: EmrConfig,
    pending: Option<Round>,
    /// Standing reservations: actor -> the dedicated server it was granted.
    /// An entry shields its server from balance targets and stops the
    /// reserve rule from re-planning the same actor every round; it is
    /// pruned when the actor dies or drifts off its home.
    reserved_homes: BTreeMap<ActorId, ServerId>,
    reserved_servers: BTreeSet<ServerId>,
    /// Actors currently pinned by this EMR's rules; pins are released when
    /// their rule stops firing (otherwise `pin` would permanently defeat
    /// scale-in).
    pinned: BTreeSet<ActorId>,
    draining: BTreeSet<ServerId>,
    booting: usize,
    /// Consecutive rounds with a majority scale-in vote; draining starts
    /// only after two in a row, so one noisy profiling window (e.g. a
    /// barrier lull) cannot decommission a busy server.
    in_vote_streak: u32,
    failed_gems: BTreeSet<usize>,
    placement_counter: usize,
    /// The retained evaluation frame, advanced across rounds by applying
    /// snapshot deltas; `None` until the first planning round.
    frame: Option<EvalFrame>,
    stats: EmrStats,
}

impl PlasmaEmr {
    /// Creates an EMR executing `policy`.
    pub fn new(policy: CompiledPolicy, cfg: EmrConfig) -> Self {
        PlasmaEmr {
            policy,
            cfg,
            pending: None,
            reserved_homes: BTreeMap::new(),
            reserved_servers: BTreeSet::new(),
            pinned: BTreeSet::new(),
            draining: BTreeSet::new(),
            booting: 0,
            in_vote_streak: 0,
            failed_gems: BTreeSet::new(),
            placement_counter: 0,
            frame: None,
            stats: EmrStats::default(),
        }
    }

    /// Returns the accumulated statistics.
    pub fn stats(&self) -> EmrStats {
        self.stats
    }

    /// Simulates a GEM crash: its servers are re-assigned to the remaining
    /// GEMs on the next round (the paper's shuffling fault tolerance,
    /// §4.3).
    pub fn fail_gem(&mut self, gem: usize) {
        // Unknown GEM ids are a no-op: `gem_assignment` only ever skips
        // ids in `0..num_gems`, so recording an out-of-range failure would
        // desynchronise `alive_gems` from the actual partition count.
        if gem < self.cfg.num_gems {
            self.failed_gems.insert(gem);
        }
    }

    /// Returns the number of live GEMs.
    pub fn alive_gems(&self) -> usize {
        self.cfg.num_gems.saturating_sub(self.failed_gems.len())
    }

    /// Partitions the in-scope servers among live GEMs (round-robin by
    /// server id, skipping failed GEMs).
    ///
    /// Recomputed every round from the servers currently running, so a
    /// crashed GEM's servers re-shuffle onto the survivors on the next
    /// tick, and a crashed server silently leaves its GEM's partition —
    /// the paper's §4.3 shuffling fault tolerance.
    pub fn gem_assignment(&self, servers: &[ServerId]) -> Vec<Vec<ServerId>> {
        let alive: Vec<usize> = (0..self.cfg.num_gems)
            .filter(|g| !self.failed_gems.contains(g))
            .collect();
        if alive.is_empty() {
            return Vec::new();
        }
        let mut out = vec![Vec::new(); alive.len()];
        for (i, &sid) in servers.iter().enumerate() {
            out[i % alive.len()].push(sid);
        }
        out
    }

    /// Returns the index (into [`PlasmaEmr::gem_assignment`]'s output) of
    /// the live GEM managing `sid`, or `None` if `sid` is not in `servers`
    /// or no GEM is alive.
    pub fn gem_for_server(&self, servers: &[ServerId], sid: ServerId) -> Option<usize> {
        let assignment = self.gem_assignment(servers);
        assignment.iter().position(|group| group.contains(&sid))
    }

    /// The tightest balance-rule bounds in the policy (used for admission
    /// and scaling decisions).
    fn policy_bounds(&self) -> Bounds {
        let mut bounds = self.cfg.default_bounds;
        for rule in &self.policy.rules {
            for cb in &rule.behaviors {
                if let Behavior::Balance { res, .. } = &cb.behavior {
                    let b = gem::extract_bounds(&rule.cond, *res, self.cfg.default_bounds);
                    bounds = Bounds {
                        upper: bounds.upper.min(b.upper),
                        lower: bounds.lower.max(b.lower),
                    };
                }
            }
        }
        bounds
    }

    fn in_scope_servers(&self, rt: &Runtime) -> Vec<ServerId> {
        rt.cluster()
            .running_ids()
            .into_iter()
            .filter(|s| !self.draining.contains(s))
            .collect()
    }

    fn progress_draining(&mut self, rt: &mut Runtime) {
        let draining: Vec<ServerId> = self.draining.iter().copied().collect();
        for sid in draining {
            // A draining server that crashed (or was stopped externally)
            // no longer needs decommissioning; forget it.
            if !rt.cluster().server(sid).is_running() {
                self.draining.remove(&sid);
                continue;
            }
            if rt.actors_on(sid).is_empty() && rt.decommission_server(sid).is_ok() {
                self.draining.remove(&sid);
                self.stats.scale_ins += 1;
            }
        }
    }

    /// Emits `RuleEvaluated`/`RuleFired` events for one planner pass and
    /// links each produced action to the event of the rule that fired it.
    fn trace_rule_events(
        tracer: &Tracer,
        now: plasma_sim::SimTime,
        component: Component,
        stats: &[RuleStat],
        actions: &mut [Action],
    ) {
        if !tracer.is_enabled() {
            return;
        }
        let mut fired: BTreeMap<usize, EventId> = BTreeMap::new();
        for stat in stats {
            let eval = tracer.emit(now, component, None, || TraceEventKind::RuleEvaluated {
                rule: stat.rule as u64,
                matches: stat.matches,
            });
            if stat.actions > 0 {
                if let Some(id) = tracer.emit(now, component, eval, || TraceEventKind::RuleFired {
                    rule: stat.rule as u64,
                    actions: stat.actions,
                }) {
                    fired.insert(stat.rule, id);
                }
            }
        }
        for action in actions {
            if action.trace.is_none() {
                action.trace = fired.get(&action.rule).copied();
            }
        }
    }

    fn plan_round(&mut self, rt: &mut Runtime) {
        let scope = self.in_scope_servers(rt);
        if scope.is_empty() {
            return;
        }
        let tracer = rt.tracer().clone();
        let trace_now = rt.now();
        let gem_cfg = GemConfig {
            default_bounds: self.cfg.default_bounds,
            max_balance_moves: self.cfg.max_balance_moves,
            min_gap: self.cfg.min_gap,
        };
        // Standing reservations persist while their actor lives on its
        // dedicated home; entries for dead or drifted actors are pruned, so
        // idle dedicated servers become reclaimable on scale-in.
        self.reserved_homes
            .retain(|&actor, &mut home| rt.actor_alive(actor) && rt.actor_server(actor) == home);
        self.reserved_servers = self.reserved_homes.values().copied().collect();
        // GEM phase: resource rules per GEM over its managed servers. One
        // evaluation frame (indexes + bound rule plans) is built from this
        // round's snapshot and shared by every GEM scope and the LEM pass.
        let mut all_actions: Vec<Action> = Vec::new();
        let mut out_votes = 0usize;
        let mut in_votes = 0usize;
        let mut unplaced = 0usize;
        let assignment = self.gem_assignment(&scope);
        let gem_count = assignment.len();
        let round_no = self.stats.ticks;
        let debug = std::env::var_os("PLASMA_EMR_DEBUG").is_some();
        let eval_start = rt.monotonic_ns();
        // Advance the retained frame to this round's snapshot generation by
        // applying the runtime's deltas; fall back to a from-scratch build
        // on the first round, on scope changes, and on generation gaps
        // beyond the bounded delta history.
        let mut retained = self.frame.take();
        let frame = match retained.take_if(|f| f.advance(rt)) {
            Some(f) => {
                self.stats.frame_patches += 1;
                self.stats.frame_patch_ns += rt.monotonic_ns().saturating_sub(eval_start);
                f
            }
            None => {
                self.stats.frame_rebuilds += 1;
                EvalFrame::new(rt)
            }
        };
        let mut consumers: u32 = 0;
        let bounds = self.policy_bounds();
        let (mut lem_plan, planned_generation) = {
            let bound = BoundPolicy::bind(&self.policy, &frame);
            for (gem_idx, servers) in assignment.iter().enumerate() {
                // Alg. 2 line 8: wait for more than K reports before
                // planning.
                if servers.len() <= self.cfg.k_reports {
                    continue;
                }
                // Alg. 2's QUERY, carried as first-class control traffic:
                // the GEM asks the execution backend for its managed
                // servers' report rows rather than reading the shared
                // snapshot directly. Replies carry bit-exact copies of
                // the rows the runtime published at window roll, so the
                // context built from them is interchangeable with the
                // shared-snapshot path — debug-asserted below, and
                // enforced release-mode by the N-way parity suite.
                let query = ControlQuery {
                    gem: gem_idx as u32,
                    round: round_no,
                    generation: frame.generation(),
                    upper_bits: bounds.upper.to_bits(),
                    lower_bits: bounds.lower.to_bits(),
                    scope: servers.iter().map(|s| s.0).collect(),
                };
                let query_ev = tracer.emit(trace_now, Component::Gem, None, || {
                    TraceEventKind::ControlQuerySent {
                        round: round_no,
                        gem: gem_idx as u32,
                        generation: frame.generation(),
                        servers: servers.len() as u32,
                    }
                });
                let replies = rt.control_query(query);
                // Merge the per-carrier replies back into scope order —
                // the order `EvalCtx::scoped` materializes servers in —
                // so the carrier's topology (one reply under sim, one per
                // group under net) cannot influence evaluation order.
                let mut merged: Vec<ServerReport> = Vec::with_capacity(servers.len());
                for sid in servers {
                    if let Some(c) = replies
                        .iter()
                        .flat_map(|r| r.candidates.iter())
                        .find(|c| c.server == sid.0)
                    {
                        merged.push(*c);
                    }
                }
                let ctx = EvalCtx::for_reports(&frame, &merged);
                debug_assert_eq!(
                    ctx.servers,
                    EvalCtx::scoped(&frame, servers).servers,
                    "wire-carried candidates must reproduce the shared-snapshot \
                     rows (round {round_no}, gem {gem_idx})"
                );
                let (adv_out, adv_in) = gem::scale_votes(&ctx, bounds);
                tracer.emit(trace_now, Component::Gem, query_ev, || {
                    TraceEventKind::ControlQueryReply {
                        round: round_no,
                        gem: gem_idx as u32,
                        candidates: merged.len() as u32,
                        scale_out: adv_out,
                        scale_in: adv_in,
                    }
                });
                consumers += 1;
                if debug {
                    for s in &ctx.servers {
                        eprintln!(
                            "[emr {}] {:?} cpu={:.2} actors={}",
                            trace_now, s.id, s.cpu, s.actor_count
                        );
                    }
                    for a in ctx.actors() {
                        eprintln!(
                            "[emr]   {:?} on {:?} share={:.3} sent={} pinned={}",
                            a.actor, a.server, a.cpu_share, a.counters.bytes_sent, a.pinned
                        );
                    }
                }
                let mut plan = gem::plan(&bound, &ctx, &gem_cfg, &self.reserved_servers);
                Self::trace_rule_events(
                    &tracer,
                    trace_now,
                    Component::Gem,
                    &plan.rule_stats,
                    &mut plan.actions,
                );
                tracer.emit(trace_now, Component::Gem, None, || {
                    TraceEventKind::ScaleVote {
                        gem: gem_idx as u32,
                        scale_out: plan.scale_out_vote,
                        scale_in: plan.scale_in_vote,
                    }
                });
                if debug {
                    eprintln!(
                        "[emr] planned {} actions (out={} in={})",
                        plan.actions.len(),
                        plan.scale_out_vote,
                        plan.scale_in_vote
                    );
                    for a in &plan.actions {
                        eprintln!("[emr]   {a:?}");
                    }
                }
                out_votes += plan.scale_out_vote as usize;
                in_votes += plan.scale_in_vote as usize;
                unplaced += plan.unplaced_reserves;
                self.reserved_servers.extend(plan.reserved.iter().copied());
                all_actions.extend(plan.actions);
            }
            // LEM phase: interaction rules, chasing the GEM round's targets.
            let pending_dst: BTreeMap<ActorId, ServerId> =
                all_actions.iter().map(|a| (a.actor, a.dst)).collect();
            let ctx = EvalCtx::scoped(&frame, &scope);
            consumers += 1;
            tracer.emit(trace_now, Component::Gem, None, || {
                TraceEventKind::SnapshotShared {
                    round: round_no,
                    generation: frame.generation(),
                    consumers,
                }
            });
            let plan = lem::plan(
                &bound,
                &ctx,
                &pending_dst,
                bounds.upper,
                &self.reserved_servers,
            );
            (plan, frame.generation())
        };
        self.frame = Some(frame);
        self.stats.eval_ns += rt.monotonic_ns().saturating_sub(eval_start);
        self.stats.snapshot_reuse += consumers.saturating_sub(1) as u64;
        Self::trace_rule_events(
            &tracer,
            trace_now,
            Component::Lem,
            &lem_plan.rule_stats,
            &mut lem_plan.actions,
        );
        // Pin set is recomputed every round: pin while the rule fires,
        // release when it no longer does.
        let new_pins: BTreeSet<ActorId> = lem_plan.pins.iter().copied().collect();
        for &actor in self.pinned.difference(&new_pins) {
            rt.set_pinned(actor, false);
        }
        for &actor in &new_pins {
            rt.set_pinned(actor, true);
        }
        self.pinned = new_pins;
        all_actions.extend(lem_plan.actions);
        self.stats.planned += all_actions.len() as u64;

        // Scaling by GEM majority vote (§4.2). Unplaced reserves justify
        // provisioning several servers in one round; the all-overloaded
        // vote grows the cluster one server at a time. The quorum is over
        // the *configured* GEM count, not just the live ones: crashed or
        // unreachable GEMs count as abstentions (§4.3), so a minority
        // island of GEMs can never scale the cluster on its own.
        let mut grow = 0u32;
        let mut shrink = 0u32;
        if self.cfg.auto_scale && gem_count > 0 {
            let majority = self.cfg.num_gems.max(gem_count) / 2 + 1;
            if out_votes >= majority {
                self.in_vote_streak = 0;
                let want = unplaced
                    .max(1)
                    .min(self.cfg.scale_out_step)
                    .saturating_sub(self.booting);
                for _ in 0..want {
                    if rt.request_server(self.cfg.scale_instance.clone()).is_some() {
                        self.booting += 1;
                        self.stats.scale_outs += 1;
                        grow += 1;
                    }
                }
            } else if in_votes >= majority && self.booting == 0 {
                self.in_vote_streak += 1;
                if self.in_vote_streak >= 2 {
                    let draining_before = self.draining.len();
                    all_actions.extend(self.plan_scale_in(rt));
                    shrink = (self.draining.len() - draining_before) as u32;
                }
            } else {
                self.in_vote_streak = 0;
            }
        }

        let mut actions = resolve_conflicts(all_actions);
        if tracer.is_enabled() {
            for action in &mut actions {
                let component = match action.kind {
                    ActionKind::Balance | ActionKind::Reserve => Component::Gem,
                    ActionKind::Colocate | ActionKind::Separate => Component::Lem,
                };
                let parent = action.trace;
                action.trace = tracer.emit(trace_now, component, parent, || {
                    TraceEventKind::PlanProposed {
                        round: round_no,
                        actor: action.actor.0,
                        src: action.src.0,
                        dst: action.dst.0,
                        action: kind_str(action.kind).to_string(),
                        priority: action.priority,
                        rule: rule_trace_id(action.rule),
                    }
                });
            }
        }
        self.pending = Some(Round {
            number: round_no,
            planned_at: trace_now,
            planned_generation,
            grow,
            shrink,
            actions,
        });
        // Model the LEM -> GEM -> LEM control round-trip before applying.
        rt.schedule_control(rt.control_latency() * 2, TOKEN_APPLY);
    }

    /// Drains the least-loaded servers for decommissioning.
    fn plan_scale_in(&mut self, rt: &Runtime) -> Vec<Action> {
        let scope = self.in_scope_servers(rt);
        let min_servers = rt.cluster().limits().min_servers;
        let mut spare = scope.len().saturating_sub(min_servers.max(1));
        let mut actions = Vec::new();
        let snapshot = rt.snapshot();
        let mut by_load: Vec<ServerId> = scope.clone();
        by_load.sort_by(|a, b| {
            let ua = snapshot.server(*a).map(|s| s.usage.cpu()).unwrap_or(0.0);
            let ub = snapshot.server(*b).map(|s| s.usage.cpu()).unwrap_or(0.0);
            ua.partial_cmp(&ub).expect("finite usage")
        });
        for victim in by_load.into_iter().take(self.cfg.scale_in_step * 2) {
            if spare == 0 {
                break;
            }
            if self.reserved_servers.contains(&victim) {
                continue;
            }
            // A server hosting pinned actors cannot be drained.
            if rt.actors_on(victim).iter().any(|&a| rt.is_pinned(a)) {
                continue;
            }
            spare -= 1;
            self.draining.insert(victim);
            // Spread the victim's actors over the surviving servers.
            let survivors: Vec<ServerId> = self
                .in_scope_servers(rt)
                .into_iter()
                .filter(|s| !self.draining.contains(s))
                .collect();
            if survivors.is_empty() {
                self.draining.remove(&victim);
                break;
            }
            for (i, actor) in rt.actors_on(victim).into_iter().enumerate() {
                actions.push(Action {
                    actor,
                    src: victim,
                    dst: survivors[i % survivors.len()],
                    kind: ActionKind::Balance,
                    priority: 100,
                    rule: usize::MAX,
                    trace: None,
                });
            }
        }
        actions
    }

    fn apply_round(&mut self, rt: &mut Runtime) {
        let Some(round) = self.pending.take() else {
            return;
        };
        let tracer = rt.tracer().clone();
        let trace_now = rt.now();
        let round_no = round.number;
        let bounds = self.policy_bounds();
        // Admission control: the QUERY/QREPLY handshake of Alg. 1. Each
        // target accepts an actor only while its projected usage stays
        // within bounds (this is what lets `balance` win over `colocate`).
        // The shared snapshot handle is fetched once at apply time (a
        // profiling window may have elapsed since planning) and reused for
        // every per-action share lookup below.
        let snapshot = rt.snapshot_shared();
        self.stats.snapshot_reuse += 1;
        // The plan was computed from an older generation: admission below
        // intentionally re-reads the *current* snapshot (fresher usage data
        // beats stale plans), and the round is counted as skewed.
        if snapshot.generation != round.planned_generation {
            self.stats.snapshot_skew_rounds += 1;
        }
        let mut projected: BTreeMap<ServerId, f64> = rt
            .cluster()
            .running_ids()
            .into_iter()
            .map(|sid| {
                let u = snapshot.server(sid).map(|s| s.usage.cpu()).unwrap_or(0.0);
                (sid, u)
            })
            .collect();
        let (grow, shrink) = (round.grow, round.shrink);
        let mut admitted_orders: Vec<MigrationOrder> = Vec::new();
        let mut actions = round.actions;
        actions.sort_by(|a, b| b.priority.cmp(&a.priority).then(a.rule.cmp(&b.rule)));
        for action in actions {
            let share = snapshot
                .actor(action.actor)
                .map(|s| s.cpu_share)
                .unwrap_or(0.0);
            let src_speed = rt.cluster().server(action.src).instance().total_speed();
            let dst = action.dst;
            // Alg. 1's QUERY to the destination LEM.
            let query = tracer.emit(trace_now, Component::Lem, action.trace, || {
                TraceEventKind::QuerySent {
                    round: round_no,
                    actor: action.actor.0,
                    src: action.src.0,
                    dst: dst.0,
                }
            });
            let reply = |admitted: bool, reason: &str| {
                tracer.emit(trace_now, Component::Lem, query, || {
                    TraceEventKind::QueryReply {
                        round: round_no,
                        actor: action.actor.0,
                        dst: dst.0,
                        admitted,
                        reason: reason.to_string(),
                    }
                })
            };
            if !rt.cluster().server(dst).is_running() {
                self.stats.rejected += 1;
                reply(false, "destination-down");
                continue;
            }
            // Under a partition the QUERY to the destination LEM never
            // returns; the GEM times out and drops the action (Alg. 1's
            // reply wait, with the fault model of §4.3).
            if !rt.reachable(action.src, dst) {
                self.stats.rejected += 1;
                reply(false, "query-timeout");
                continue;
            }
            let dst_speed = rt.cluster().server(dst).instance().total_speed();
            let incoming = share * src_speed / dst_speed.max(1e-9);
            let headroom_limit = if self.draining.contains(&action.src) {
                // Draining moves must land somewhere; allow up to saturation.
                0.95
            } else {
                bounds.upper
            };
            let projected_dst = projected.get(&dst).copied().unwrap_or(0.0);
            let projected_src = projected.get(&action.src).copied().unwrap_or(0.0);
            let within_headroom = projected_dst + incoming <= headroom_limit + 1e-9;
            let (accept, reason) = match action.kind {
                ActionKind::Reserve => (true, "reserve"),
                // A balance move is admitted when the target stays within
                // bounds, or - when the whole cluster runs hot - when it
                // still strictly improves on the source (otherwise a
                // saturated-but-skewed cluster could never rebalance).
                ActionKind::Balance => {
                    if within_headroom {
                        (true, "within-headroom")
                    } else if projected_dst + incoming < projected_src - share * 0.5 {
                        (true, "improves-source")
                    } else {
                        (false, "no-headroom")
                    }
                }
                // Interaction moves must find genuinely idle capacity
                // (the paper's balance-over-colocate admission, §4.3).
                _ => {
                    if within_headroom {
                        (true, "within-headroom")
                    } else {
                        (false, "no-headroom")
                    }
                }
            };
            let reply_id = reply(accept, reason);
            if !accept {
                self.stats.rejected += 1;
                if std::env::var_os("PLASMA_EMR_DEBUG").is_some() {
                    eprintln!("[emr] reject(admission) {action:?} dst={projected_dst:.2}");
                }
                continue;
            }
            match rt.migrate_traced(action.actor, dst, reply_id) {
                Ok(()) => {
                    self.stats.admitted += 1;
                    admitted_orders.push(MigrationOrder {
                        actor: action.actor.0,
                        src: action.src.0,
                        dst: dst.0,
                    });
                    if action.kind == ActionKind::Reserve {
                        self.reserved_homes.insert(action.actor, dst);
                    }
                    *projected.entry(dst).or_insert(0.0) += incoming;
                    if let Some(u) = projected.get_mut(&action.src) {
                        *u -= share;
                    }
                }
                Err(e) => {
                    self.stats.rejected += 1;
                    // The admission said yes but the runtime's migration
                    // guards (pin/residency/in-flight) said no; record the
                    // veto as a second, negative QREPLY.
                    tracer.emit(trace_now, Component::Lem, query, || {
                        TraceEventKind::QueryReply {
                            round: round_no,
                            actor: action.actor.0,
                            dst: dst.0,
                            admitted: false,
                            reason: format!("blocked-{e:?}"),
                        }
                    });
                    if std::env::var_os("PLASMA_EMR_DEBUG").is_some() {
                        eprintln!("[emr] reject({e:?}) {action:?}");
                    }
                }
            }
        }
        // Broadcast the applied round's outcome over the control carriage
        // (audit traffic: workers tally it, nothing feeds back) and mirror
        // it into the trace.
        let migrations = admitted_orders.len() as u32;
        rt.control_decision(ControlDecision {
            round: round_no,
            grow,
            shrink,
            migrations: admitted_orders,
        });
        tracer.emit(trace_now, Component::Gem, None, || {
            TraceEventKind::ControlDecisionIssued {
                round: round_no,
                grow,
                shrink,
                migrations,
            }
        });
        let decision_ms = trace_now.saturating_since(round.planned_at).as_secs_f64() * 1e3;
        self.stats.rounds_applied += 1;
        self.stats.decision_latency_ms_total += decision_ms;
        self.stats.decision_latency_ms_max = self.stats.decision_latency_ms_max.max(decision_ms);
        rt.record_custom("emr.decision_latency_ms", decision_ms);
        rt.record_custom("emr.admitted", self.stats.admitted as f64);
        rt.record_custom("emr.rejected", self.stats.rejected as f64);
        self.export_stats(rt);
    }

    /// Publishes the cumulative counters as report scalars so harnesses can
    /// read elasticity outcomes without reaching into the controller.
    fn export_stats(&self, rt: &mut Runtime) {
        let s = &self.stats;
        rt.record_scalar("emr.ticks", s.ticks as f64);
        rt.record_scalar("emr.planned", s.planned as f64);
        rt.record_scalar("emr.admitted", s.admitted as f64);
        rt.record_scalar("emr.rejected", s.rejected as f64);
        rt.record_scalar("emr.scale_outs", s.scale_outs as f64);
        rt.record_scalar("emr.scale_ins", s.scale_ins as f64);
        rt.record_scalar("emr.rounds_applied", s.rounds_applied as f64);
        rt.record_scalar("emr.eval_ns", s.eval_ns as f64);
        rt.record_scalar("emr.snapshot_reuse", s.snapshot_reuse as f64);
        rt.record_scalar("emr.snapshot_skew_rounds", s.snapshot_skew_rounds as f64);
        rt.record_scalar("emr.decision_latency_ms_max", s.decision_latency_ms_max);
        rt.record_scalar(
            "emr.decision_latency_ms_mean",
            if s.rounds_applied == 0 {
                0.0
            } else {
                s.decision_latency_ms_total / s.rounds_applied as f64
            },
        );
        // Appended after every pre-existing scalar so reports stay
        // byte-comparable to older baselines apart from these lines.
        rt.record_scalar("emr.frame_rebuilds", s.frame_rebuilds as f64);
        rt.record_scalar("emr.frame_patches", s.frame_patches as f64);
        rt.record_scalar("emr.frame_patch_ns", s.frame_patch_ns as f64);
    }

    /// Returns whether the policy wants `type_name` colocated with anything
    /// (used for creation-time placement, §4.2).
    fn type_in_colocate(&self, type_name: &str) -> bool {
        self.policy.rules.iter().any(|rule| {
            rule.behaviors.iter().any(|cb| match &cb.behavior {
                Behavior::Colocate(a, b) => {
                    ref_names_type(rule, a, type_name) || ref_names_type(rule, b, type_name)
                }
                _ => false,
            }) || cond_mentions_inref_type(rule, &rule.cond, type_name)
        })
    }

    fn type_in_reserve_or_balance(&self, type_name: &str) -> bool {
        self.policy.rules.iter().any(|rule| {
            rule.behaviors.iter().any(|cb| match &cb.behavior {
                Behavior::Reserve { actor, .. } => ref_names_type(rule, actor, type_name),
                Behavior::Balance { types, .. } => types.iter().any(|t| match t {
                    plasma_epl::ast::AType::Any => true,
                    plasma_epl::ast::AType::Named(n) => n == type_name,
                }),
                _ => false,
            })
        })
    }
}

fn ref_names_type(
    rule: &plasma_epl::analyze::CompiledRule,
    aref: &ActorRef,
    type_name: &str,
) -> bool {
    match rule.ref_type(aref) {
        plasma_epl::ast::AType::Any => true,
        plasma_epl::ast::AType::Named(n) => n == type_name,
    }
}

fn cond_mentions_inref_type(
    rule: &plasma_epl::analyze::CompiledRule,
    cond: &Cond,
    type_name: &str,
) -> bool {
    match cond {
        Cond::And(a, b) | Cond::Or(a, b) => {
            cond_mentions_inref_type(rule, a, type_name)
                || cond_mentions_inref_type(rule, b, type_name)
        }
        Cond::InRef { member, owner, .. } => {
            ref_names_type(rule, member, type_name) || ref_names_type(rule, owner, type_name)
        }
        Cond::Compare {
            feat: Feature::Call { caller, callee, .. },
            ..
        } => {
            if let plasma_epl::ast::Caller::Actor(a) = caller {
                if ref_names_type(rule, a, type_name) {
                    return true;
                }
            }
            ref_names_type(rule, callee, type_name)
        }
        _ => false,
    }
}

impl ElasticityController for PlasmaEmr {
    fn on_elasticity_tick(&mut self, rt: &mut Runtime) {
        self.stats.ticks += 1;
        self.progress_draining(rt);
        self.plan_round(rt);
        self.export_stats(rt);
    }

    fn on_control(&mut self, rt: &mut Runtime, token: u64) {
        if token == TOKEN_APPLY {
            self.apply_round(rt);
        }
    }

    fn on_server_ready(&mut self, rt: &mut Runtime, _server: ServerId) {
        self.booting = self.booting.saturating_sub(1);
        let _ = rt;
    }

    fn on_fault(&mut self, rt: &mut Runtime, fault: plasma_actor::ControlFault) {
        match fault {
            plasma_actor::ControlFault::GemCrash { gem } => {
                if gem < self.cfg.num_gems && !self.failed_gems.contains(&gem) {
                    self.fail_gem(gem);
                    rt.tracer()
                        .clone()
                        .emit(rt.now(), Component::Gem, None, || {
                            TraceEventKind::GemCrashed { gem: gem as u32 }
                        });
                }
            }
        }
    }

    fn place_new_actor(
        &mut self,
        rt: &Runtime,
        type_id: ActorTypeId,
        creator: Option<ServerId>,
    ) -> Option<ServerId> {
        let type_name = rt.names().type_name(type_id).to_string();
        let scope = self.in_scope_servers(rt);
        if scope.is_empty() {
            return None;
        }
        // Rule-guided placement (§4.2). Resource rules dominate: a type the
        // policy identifies as CPU-intensive (reserve/balance) starts on
        // the server with the most idle CPU, exactly as the paper
        // describes ("identify atype actors as CPU-intensive ... put on a
        // server with idle CPU resources").
        if self.type_in_reserve_or_balance(&type_name) {
            // Rotate across the idle third of the cluster rather than
            // always picking the single least-loaded server: utilization
            // snapshots lag by one profiling window, so a join burst would
            // otherwise herd every new actor onto the same machine.
            let snapshot = rt.snapshot();
            let mut candidates: Vec<ServerId> = scope
                .iter()
                .copied()
                .filter(|s| !self.reserved_servers.contains(s))
                .collect();
            if candidates.is_empty() {
                candidates = scope.clone();
            }
            candidates.sort_by(|a, b| {
                let ua = snapshot.server(*a).map(|s| s.usage.cpu()).unwrap_or(0.0);
                let ub = snapshot.server(*b).map(|s| s.usage.cpu()).unwrap_or(0.0);
                ua.partial_cmp(&ub).expect("finite usage")
            });
            let tier = candidates.len().div_ceil(3);
            self.placement_counter = self.placement_counter.wrapping_add(1);
            return Some(candidates[self.placement_counter % tier]);
        }
        // Otherwise colocate rules put the new actor next to its creator
        // (the actor that will hold a reference to it).
        if self.type_in_colocate(&type_name) {
            if let Some(c) = creator {
                return Some(c);
            }
        }
        // No applicable rule: round-robin across managed servers (the
        // paper's GEM "randomly picks a server").
        self.placement_counter = self.placement_counter.wrapping_add(1);
        Some(scope[self.placement_counter % scope.len()])
    }
}
