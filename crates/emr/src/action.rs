//! Migration actions and priority-based conflict resolution (§4.3).

use std::collections::BTreeMap;

use plasma_actor::ids::ActorId;
use plasma_cluster::ServerId;

/// Which behavior produced an action (for diagnostics and priorities).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ActionKind {
    /// Produced by a `balance` behavior (GEM).
    Balance,
    /// Produced by a `reserve` behavior (GEM).
    Reserve,
    /// Produced by a `colocate` behavior (LEM).
    Colocate,
    /// Produced by a `separate` behavior (LEM).
    Separate,
}

/// One proposed migration: move `actor` from `src` to `dst`.
///
/// Mirrors the paper's Action datatype (Table 2b) with the rule priority
/// attached for conflict resolution.
#[derive(Clone, Copy, Debug)]
pub struct Action {
    /// The actor to migrate.
    pub actor: ActorId,
    /// The server currently holding the actor.
    pub src: ServerId,
    /// The migration target.
    pub dst: ServerId,
    /// The producing behavior.
    pub kind: ActionKind,
    /// Conflict-resolution priority (higher wins).
    pub priority: u32,
    /// Index of the producing rule, for diagnostics.
    pub rule: usize,
    /// Trace id of the `RuleFired` event that produced this action, when
    /// tracing is enabled.
    pub trace: Option<plasma_trace::EventId>,
}

/// Per-rule evaluation tally returned alongside a plan, so the caller can
/// emit rule-level trace events without the planners themselves holding a
/// tracer.
#[derive(Clone, Copy, Debug)]
pub struct RuleStat {
    /// Index of the evaluated rule.
    pub rule: usize,
    /// How many environments the rule's pattern matched.
    pub matches: u64,
    /// How many actions the rule's behaviors produced.
    pub actions: u64,
}

/// Resolves conflicting actions: for each actor, keeps the action with the
/// highest priority (ties broken by earliest rule, then by kind order of
/// proposal). No-op moves (`src == dst`) are dropped.
///
/// This is the LEM's `resolveActions` (Alg. 1 line 14).
pub fn resolve_conflicts(actions: Vec<Action>) -> Vec<Action> {
    let mut best: BTreeMap<ActorId, Action> = BTreeMap::new();
    for action in actions {
        if action.src == action.dst {
            continue;
        }
        match best.get(&action.actor) {
            Some(existing)
                if (existing.priority, std::cmp::Reverse(existing.rule))
                    >= (action.priority, std::cmp::Reverse(action.rule)) => {}
            _ => {
                best.insert(action.actor, action);
            }
        }
    }
    best.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn action(actor: u64, dst: u32, priority: u32, rule: usize) -> Action {
        Action {
            actor: ActorId(actor),
            src: ServerId(0),
            dst: ServerId(dst),
            kind: ActionKind::Balance,
            priority,
            rule,
            trace: None,
        }
    }

    #[test]
    fn higher_priority_wins() {
        let resolved = resolve_conflicts(vec![action(1, 1, 50, 0), action(1, 2, 100, 1)]);
        assert_eq!(resolved.len(), 1);
        assert_eq!(resolved[0].dst, ServerId(2));
    }

    #[test]
    fn order_of_proposal_does_not_matter_for_priority() {
        let resolved = resolve_conflicts(vec![action(1, 2, 100, 1), action(1, 1, 50, 0)]);
        assert_eq!(resolved[0].dst, ServerId(2));
    }

    #[test]
    fn tie_breaks_by_earlier_rule() {
        let resolved = resolve_conflicts(vec![action(1, 1, 50, 3), action(1, 2, 50, 1)]);
        assert_eq!(resolved.len(), 1);
        assert_eq!(resolved[0].dst, ServerId(2), "rule 1 beats rule 3");
    }

    #[test]
    fn distinct_actors_all_kept() {
        let resolved = resolve_conflicts(vec![action(1, 1, 50, 0), action(2, 2, 50, 0)]);
        assert_eq!(resolved.len(), 2);
    }

    #[test]
    fn noop_moves_dropped() {
        let resolved = resolve_conflicts(vec![Action {
            actor: ActorId(1),
            src: ServerId(3),
            dst: ServerId(3),
            kind: ActionKind::Colocate,
            priority: 50,
            rule: 0,
            trace: None,
        }]);
        assert!(resolved.is_empty());
    }
}
