//! The condition evaluator: computes variable bindings satisfying a rule.
//!
//! Evaluation works over *environments*: partial assignments of the rule's
//! implicit variables (plus the implicit "the server" of `server.*`
//! conditions). Conjunction threads environments left to right, extending
//! them as variables bind; disjunction unions the environments produced by
//! each branch.
//!
//! Scoping semantics (derived from the paper's examples):
//!
//! - `server.res.perc` binds or filters the environment's server.
//! - Actor variables in `Compare` conditions are restricted to the bound
//!   server when one is bound (e.g. "this folder receives more than 40% of
//!   client requests among all Folder actors *on this server*").
//! - `in ref(...)` conditions are *not* server-restricted: references cross
//!   servers, which is exactly what `colocate` repairs.
//! - Variables that first appear in a behavior (e.g.
//!   `reserve(VideoStream(v), cpu)`) expand at instantiation over actors on
//!   the environment's server, or over all in-scope actors when no server
//!   is bound.
//!
//! The solver drives off the rule's scheduled [`plan`](plasma_epl::plan)
//! rather than the raw AST: conjuncts arrive in selectivity order, actor
//! types and function names are bound to registry ids once per round (see
//! [`BoundPolicy`]), and candidate enumeration runs on the
//! [`EvalCtx`] indexes — including `partition_point` pruning for CPU
//! threshold predicates. The pre-plan evaluator survives in [`naive`] as
//! the test oracle; both produce identical environment sets, which the
//! oracle's property tests pin.

use std::collections::BTreeSet;

use plasma_actor::ids::{ActorId, FnId};
use plasma_actor::message::CallerKind;
use plasma_actor::stats::ActorWindowStats;
use plasma_cluster::ServerId;
use plasma_epl::analyze::{CompiledPolicy, CompiledRule};
use plasma_epl::ast::{ActorRef, Comp, Res, Stat};
use plasma_epl::plan::{CallerPlan, CondPlan, FeatPlan, FnSym, RefPlan, StepCond, TypePat};

use crate::view::{EvalCtx, EvalFrame, TypeSel};

/// A (partial) satisfying assignment for one rule.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Env {
    /// The server bound by `server.*` conditions, if any.
    pub server: Option<ServerId>,
    /// Variable slots (indexed like `CompiledRule::vars`).
    pub vars: Vec<Option<ActorId>>,
}

impl Env {
    /// Creates an empty environment for a rule with `nvars` variables.
    pub fn empty(nvars: usize) -> Self {
        Env {
            server: None,
            vars: vec![None; nvars],
        }
    }

    /// Returns the actor bound to `slot`, if any.
    pub fn var(&self, slot: usize) -> Option<ActorId> {
        self.vars.get(slot).copied().flatten()
    }
}

/// A compiled rule with its plan's symbol tables resolved against one
/// frame's registry: every type symbol becomes a [`TypeSel`] and every
/// function symbol an optional [`FnId`]. Binding happens once per decision
/// round; evaluation then never touches a string.
pub struct BoundRule<'r> {
    /// The underlying compiled rule (behaviors, variable table, AST).
    pub rule: &'r CompiledRule,
    types: Vec<TypeSel>,
    fns: Vec<Option<FnId>>,
}

impl<'r> BoundRule<'r> {
    /// Resolves `rule`'s plan symbols against `frame`'s name tables.
    pub fn bind(rule: &'r CompiledRule, frame: &EvalFrame) -> Self {
        let types = rule
            .plan
            .type_syms
            .iter()
            .map(|name| match frame.type_id(name) {
                Some(t) => TypeSel::Id(t),
                None => TypeSel::Unknown,
            })
            .collect();
        let fns = rule
            .plan
            .fn_syms
            .iter()
            .map(|name| frame.fn_id(name))
            .collect();
        BoundRule { rule, types, fns }
    }

    fn sel(&self, pat: TypePat) -> TypeSel {
        match pat {
            TypePat::Any => TypeSel::Any,
            TypePat::Sym(i) => self.types[i as usize],
        }
    }

    fn fnid(&self, sym: FnSym) -> Option<FnId> {
        self.fns[sym as usize]
    }
}

/// A whole policy bound against one frame (see [`BoundRule`]).
pub struct BoundPolicy<'r> {
    /// One bound rule per policy rule, in policy order.
    pub rules: Vec<BoundRule<'r>>,
}

impl<'r> BoundPolicy<'r> {
    /// Binds every rule of `policy` against `frame`'s name tables.
    pub fn bind(policy: &'r CompiledPolicy, frame: &EvalFrame) -> Self {
        BoundPolicy {
            rules: policy
                .rules
                .iter()
                .map(|r| BoundRule::bind(r, frame))
                .collect(),
        }
    }
}

/// Computes all satisfying environments of `rule` within `ctx`.
///
/// Convenience wrapper that binds the rule against the context's frame on
/// the fly; round-based callers bind once via [`BoundPolicy`] and use
/// [`solve_bound`].
pub fn solve(rule: &CompiledRule, ctx: &EvalCtx<'_>) -> Vec<Env> {
    solve_bound(&BoundRule::bind(rule, ctx.frame()), ctx)
}

/// Computes all satisfying environments of a pre-bound rule within `ctx`.
pub fn solve_bound(rule: &BoundRule<'_>, ctx: &EvalCtx<'_>) -> Vec<Env> {
    let plan = &rule.rule.plan;
    let start = vec![Env::empty(plan.nvars)];
    let mut result = solve_plan(&plan.cond, start, rule, ctx);
    dedupe(&mut result);
    result
}

fn dedupe(envs: &mut Vec<Env>) {
    let set: BTreeSet<Env> = envs.drain(..).collect();
    envs.extend(set);
}

fn solve_plan(
    plan: &CondPlan,
    mut envs: Vec<Env>,
    rule: &BoundRule<'_>,
    ctx: &EvalCtx<'_>,
) -> Vec<Env> {
    for step in &plan.steps {
        if envs.is_empty() {
            return envs;
        }
        envs = solve_step(step, envs, rule, ctx);
    }
    envs
}

fn solve_step(
    step: &StepCond,
    mut envs: Vec<Env>,
    rule: &BoundRule<'_>,
    ctx: &EvalCtx<'_>,
) -> Vec<Env> {
    match step {
        StepCond::True => envs,
        StepCond::Or(branches) => {
            let mut out = Vec::new();
            let last = branches.len().saturating_sub(1);
            for (i, branch) in branches.iter().enumerate() {
                let input = if i == last {
                    std::mem::take(&mut envs)
                } else {
                    envs.clone()
                };
                out.extend(solve_plan(branch, input, rule, ctx));
            }
            dedupe(&mut out);
            out
        }
        StepCond::Compare {
            feat,
            stat,
            comp,
            val,
        } => solve_compare(feat, *stat, *comp, *val, envs, rule, ctx),
        StepCond::InRef {
            member,
            owner,
            prop,
        } => solve_inref(*member, *owner, prop, envs, rule, ctx),
    }
}

/// Enumerates candidate actors for a lowered reference under an
/// environment: the binding itself when the slot is already bound,
/// otherwise the context's index group for the reference's type selector
/// (restricted to the environment's server when requested), in id order.
fn plan_candidates<'c>(
    refp: RefPlan,
    env: &Env,
    rule: &BoundRule<'_>,
    ctx: &EvalCtx<'c>,
    restrict_to_server: bool,
) -> Vec<&'c ActorWindowStats> {
    if let Some(actor) = refp.slot.and_then(|s| env.var(s)) {
        return ctx.actor(actor).into_iter().collect();
    }
    let on_server = if restrict_to_server { env.server } else { None };
    ctx.select(rule.sel(refp.ty), on_server)
}

/// Extends `out` with `env` bound to each of `matches` in turn, cloning
/// only for all but the last match (the environment itself is consumed).
/// With no slot to bind, any match leaves `env` unchanged, so one copy
/// suffices — the per-step dedupe collapses duplicates anyway.
fn push_bindings(out: &mut Vec<Env>, env: Env, slot: Option<usize>, matches: Vec<ActorId>) {
    let Some((last, rest)) = matches.split_last() else {
        return;
    };
    match slot {
        None => out.push(env),
        Some(s) => {
            for &actor in rest {
                let mut e = env.clone();
                e.vars[s] = Some(actor);
                out.push(e);
            }
            let mut e = env;
            e.vars[s] = Some(*last);
            out.push(e);
        }
    }
}

fn solve_compare(
    feat: &FeatPlan,
    stat: Stat,
    comp: Comp,
    val: f64,
    envs: Vec<Env>,
    rule: &BoundRule<'_>,
    ctx: &EvalCtx<'_>,
) -> Vec<Env> {
    let mut out = Vec::new();
    match feat {
        FeatPlan::ServerRes(res) => {
            for env in envs {
                match env.server {
                    Some(sid) => {
                        let passes = ctx
                            .server(sid)
                            .is_some_and(|meta| comp.eval(meta.usage(*res) * 100.0, val));
                        if passes {
                            out.push(env);
                        }
                    }
                    None => {
                        let hits: Vec<ServerId> = ctx
                            .servers
                            .iter()
                            .filter(|meta| comp.eval(meta.usage(*res) * 100.0, val))
                            .map(|meta| meta.id)
                            .collect();
                        let Some((last, rest)) = hits.split_last() else {
                            continue;
                        };
                        for &sid in rest {
                            let mut e = env.clone();
                            e.server = Some(sid);
                            out.push(e);
                        }
                        let mut e = env;
                        e.server = Some(*last);
                        out.push(e);
                    }
                }
            }
        }
        FeatPlan::ActorRes(refp, res) => {
            for env in envs {
                // Bound slot: evaluate the binding directly (no server
                // restriction applies to an existing binding).
                if let Some(bound) = refp.slot.and_then(|s| env.var(s)) {
                    let Some(actor) = ctx.actor(bound) else {
                        continue;
                    };
                    let passes = match stat {
                        Stat::Perc => comp.eval(ctx.actor_usage(actor, *res) * 100.0, val),
                        Stat::Size => comp.eval(actor.state_size as f64, val),
                        Stat::Count => false,
                    };
                    if passes {
                        out.push(env);
                    }
                    continue;
                }
                let sel = rule.sel(refp.ty);
                // `actor.cpu.perc comp val` compares `cpu_share * 100`
                // directly, so the sorted index answers it exactly.
                let matches: Vec<ActorId> = if *res == Res::Cpu && stat == Stat::Perc {
                    ctx.select_cpu_threshold(sel, env.server, comp, val)
                        .iter()
                        .map(|a| a.actor)
                        .collect()
                } else {
                    ctx.select(sel, env.server)
                        .into_iter()
                        .filter(|actor| match stat {
                            Stat::Perc => comp.eval(ctx.actor_usage(actor, *res) * 100.0, val),
                            Stat::Size => comp.eval(actor.state_size as f64, val),
                            Stat::Count => false,
                        })
                        .map(|a| a.actor)
                        .collect()
                };
                push_bindings(&mut out, env, refp.slot, matches);
            }
        }
        FeatPlan::Call {
            caller,
            callee,
            fname,
        } => {
            // A function never called this window simply has zero stats.
            let fnid = rule.fnid(*fname);
            for env in envs {
                let callee_cands = plan_candidates(*callee, &env, rule, ctx, true);
                match caller {
                    CallerPlan::Client => {
                        let matches: Vec<ActorId> = callee_cands
                            .iter()
                            .filter(|cs| {
                                let stat_val = fnid
                                    .map(|f| {
                                        call_stat_value(ctx, cs, CallerKind::Client, None, f, stat)
                                    })
                                    .unwrap_or(0.0);
                                comp.eval(stat_val, val)
                            })
                            .map(|cs| cs.actor)
                            .collect();
                        push_bindings(&mut out, env, callee.slot, matches);
                    }
                    CallerPlan::Actor(caller_ref) => {
                        let mut base = Some(env);
                        let last = callee_cands.len().saturating_sub(1);
                        for (i, callee_stats) in callee_cands.iter().enumerate() {
                            let mut env2 = if i == last {
                                base.take().expect("consumed only on the last callee")
                            } else {
                                base.as_ref().expect("still present before last").clone()
                            };
                            if let Some(s) = callee.slot {
                                env2.vars[s] = Some(callee_stats.actor);
                            }
                            let caller_bound = caller_ref.slot.and_then(|s| env2.var(s));
                            // An unrecorded caller always reads a stat of
                            // exactly 0 (count, size, and perc alike). When
                            // zero fails the comparison, only callers this
                            // callee recorded can pass, so iterate the
                            // callee's counter keys instead of every
                            // caller-type candidate in scope.
                            let matches: Vec<ActorId> = match fnid {
                                Some(f) if caller_bound.is_none() && !comp.eval(0.0, val) => {
                                    let caller_sel = rule.sel(caller_ref.ty);
                                    let mut seen: Vec<ActorId> = callee_stats
                                        .counters
                                        .calls
                                        .keys()
                                        .filter(|k| k.fname == f)
                                        .filter_map(|k| k.caller)
                                        .collect();
                                    seen.sort_unstable();
                                    seen.dedup();
                                    seen.into_iter()
                                        .filter(|&cid| {
                                            ctx.actor(cid).is_some_and(|cs| {
                                                caller_sel.matches(cs) && {
                                                    let kind = CallerKind::Actor(cs.type_id);
                                                    let v = call_stat_value(
                                                        ctx,
                                                        callee_stats,
                                                        kind,
                                                        Some(cid),
                                                        f,
                                                        stat,
                                                    );
                                                    comp.eval(v, val)
                                                }
                                            })
                                        })
                                        .collect()
                                }
                                _ => plan_candidates(*caller_ref, &env2, rule, ctx, false)
                                    .iter()
                                    .filter(|caller_stats| {
                                        let kind = CallerKind::Actor(caller_stats.type_id);
                                        let stat_val = fnid
                                            .map(|f| {
                                                call_stat_value(
                                                    ctx,
                                                    callee_stats,
                                                    kind,
                                                    Some(caller_stats.actor),
                                                    f,
                                                    stat,
                                                )
                                            })
                                            .unwrap_or(0.0);
                                        comp.eval(stat_val, val)
                                    })
                                    .map(|caller_stats| caller_stats.actor)
                                    .collect(),
                            };
                            push_bindings(&mut out, env2, caller_ref.slot, matches);
                        }
                    }
                }
            }
        }
    }
    dedupe(&mut out);
    out
}

/// Computes a call statistic for one callee.
///
/// - `count`: messages per minute (the paper's "per time unit, e.g. 1 min").
/// - `size`: bytes received.
/// - `perc`: this callee's share of such calls among actors of the same
///   type on the same server (the `(server, type)` index group).
fn call_stat_value(
    ctx: &EvalCtx<'_>,
    callee: &ActorWindowStats,
    kind: CallerKind,
    caller: Option<ActorId>,
    fnid: FnId,
    stat: Stat,
) -> f64 {
    let own = match caller {
        Some(c) => callee.counters.calls_from_actor(c, fnid),
        None => callee.counters.calls_from_kind(kind, fnid),
    };
    match stat {
        Stat::Count => own.count as f64 * 60.0 / ctx.window_secs(),
        Stat::Size => own.bytes as f64,
        Stat::Perc => {
            let total: u64 = ctx
                .select(TypeSel::Id(callee.type_id), Some(callee.server))
                .iter()
                .map(|peer| peer.counters.calls_from_kind(kind, fnid).count)
                .sum();
            if total == 0 {
                0.0
            } else {
                own.count as f64 * 100.0 / total as f64
            }
        }
    }
}

fn solve_inref(
    member: RefPlan,
    owner: RefPlan,
    prop: &str,
    envs: Vec<Env>,
    rule: &BoundRule<'_>,
    ctx: &EvalCtx<'_>,
) -> Vec<Env> {
    let mut out = Vec::new();
    let member_sel = rule.sel(member.ty);
    for env in envs {
        for owner_stats in plan_candidates(owner, &env, rule, ctx, false) {
            let Some(refs) = owner_stats.refs.get(prop) else {
                continue;
            };
            let mut env2 = env.clone();
            if let Some(s) = owner.slot {
                env2.vars[s] = Some(owner_stats.actor);
            }
            // Fast path: iterate the owner's reference list rather than all
            // actors of the member type.
            if let Some(bound) = member.slot.and_then(|s| env2.var(s)) {
                if refs.contains(&bound) {
                    out.push(env2);
                }
                continue;
            }
            let matches: Vec<ActorId> = refs
                .iter()
                .filter(|&&m| ctx.actor(m).is_some_and(|ms| member_sel.matches(ms)))
                .copied()
                .collect();
            push_bindings(&mut out, env2, member.slot, matches);
        }
    }
    dedupe(&mut out);
    out
}

/// Expands a behavior-side actor reference under a satisfying environment:
/// the bound actor if the variable is bound, otherwise all actors of the
/// type on the environment's server (or in scope when no server is bound).
pub fn expand_behavior_ref(
    aref: &ActorRef,
    env: &Env,
    rule: &CompiledRule,
    ctx: &EvalCtx<'_>,
) -> Vec<ActorId> {
    let slot = match aref {
        ActorRef::Decl(_, v) | ActorRef::Var(v) => rule.var_slot(v),
        ActorRef::Type(_) => None,
    };
    if let Some(actor) = slot.and_then(|s| env.var(s)) {
        return ctx.actor(actor).into_iter().map(|a| a.actor).collect();
    }
    let atype = rule.ref_type(aref);
    ctx.actors_matching(&atype, env.server)
        .into_iter()
        .map(|a| a.actor)
        .collect()
}

/// The pre-plan evaluator, retained as the test oracle.
///
/// This walks the rule's raw AST condition left to right, resolves names
/// through string lookups per predicate, and enumerates candidates by
/// scanning the full in-scope actor list — no plans, no symbol binding, no
/// indexes. Property tests assert its environment sets match
/// [`solve`] exactly.
#[cfg(any(test, feature = "naive-oracle"))]
pub mod naive {
    use super::{dedupe, Env};
    use plasma_actor::ids::ActorId;
    use plasma_actor::message::CallerKind;
    use plasma_actor::stats::ActorWindowStats;
    use plasma_cluster::ServerId;
    use plasma_epl::analyze::CompiledRule;
    use plasma_epl::ast::{AType, ActorRef, Caller, Comp, Cond, Feature, Stat};

    use crate::view::EvalCtx;

    /// Computes all satisfying environments of `rule` within `ctx` by
    /// direct AST interpretation.
    pub fn solve(rule: &CompiledRule, ctx: &EvalCtx<'_>) -> Vec<Env> {
        let start = vec![Env::empty(rule.vars.len())];
        let mut result = solve_cond(&rule.cond, start, rule, ctx);
        dedupe(&mut result);
        result
    }

    fn solve_cond(cond: &Cond, envs: Vec<Env>, rule: &CompiledRule, ctx: &EvalCtx<'_>) -> Vec<Env> {
        if envs.is_empty() {
            return envs;
        }
        match cond {
            Cond::True => envs,
            Cond::And(a, b) => {
                let mid = solve_cond(a, envs, rule, ctx);
                solve_cond(b, mid, rule, ctx)
            }
            Cond::Or(a, b) => {
                let mut left = solve_cond(a, envs.clone(), rule, ctx);
                let right = solve_cond(b, envs, rule, ctx);
                left.extend(right);
                dedupe(&mut left);
                left
            }
            Cond::Compare {
                feat,
                stat,
                comp,
                val,
            } => solve_compare(feat, *stat, *comp, *val, envs, rule, ctx),
            Cond::InRef {
                member,
                owner,
                prop,
            } => solve_inref(member, owner, prop, envs, rule, ctx),
        }
    }

    /// Full-scan type matching, independent of the context's indexes.
    fn actors_of_type<'c>(
        ctx: &EvalCtx<'c>,
        pattern: &AType,
        on_server: Option<ServerId>,
    ) -> Vec<&'c ActorWindowStats> {
        ctx.actors()
            .iter()
            .filter(|a| ctx.matches_type(a, pattern))
            .filter(|a| on_server.is_none_or(|s| a.server == s))
            .copied()
            .collect()
    }

    fn candidates<'c>(
        aref: &ActorRef,
        env: &Env,
        rule: &CompiledRule,
        ctx: &EvalCtx<'c>,
        restrict_to_server: bool,
    ) -> Vec<&'c ActorWindowStats> {
        let slot = match aref {
            ActorRef::Decl(_, v) | ActorRef::Var(v) => rule.var_slot(v),
            ActorRef::Type(_) => None,
        };
        if let Some(actor) = slot.and_then(|s| env.var(s)) {
            return ctx.actor(actor).into_iter().collect();
        }
        let atype = rule.ref_type(aref);
        let on_server = if restrict_to_server { env.server } else { None };
        actors_of_type(ctx, &atype, on_server)
    }

    fn bind(aref: &ActorRef, env: &Env, rule: &CompiledRule, actor: ActorId) -> Env {
        let mut out = env.clone();
        if let ActorRef::Decl(_, v) | ActorRef::Var(v) = aref {
            if let Some(slot) = rule.var_slot(v) {
                out.vars[slot] = Some(actor);
            }
        }
        out
    }

    fn solve_compare(
        feat: &Feature,
        stat: Stat,
        comp: Comp,
        val: f64,
        envs: Vec<Env>,
        rule: &CompiledRule,
        ctx: &EvalCtx<'_>,
    ) -> Vec<Env> {
        let mut out = Vec::new();
        match feat {
            Feature::ServerRes(res) => {
                for env in envs {
                    match env.server {
                        Some(sid) => {
                            let Some(meta) = ctx.server(sid) else {
                                continue;
                            };
                            if comp.eval(meta.usage(*res) * 100.0, val) {
                                out.push(env);
                            }
                        }
                        None => {
                            for meta in &ctx.servers {
                                if comp.eval(meta.usage(*res) * 100.0, val) {
                                    let mut e = env.clone();
                                    e.server = Some(meta.id);
                                    out.push(e);
                                }
                            }
                        }
                    }
                }
            }
            Feature::ActorRes(aref, res) => {
                for env in envs {
                    for actor in candidates(aref, &env, rule, ctx, true) {
                        let value = match stat {
                            Stat::Perc => ctx.actor_usage(actor, *res) * 100.0,
                            Stat::Size => actor.state_size as f64,
                            Stat::Count => continue,
                        };
                        if comp.eval(value, val) {
                            out.push(bind(aref, &env, rule, actor.actor));
                        }
                    }
                }
            }
            Feature::Call {
                caller,
                callee,
                fname,
            } => {
                let fnid = ctx.fn_id(fname);
                for env in envs {
                    for callee_stats in candidates(callee, &env, rule, ctx, true) {
                        match caller {
                            Caller::Client => {
                                let stat_val = fnid
                                    .map(|f| {
                                        call_stat_value(
                                            ctx,
                                            callee_stats,
                                            CallerKind::Client,
                                            None,
                                            f,
                                            stat,
                                        )
                                    })
                                    .unwrap_or(0.0);
                                if comp.eval(stat_val, val) {
                                    out.push(bind(callee, &env, rule, callee_stats.actor));
                                }
                            }
                            Caller::Actor(caller_ref) => {
                                let env2 = bind(callee, &env, rule, callee_stats.actor);
                                for caller_stats in candidates(caller_ref, &env2, rule, ctx, false)
                                {
                                    let kind = CallerKind::Actor(caller_stats.type_id);
                                    let stat_val = fnid
                                        .map(|f| {
                                            call_stat_value(
                                                ctx,
                                                callee_stats,
                                                kind,
                                                Some(caller_stats.actor),
                                                f,
                                                stat,
                                            )
                                        })
                                        .unwrap_or(0.0);
                                    if comp.eval(stat_val, val) {
                                        out.push(bind(caller_ref, &env2, rule, caller_stats.actor));
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        dedupe(&mut out);
        out
    }

    fn call_stat_value(
        ctx: &EvalCtx<'_>,
        callee: &ActorWindowStats,
        kind: CallerKind,
        caller: Option<ActorId>,
        fnid: plasma_actor::ids::FnId,
        stat: Stat,
    ) -> f64 {
        let own = match caller {
            Some(c) => callee.counters.calls_from_actor(c, fnid),
            None => callee.counters.calls_from_kind(kind, fnid),
        };
        match stat {
            Stat::Count => own.count as f64 * 60.0 / ctx.window_secs(),
            Stat::Size => own.bytes as f64,
            Stat::Perc => {
                let mut total = 0u64;
                for peer in ctx.actors() {
                    if peer.server == callee.server && peer.type_id == callee.type_id {
                        total += peer.counters.calls_from_kind(kind, fnid).count;
                    }
                }
                if total == 0 {
                    0.0
                } else {
                    own.count as f64 * 100.0 / total as f64
                }
            }
        }
    }

    fn solve_inref(
        member: &ActorRef,
        owner: &ActorRef,
        prop: &str,
        envs: Vec<Env>,
        rule: &CompiledRule,
        ctx: &EvalCtx<'_>,
    ) -> Vec<Env> {
        let mut out = Vec::new();
        let member_type = rule.ref_type(member);
        for env in envs {
            for owner_stats in candidates(owner, &env, rule, ctx, false) {
                let Some(refs) = owner_stats.refs.get(prop) else {
                    continue;
                };
                let env2 = bind(owner, &env, rule, owner_stats.actor);
                let member_slot = match member {
                    ActorRef::Decl(_, v) | ActorRef::Var(v) => rule.var_slot(v),
                    ActorRef::Type(_) => None,
                };
                if let Some(bound) = member_slot.and_then(|s| env2.var(s)) {
                    if refs.contains(&bound) {
                        out.push(env2.clone());
                    }
                    continue;
                }
                for &m in refs {
                    let Some(m_stats) = ctx.actor(m) else {
                        continue;
                    };
                    if ctx.matches_type(m_stats, &member_type) {
                        out.push(bind(member, &env2, rule, m));
                    }
                }
            }
        }
        dedupe(&mut out);
        out
    }
}
