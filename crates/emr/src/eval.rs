//! The condition evaluator: computes variable bindings satisfying a rule.
//!
//! Evaluation works over *environments*: partial assignments of the rule's
//! implicit variables (plus the implicit "the server" of `server.*`
//! conditions). Conjunction threads environments left to right, extending
//! them as variables bind; disjunction unions the environments produced by
//! each branch.
//!
//! Scoping semantics (derived from the paper's examples):
//!
//! - `server.res.perc` binds or filters the environment's server.
//! - Actor variables in `Compare` conditions are restricted to the bound
//!   server when one is bound (e.g. "this folder receives more than 40% of
//!   client requests among all Folder actors *on this server*").
//! - `in ref(...)` conditions are *not* server-restricted: references cross
//!   servers, which is exactly what `colocate` repairs.
//! - Variables that first appear in a behavior (e.g.
//!   `reserve(VideoStream(v), cpu)`) expand at instantiation over actors on
//!   the environment's server, or over all in-scope actors when no server
//!   is bound.

use std::collections::BTreeSet;

use plasma_actor::ids::ActorId;
use plasma_actor::message::CallerKind;
use plasma_actor::stats::ActorWindowStats;
use plasma_cluster::ServerId;
use plasma_epl::analyze::CompiledRule;
use plasma_epl::ast::{ActorRef, Caller, Comp, Cond, Feature, Stat};

use crate::view::EvalCtx;

/// A (partial) satisfying assignment for one rule.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Env {
    /// The server bound by `server.*` conditions, if any.
    pub server: Option<ServerId>,
    /// Variable slots (indexed like `CompiledRule::vars`).
    pub vars: Vec<Option<ActorId>>,
}

impl Env {
    /// Creates an empty environment for a rule with `nvars` variables.
    pub fn empty(nvars: usize) -> Self {
        Env {
            server: None,
            vars: vec![None; nvars],
        }
    }

    /// Returns the actor bound to `slot`, if any.
    pub fn var(&self, slot: usize) -> Option<ActorId> {
        self.vars.get(slot).copied().flatten()
    }
}

/// Computes all satisfying environments of `rule` within `ctx`.
pub fn solve(rule: &CompiledRule, ctx: &EvalCtx<'_>) -> Vec<Env> {
    let start = vec![Env::empty(rule.vars.len())];
    let mut result = solve_cond(&rule.cond, start, rule, ctx);
    dedupe(&mut result);
    result
}

fn dedupe(envs: &mut Vec<Env>) {
    let set: BTreeSet<Env> = envs.drain(..).collect();
    envs.extend(set);
}

fn solve_cond(cond: &Cond, envs: Vec<Env>, rule: &CompiledRule, ctx: &EvalCtx<'_>) -> Vec<Env> {
    if envs.is_empty() {
        return envs;
    }
    match cond {
        Cond::True => envs,
        Cond::And(a, b) => {
            let mid = solve_cond(a, envs, rule, ctx);
            solve_cond(b, mid, rule, ctx)
        }
        Cond::Or(a, b) => {
            let mut left = solve_cond(a, envs.clone(), rule, ctx);
            let right = solve_cond(b, envs, rule, ctx);
            left.extend(right);
            dedupe(&mut left);
            left
        }
        Cond::Compare {
            feat,
            stat,
            comp,
            val,
        } => solve_compare(feat, *stat, *comp, *val, envs, rule, ctx),
        Cond::InRef {
            member,
            owner,
            prop,
        } => solve_inref(member, owner, prop, envs, rule, ctx),
    }
}

/// Enumerates candidate actors for a reference under an environment.
///
/// Already-bound variables yield exactly their binding; unbound references
/// expand over actors of the declared type, restricted to the environment's
/// server when `restrict_to_server` is set.
fn candidates<'c>(
    aref: &ActorRef,
    env: &Env,
    rule: &CompiledRule,
    ctx: &EvalCtx<'c>,
    restrict_to_server: bool,
) -> Vec<&'c ActorWindowStats> {
    let slot = match aref {
        ActorRef::Decl(_, v) | ActorRef::Var(v) => rule.var_slot(v),
        ActorRef::Type(_) => None,
    };
    if let Some(actor) = slot.and_then(|s| env.var(s)) {
        return ctx.actor(actor).into_iter().collect();
    }
    let atype = rule.ref_type(aref);
    let on_server = if restrict_to_server { env.server } else { None };
    ctx.actors_matching(&atype, on_server)
}

/// Extends `env` by binding `aref`'s variable (if it has one) to `actor`.
fn bind(aref: &ActorRef, env: &Env, rule: &CompiledRule, actor: ActorId) -> Env {
    let mut out = env.clone();
    if let ActorRef::Decl(_, v) | ActorRef::Var(v) = aref {
        if let Some(slot) = rule.var_slot(v) {
            out.vars[slot] = Some(actor);
        }
    }
    out
}

fn solve_compare(
    feat: &Feature,
    stat: Stat,
    comp: Comp,
    val: f64,
    envs: Vec<Env>,
    rule: &CompiledRule,
    ctx: &EvalCtx<'_>,
) -> Vec<Env> {
    let mut out = Vec::new();
    match feat {
        Feature::ServerRes(res) => {
            for env in envs {
                match env.server {
                    Some(sid) => {
                        let Some(meta) = ctx.server(sid) else {
                            continue;
                        };
                        if comp.eval(meta.usage(*res) * 100.0, val) {
                            out.push(env);
                        }
                    }
                    None => {
                        for meta in &ctx.servers {
                            if comp.eval(meta.usage(*res) * 100.0, val) {
                                let mut e = env.clone();
                                e.server = Some(meta.id);
                                out.push(e);
                            }
                        }
                    }
                }
            }
        }
        Feature::ActorRes(aref, res) => {
            for env in envs {
                for actor in candidates(aref, &env, rule, ctx, true) {
                    let value = match stat {
                        Stat::Perc => ctx.actor_usage(actor, *res) * 100.0,
                        Stat::Size => actor.state_size as f64,
                        Stat::Count => continue,
                    };
                    if comp.eval(value, val) {
                        out.push(bind(aref, &env, rule, actor.actor));
                    }
                }
            }
        }
        Feature::Call {
            caller,
            callee,
            fname,
        } => {
            // A function never called this window simply has zero stats.
            let fnid = ctx.fn_id(fname);
            for env in envs {
                for callee_stats in candidates(callee, &env, rule, ctx, true) {
                    match caller {
                        Caller::Client => {
                            let stat_val = fnid
                                .map(|f| {
                                    call_stat_value(
                                        ctx,
                                        callee_stats,
                                        CallerKind::Client,
                                        None,
                                        f,
                                        stat,
                                    )
                                })
                                .unwrap_or(0.0);
                            if comp.eval(stat_val, val) {
                                out.push(bind(callee, &env, rule, callee_stats.actor));
                            }
                        }
                        Caller::Actor(caller_ref) => {
                            let env2 = bind(callee, &env, rule, callee_stats.actor);
                            for caller_stats in candidates(caller_ref, &env2, rule, ctx, false) {
                                let kind = CallerKind::Actor(caller_stats.type_id);
                                let stat_val = fnid
                                    .map(|f| {
                                        call_stat_value(
                                            ctx,
                                            callee_stats,
                                            kind,
                                            Some(caller_stats.actor),
                                            f,
                                            stat,
                                        )
                                    })
                                    .unwrap_or(0.0);
                                if comp.eval(stat_val, val) {
                                    out.push(bind(caller_ref, &env2, rule, caller_stats.actor));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    dedupe(&mut out);
    out
}

/// Computes a call statistic for one callee.
///
/// - `count`: messages per minute (the paper's "per time unit, e.g. 1 min").
/// - `size`: bytes received.
/// - `perc`: this callee's share of such calls among actors of the same
///   type on the same server.
fn call_stat_value(
    ctx: &EvalCtx<'_>,
    callee: &ActorWindowStats,
    kind: CallerKind,
    caller: Option<ActorId>,
    fnid: plasma_actor::ids::FnId,
    stat: Stat,
) -> f64 {
    let own = match caller {
        Some(c) => callee.counters.calls_from_actor(c, fnid),
        None => callee.counters.calls_from_kind(kind, fnid),
    };
    match stat {
        Stat::Count => own.count as f64 * 60.0 / ctx.window_secs(),
        Stat::Size => own.bytes as f64,
        Stat::Perc => {
            let mut total = 0u64;
            for peer in ctx.actors() {
                if peer.server == callee.server && peer.type_id == callee.type_id {
                    total += peer.counters.calls_from_kind(kind, fnid).count;
                }
            }
            if total == 0 {
                0.0
            } else {
                own.count as f64 * 100.0 / total as f64
            }
        }
    }
}

fn solve_inref(
    member: &ActorRef,
    owner: &ActorRef,
    prop: &str,
    envs: Vec<Env>,
    rule: &CompiledRule,
    ctx: &EvalCtx<'_>,
) -> Vec<Env> {
    let mut out = Vec::new();
    let member_type = rule.ref_type(member);
    for env in envs {
        for owner_stats in candidates(owner, &env, rule, ctx, false) {
            let Some(refs) = owner_stats.refs.get(prop) else {
                continue;
            };
            let env2 = bind(owner, &env, rule, owner_stats.actor);
            // Fast path: iterate the owner's reference list rather than all
            // actors of the member type.
            let member_slot = match member {
                ActorRef::Decl(_, v) | ActorRef::Var(v) => rule.var_slot(v),
                ActorRef::Type(_) => None,
            };
            if let Some(bound) = member_slot.and_then(|s| env2.var(s)) {
                if refs.contains(&bound) {
                    out.push(env2.clone());
                }
                continue;
            }
            for &m in refs {
                let Some(m_stats) = ctx.actor(m) else {
                    continue;
                };
                if ctx.matches_type(m_stats, &member_type) {
                    out.push(bind(member, &env2, rule, m));
                }
            }
        }
    }
    dedupe(&mut out);
    out
}

/// Expands a behavior-side actor reference under a satisfying environment:
/// the bound actor if the variable is bound, otherwise all actors of the
/// type on the environment's server (or in scope when no server is bound).
pub fn expand_behavior_ref(
    aref: &ActorRef,
    env: &Env,
    rule: &CompiledRule,
    ctx: &EvalCtx<'_>,
) -> Vec<ActorId> {
    candidates(aref, env, rule, ctx, true)
        .into_iter()
        .map(|a| a.actor)
        .collect()
}
