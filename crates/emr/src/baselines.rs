//! Baseline elasticity managers from the paper's evaluation.
//!
//! - [`OrleansBalance`] — §2.1/§5.4: "Orleans balances workload by
//!   equalizing the number of actors on each server"; it is not
//!   resource-aware, which is exactly why PLASMA beats it on PageRank.
//! - [`FrequencyColocate`] — §5.7's *default rule*: colocate actors that
//!   frequently interact, learned purely from observed message counts.
//! - [`HeavyToIdle`] — §5.3's *def-rule*: migrate the heaviest actors of a
//!   hot server to an idle server, without application knowledge.

use std::collections::BTreeMap;

use plasma_actor::ids::{ActorId, ActorTypeId};
use plasma_actor::{ElasticityController, Runtime};
use plasma_cluster::ServerId;

/// Orleans-style elasticity: equalize per-server actor counts.
#[derive(Debug, Default)]
pub struct OrleansBalance {
    /// Optional restriction to one actor type (e.g. only PageRank workers).
    pub only_type: Option<ActorTypeId>,
    /// Migrations issued.
    pub migrations: u64,
}

impl OrleansBalance {
    /// Creates the baseline, optionally restricted to one actor type name
    /// (resolved lazily).
    pub fn new() -> Self {
        OrleansBalance::default()
    }
}

impl ElasticityController for OrleansBalance {
    fn on_elasticity_tick(&mut self, rt: &mut Runtime) {
        let servers = rt.cluster().running_ids();
        if servers.len() < 2 {
            return;
        }
        loop {
            let counts: Vec<(ServerId, usize)> = servers
                .iter()
                .map(|&s| {
                    let n = rt
                        .actors_on(s)
                        .into_iter()
                        .filter(|&a| self.only_type.is_none_or(|t| rt.actor_type(a) == t))
                        .count();
                    (s, n)
                })
                .collect();
            let (max_s, max_n) = *counts.iter().max_by_key(|&&(_, n)| n).expect("non-empty");
            let (min_s, min_n) = *counts.iter().min_by_key(|&&(_, n)| n).expect("non-empty");
            if max_n <= min_n + 1 {
                break;
            }
            let candidate = rt
                .actors_on(max_s)
                .into_iter()
                .filter(|&a| self.only_type.is_none_or(|t| rt.actor_type(a) == t))
                .find(|&a| !rt.is_pinned(a));
            let Some(actor) = candidate else { break };
            if rt.migrate(actor, min_s).is_err() {
                break;
            }
            self.migrations += 1;
        }
    }

    fn place_new_actor(
        &mut self,
        rt: &Runtime,
        _type_id: ActorTypeId,
        _creator: Option<ServerId>,
    ) -> Option<ServerId> {
        // Place on the server with the fewest actors (count equalization).
        rt.cluster()
            .running_ids()
            .into_iter()
            .min_by_key(|&s| rt.actor_count_on(s))
    }
}

/// The frequency-based "default rule": colocate actors that exchanged more
/// than `min_count` messages in the last window.
///
/// The paper (§5.7) points out the weakness this reproduces: placement of a
/// *new* actor is random, and only after it has visibly chatted for an
/// elasticity period does it get moved next to its partner — producing the
/// latency spikes of Fig. 11a.
#[derive(Debug)]
pub struct FrequencyColocate {
    /// Minimum observed messages per window for a pair to count as
    /// "frequently interacting".
    pub min_count: u64,
    /// Migrations issued.
    pub migrations: u64,
    /// Round-robin counter for random initial placement.
    counter: usize,
}

impl FrequencyColocate {
    /// Creates the baseline with the given frequency threshold.
    pub fn new(min_count: u64) -> Self {
        FrequencyColocate {
            min_count,
            migrations: 0,
            counter: 0,
        }
    }
}

impl ElasticityController for FrequencyColocate {
    fn on_elasticity_tick(&mut self, rt: &mut Runtime) {
        // Find, per actor, its most frequent caller; if remote, move the
        // callee next to the caller.
        let snapshot = rt.snapshot().clone();
        let mut moves: Vec<(ActorId, ServerId)> = Vec::new();
        for stats in &snapshot.actors {
            let mut per_caller: BTreeMap<ActorId, u64> = BTreeMap::new();
            for (key, stat) in &stats.counters.calls {
                if let Some(caller) = key.caller {
                    *per_caller.entry(caller).or_insert(0) += stat.count;
                }
            }
            let Some((&caller, &count)) = per_caller.iter().max_by_key(|&(_, &c)| c) else {
                continue;
            };
            if count < self.min_count {
                continue;
            }
            let Some(caller_stats) = snapshot.actor(caller) else {
                continue;
            };
            if caller_stats.server != stats.server {
                moves.push((stats.actor, caller_stats.server));
            }
        }
        for (actor, dst) in moves {
            if rt.migrate(actor, dst).is_ok() {
                self.migrations += 1;
            }
        }
    }

    fn place_new_actor(
        &mut self,
        rt: &Runtime,
        _type_id: ActorTypeId,
        _creator: Option<ServerId>,
    ) -> Option<ServerId> {
        // Random placement: the default rule has no application knowledge.
        let servers = rt.cluster().running_ids();
        if servers.is_empty() {
            return None;
        }
        self.counter = self.counter.wrapping_add(1);
        Some(servers[(self.counter * 7) % servers.len()])
    }
}

/// The "def-rule" of §5.3: when a server is hot, migrate its heaviest
/// actors to the idlest server — with no knowledge that folders drag their
/// files along.
#[derive(Debug)]
pub struct HeavyToIdle {
    /// CPU fraction above which a server counts as hot.
    pub hot_threshold: f64,
    /// Actors migrated per hot server per round.
    pub moves_per_round: usize,
    /// Migrations issued.
    pub migrations: u64,
}

impl HeavyToIdle {
    /// Creates the baseline with the given hot threshold.
    pub fn new(hot_threshold: f64) -> Self {
        HeavyToIdle {
            hot_threshold,
            moves_per_round: 1,
            migrations: 0,
        }
    }
}

impl ElasticityController for HeavyToIdle {
    fn on_elasticity_tick(&mut self, rt: &mut Runtime) {
        let snapshot = rt.snapshot().clone();
        let servers = rt.cluster().running_ids();
        if servers.len() < 2 {
            return;
        }
        let usage = |sid: ServerId| snapshot.server(sid).map(|s| s.usage.cpu()).unwrap_or(0.0);
        let mut hot: Vec<ServerId> = servers
            .iter()
            .copied()
            .filter(|&s| usage(s) > self.hot_threshold)
            .collect();
        hot.sort_by(|a, b| usage(*b).partial_cmp(&usage(*a)).expect("finite"));
        for src in hot {
            let Some(dst) = servers
                .iter()
                .copied()
                .filter(|&s| s != src)
                .min_by(|a, b| usage(*a).partial_cmp(&usage(*b)).expect("finite"))
            else {
                continue;
            };
            // Heaviest actors by observed CPU share.
            let mut actors: Vec<(ActorId, f64)> = snapshot
                .actors_on(src)
                .map(|a| (a.actor, a.cpu_share))
                .collect();
            actors.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
            for (actor, _) in actors.into_iter().take(self.moves_per_round) {
                if rt.migrate(actor, dst).is_ok() {
                    self.migrations += 1;
                }
            }
        }
    }
}
