//! Property tests: the indexed plan evaluator must be observationally
//! identical to the naive AST walker ([`crate::eval::naive`]) on random
//! policies and random profiling snapshots.
//!
//! The naive evaluator is the semantic oracle: it does no condition
//! reordering, no name pre-resolution, and no candidate pruning, so any
//! divergence here points at the query-plan lowering or the index fast
//! paths. Policies are generated as *source text* over a fixed schema so
//! the whole pipeline (parse -> analyze -> plan -> bind) is exercised, not
//! just hand-built IR.

use std::collections::BTreeMap;
use std::sync::Arc;

use plasma_actor::ids::{ActorId, ActorTypeId, FnId};
use plasma_actor::message::CallerKind;
use plasma_actor::stats::{ActorCounters, ActorWindowStats, CallKey, CallStat, ProfileSnapshot};
use plasma_cluster::ServerId;
use plasma_epl::{compile, ActorSchema};
use plasma_sim::{SimDuration, SimTime};
use proptest::prelude::*;

use crate::eval::{naive, solve_bound, BoundRule};
use crate::view::{EvalCtx, EvalFrame, ServerMeta};

/// Deterministic splitmix64: one proptest-drawn seed fans out into all the
/// structural choices below, which keeps the generator code flat.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

const TYPES: [&str; 3] = ["T0", "T1", "T2"];
const FNS: [&str; 2] = ["f0", "f1"];
const VARS: [&str; 3] = ["a", "b", "c"];
const CMPS: [&str; 4] = ["<", ">", "<=", ">="];

fn schema() -> ActorSchema {
    let mut s = ActorSchema::new();
    for t in TYPES {
        s.actor_type(t).prop("r0").func("f0").func("f1");
    }
    s
}

/// Draws a variable from the 3-name pool. Each name carries a fixed type
/// (`a: T0`, `b: T1`, `c: T2`) so conjuncts that reuse a name produce a
/// *join* on the shared slot rather than a type-clash compile error.
fn gen_var(mix: &mut Mix) -> (&'static str, &'static str) {
    let i = mix.below(VARS.len() as u64) as usize;
    (TYPES[i], VARS[i])
}

/// Draws a statistic plus a value within its legal range (`perc` bounds
/// must sit in `[0, 100]`; `count`/`size` are open-ended).
fn gen_stat(mix: &mut Mix, pool: &[&'static str]) -> (&'static str, u64) {
    let stat = *mix.pick(pool);
    let val = if stat == "perc" {
        mix.below(101)
    } else {
        mix.below(3000)
    };
    (stat, val)
}

/// One random atomic predicate.
fn gen_pred(mix: &mut Mix) -> String {
    let cmp = *mix.pick(&CMPS);
    match mix.below(5) {
        0 => {
            let res = *mix.pick(&["cpu", "mem", "net"]);
            let (stat, val) = gen_stat(mix, &["perc"]);
            format!("server.{res}.{stat} {cmp} {val}")
        }
        1 => {
            let (t, v) = gen_var(mix);
            let res = *mix.pick(&["cpu", "mem"]);
            let (stat, val) = gen_stat(mix, &["perc"]);
            format!("{t}({v}).{res}.{stat} {cmp} {val}")
        }
        2 => {
            let (t, v) = gen_var(mix);
            let f = *mix.pick(&FNS);
            let (stat, val) = gen_stat(mix, &["perc", "count", "size"]);
            format!("client.call({t}({v}).{f}).{stat} {cmp} {val}")
        }
        3 => {
            let (tc, vc) = gen_var(mix);
            let (tv, vv) = gen_var(mix);
            let f = *mix.pick(&FNS);
            let (stat, val) = gen_stat(mix, &["perc", "count", "size"]);
            format!("{tc}({vc}).call({tv}({vv}).{f}).{stat} {cmp} {val}")
        }
        _ => {
            let (tm, vm) = gen_var(mix);
            let (to, vo) = gen_var(mix);
            format!("{tm}({vm}) in ref({to}({vo}).r0)")
        }
    }
}

/// A random rule: 1-4 predicates joined by `and`, occasionally with an
/// `or` pair, always ending in a var-free behavior so solving is the only
/// thing under test.
fn gen_rule(mix: &mut Mix) -> String {
    let n = 1 + mix.below(4);
    let mut parts = Vec::new();
    for _ in 0..n {
        if mix.chance(25) {
            parts.push(format!("({} or {})", gen_pred(mix), gen_pred(mix)));
        } else {
            parts.push(gen_pred(mix));
        }
    }
    format!("{} => balance({{T0}}, cpu);", parts.join(" and "))
}

/// One random actor row. `n_actors` is only a hint sizing the caller-id
/// and dangling-reference pools.
fn gen_actor(mix: &mut Mix, id: u64, n_actors: u64, n_servers: u32) -> ActorWindowStats {
    let mut calls = BTreeMap::new();
    for (f, _) in FNS.iter().enumerate() {
        if mix.chance(60) {
            calls.insert(
                CallKey {
                    caller_kind: CallerKind::Client,
                    caller: None,
                    fname: FnId(f as u32),
                },
                CallStat {
                    count: mix.below(3000),
                    bytes: mix.below(1 << 20),
                },
            );
        }
        if mix.chance(40) && n_actors > 1 {
            let caller = ActorId(mix.below(n_actors));
            calls.insert(
                CallKey {
                    caller_kind: CallerKind::Actor(ActorTypeId(mix.below(3) as u32)),
                    caller: Some(caller),
                    fname: FnId(f as u32),
                },
                CallStat {
                    count: mix.below(3000),
                    bytes: mix.below(1 << 20),
                },
            );
        }
    }
    let mut refs = BTreeMap::new();
    if mix.chance(50) {
        // Reference ids may dangle past the live actor range.
        let members: Vec<ActorId> = (0..mix.below(4))
            .map(|_| ActorId(mix.below(n_actors + 2)))
            .collect();
        refs.insert("r0".to_string(), members);
    }
    ActorWindowStats {
        actor: ActorId(id),
        // Type id 3 exists in the snapshot but not in the schema.
        type_id: ActorTypeId(mix.below(4) as u32),
        server: ServerId(mix.below(n_servers as u64) as u32),
        state_size: mix.below(1 << 24),
        pinned: mix.chance(10),
        cpu_share: mix.below(120) as f64 / 100.0,
        counters: ActorCounters {
            cpu_busy: SimDuration::ZERO,
            calls,
            bytes_sent: mix.below(1 << 20),
        },
        refs,
    }
}

/// Random cluster + snapshot: a few servers with arbitrary utilization,
/// up to two dozen actors with random types (including one *unregistered*
/// type id), call counters from clients and other actors, and dangling
/// `r0` references.
fn gen_world(mix: &mut Mix) -> (ProfileSnapshot, Vec<ServerMeta>) {
    let n_servers = 1 + mix.below(4) as u32;
    let servers: Vec<ServerMeta> = (0..n_servers)
        .map(|i| ServerMeta {
            id: ServerId(i),
            total_speed: 1.0,
            vcpus: 1,
            mem_bytes: 1 << 30,
            net_bps: 1e9,
            cpu: mix.below(150) as f64 / 100.0,
            mem: mix.below(120) as f64 / 100.0,
            net: mix.below(120) as f64 / 100.0,
            actor_count: mix.below(30) as usize,
        })
        .collect();
    let n_actors = mix.below(24);
    let actors: Vec<ActorWindowStats> = (0..n_actors)
        .map(|i| gen_actor(mix, i, n_actors, n_servers))
        .collect();
    let snap = ProfileSnapshot {
        generation: 1,
        at: SimTime::from_secs(10),
        window: SimDuration::from_secs(1),
        actors,
        servers: Vec::new(),
    };
    (snap, servers)
}

fn name_tables() -> (BTreeMap<String, ActorTypeId>, BTreeMap<String, FnId>) {
    let types = TYPES
        .iter()
        .enumerate()
        .map(|(i, t)| (t.to_string(), ActorTypeId(i as u32)))
        .collect();
    let fns = FNS
        .iter()
        .enumerate()
        .map(|(i, f)| (f.to_string(), FnId(i as u32)))
        .collect();
    (types, fns)
}

/// Guards the generator against becoming vacuous: across a fixed seed
/// range, most rules must compile and a healthy share of the compiled ones
/// must produce at least one matching environment. (Purely deterministic —
/// `Mix` derives everything from the seed.)
#[test]
fn generator_is_not_vacuous() {
    let (mut compiled, mut matched) = (0u32, 0u32);
    let total = 400;
    for seed in 0..total {
        let mut mix = Mix(seed);
        let src = gen_rule(&mut mix);
        let Ok(policy) = compile(&src, &schema()) else {
            continue;
        };
        compiled += 1;
        let (snap, servers) = gen_world(&mut mix);
        let (types, fns) = name_tables();
        let frame = EvalFrame::from_parts(Arc::new(snap), servers.clone(), types, fns);
        let scope: Vec<ServerId> = servers.iter().map(|s| s.id).collect();
        let ctx = EvalCtx::scoped(&frame, &scope);
        let bound = BoundRule::bind(&policy.rules[0], &frame);
        if !solve_bound(&bound, &ctx).is_empty() {
            matched += 1;
        }
    }
    assert!(
        compiled >= total as u32 / 2,
        "only {compiled}/{total} random rules compiled"
    );
    assert!(
        matched >= compiled / 10,
        "only {matched}/{compiled} compiled rules ever matched"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// For every compilable random rule, random snapshot, and every scope
    /// (full and partial), the indexed evaluator's `Env` set equals the
    /// naive one exactly. Both evaluators canonicalize (sort + dedupe)
    /// their output, so plain equality is order-insensitive already.
    #[test]
    fn indexed_solver_matches_naive_oracle(seed in 0u64..1 << 48) {
        let mut mix = Mix(seed);
        let src = gen_rule(&mut mix);
        // Var/type clashes and other static errors are not this test's
        // concern; skip those draws.
        let Ok(policy) = compile(&src, &schema()) else { return };
        let (snap, servers) = gen_world(&mut mix);
        let (types, fns) = name_tables();
        let frame = EvalFrame::from_parts(Arc::new(snap), servers.clone(), types, fns);
        let rule = &policy.rules[0];
        let bound = BoundRule::bind(rule, &frame);
        // Full scope plus a random strict prefix of the server list.
        let full: Vec<ServerId> = servers.iter().map(|s| s.id).collect();
        let partial: Vec<ServerId> =
            full[..1 + mix.below(full.len() as u64) as usize].to_vec();
        for scope in [&full, &partial] {
            let ctx = EvalCtx::scoped(&frame, scope);
            let fast = solve_bound(&bound, &ctx);
            let slow = naive::solve(rule, &ctx);
            prop_assert_eq!(
                fast, slow,
                "diverged on rule `{}` scope {:?} seed {}", src, scope, seed
            );
        }
    }
}

/// One random churn step applied to an id-sorted actor list: a handful of
/// adds (fresh, strictly increasing ids), removals, migrations, and
/// `cpu_share` changes.
fn churn_step(
    mix: &mut Mix,
    actors: &mut Vec<ActorWindowStats>,
    n_servers: u32,
    next_id: &mut u64,
) {
    let ops = 1 + mix.below(5);
    for _ in 0..ops {
        match mix.below(4) {
            0 => {
                let a = gen_actor(mix, *next_id, *next_id + 2, n_servers);
                *next_id += 1;
                actors.push(a);
            }
            1 if !actors.is_empty() => {
                let i = mix.below(actors.len() as u64) as usize;
                actors.remove(i);
            }
            2 if !actors.is_empty() => {
                let i = mix.below(actors.len() as u64) as usize;
                actors[i].server = ServerId(mix.below(n_servers as u64) as u32);
            }
            _ if !actors.is_empty() => {
                let i = mix.below(actors.len() as u64) as usize;
                actors[i].cpu_share = mix.below(120) as f64 / 100.0;
            }
            _ => {}
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Incremental frame maintenance is equivalent to rebuilding: over a
    /// random churn sequence, a retained frame advanced delta-by-delta and
    /// a second frame advanced by one merged delta both end up
    /// index-for-index identical — contents *and* order — to a frame built
    /// from scratch off the final snapshot, and candidate enumeration
    /// through the public context API agrees too.
    #[test]
    fn patched_frame_matches_rebuild_over_churn(seed in 0u64..1 << 48) {
        use plasma_actor::stats::SnapshotDelta;
        use plasma_epl::ast::{AType, Comp};

        let mut mix = Mix(seed);
        let (snap0, servers) = gen_world(&mut mix);
        let (types, fns) = name_tables();
        let mut stepped =
            EvalFrame::from_parts(Arc::new(snap0.clone()), servers.clone(), types.clone(), fns.clone());
        let mut merged_frame =
            EvalFrame::from_parts(Arc::new(snap0.clone()), servers.clone(), types.clone(), fns.clone());

        let mut actors = snap0.actors.clone();
        let mut next_id = actors.last().map(|a| a.actor.0 + 1).unwrap_or(0);
        let mut prev = snap0;
        let mut merged: Option<SnapshotDelta> = None;
        let n_steps = 1 + mix.below(8);
        for step in 0..n_steps {
            churn_step(&mut mix, &mut actors, servers.len() as u32, &mut next_id);
            let next = ProfileSnapshot {
                generation: prev.generation + 1,
                at: prev.at + SimDuration::from_secs(1),
                window: prev.window,
                actors: actors.clone(),
                servers: Vec::new(),
            };
            let delta = SnapshotDelta::between(&prev, &next);
            prop_assert!(
                stepped.apply(Arc::new(next.clone()), servers.clone(), &delta),
                "per-step apply refused at step {}", step
            );
            match &mut merged {
                Some(m) => m.merge(&delta),
                None => merged = Some(delta),
            }
            prev = next;
        }
        let final_snap = Arc::new(prev);
        prop_assert!(
            merged_frame.apply(Arc::new((*final_snap).clone()), servers.clone(), &merged.unwrap()),
            "merged apply refused"
        );
        let oracle = EvalFrame::from_parts(Arc::clone(&final_snap), servers.clone(), types, fns);
        stepped.assert_same_indexes(&oracle);
        merged_frame.assert_same_indexes(&oracle);

        // Enumeration through the public API agrees as well, including the
        // threshold-pruned path over the cpu-sorted twins.
        let full: Vec<ServerId> = servers.iter().map(|s| s.id).collect();
        let patched_ctx = EvalCtx::scoped(&stepped, &full);
        let oracle_ctx = EvalCtx::scoped(&oracle, &full);
        for pattern in [AType::Any, AType::Named("T1".into())] {
            let a: Vec<ActorId> = patched_ctx
                .actors_matching(&pattern, None)
                .iter()
                .map(|a| a.actor)
                .collect();
            let b: Vec<ActorId> = oracle_ctx
                .actors_matching(&pattern, None)
                .iter()
                .map(|a| a.actor)
                .collect();
            prop_assert_eq!(a, b, "enumeration diverged for {:?}", pattern);
        }
        let sel = patched_ctx.type_sel(&AType::Any);
        for comp in [Comp::Gt, Comp::Le] {
            let mut a: Vec<ActorId> = patched_ctx
                .select_cpu_threshold(sel, None, comp, 50.0)
                .iter()
                .map(|a| a.actor)
                .collect();
            let mut b: Vec<ActorId> = oracle_ctx
                .select_cpu_threshold(sel, None, comp, 50.0)
                .iter()
                .map(|a| a.actor)
                .collect();
            a.sort();
            b.sort();
            prop_assert_eq!(a, b, "threshold selection diverged for {:?}", comp);
        }
    }
}
