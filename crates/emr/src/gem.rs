//! Global Elasticity Manager planning (Alg. 2): resource rules.
//!
//! Each GEM aggregates the REPORTs of its managed servers into a global
//! snapshot and applies `[r-r]` behaviors: `balance` migrates actors from
//! overloaded servers toward idle ones until every server sits inside the
//! rule's bounds, and `reserve` relocates selected actors onto dedicated
//! servers. When all of a GEM's servers are overloaded (resp. idle) it
//! votes to grow (resp. shrink) the cluster (§4.2).

use std::collections::{BTreeMap, BTreeSet};

use plasma_actor::ids::ActorId;
use plasma_cluster::ServerId;
use plasma_epl::analyze::CompiledRule;
use plasma_epl::ast::{AType, Behavior, Cond, Res};

use crate::action::{Action, ActionKind, RuleStat};
use crate::eval::{expand_behavior_ref, solve_bound, BoundPolicy};
use crate::view::EvalCtx;

/// Utilization bounds extracted from a rule's condition.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Bounds {
    /// Upper watermark as a fraction (e.g. 0.8 from `perc > 80`).
    pub upper: f64,
    /// Lower watermark as a fraction.
    pub lower: f64,
}

impl Bounds {
    /// Fallback bounds when a rule names none.
    pub const DEFAULT: Bounds = Bounds {
        upper: 0.8,
        lower: 0.6,
    };
}

/// Extracts the `server.res` watermarks mentioned in a condition.
///
/// `server.cpu.perc > 80 or server.cpu.perc < 60` yields
/// `upper = 0.8, lower = 0.6`. Missing sides fall back to `defaults`.
/// The extraction itself (last mention wins) lives in the EPL crate's
/// verifier metadata so the GEM and the policy verifier read the same
/// watermarks from the same condition.
pub fn extract_bounds(cond: &Cond, res: Res, defaults: Bounds) -> Bounds {
    let band = plasma_epl::verify::meta::server_band(cond, res);
    Bounds {
        upper: band.upper.map_or(defaults.upper, |p| p / 100.0),
        lower: band.lower.map_or(defaults.lower, |p| p / 100.0),
    }
}

/// The outcome of one GEM planning pass.
#[derive(Debug, Default)]
pub struct GemPlan {
    /// Proposed balance/reserve migrations.
    pub actions: Vec<Action>,
    /// The GEM observed every managed server overloaded (or a reserve had
    /// no viable target): vote for growing the cluster.
    pub scale_out_vote: bool,
    /// The GEM observed every managed server under the lower bound: vote
    /// for shrinking the cluster.
    pub scale_in_vote: bool,
    /// Servers that now host reserved actors (excluded as future targets).
    pub reserved: BTreeSet<ServerId>,
    /// Reserve actions that found no viable target (drives scale-out size).
    pub unplaced_reserves: usize,
    /// Per-rule evaluation tallies, in evaluation order (for tracing).
    pub rule_stats: Vec<RuleStat>,
}

/// Configuration for GEM planning.
#[derive(Clone, Copy, Debug)]
pub struct GemConfig {
    /// Fallback watermarks for rules that state none.
    pub default_bounds: Bounds,
    /// Maximum migrations one `balance` invocation may plan (the paper
    /// migrates gradually, §4.3).
    pub max_balance_moves: usize,
    /// Minimum utilization gap between source and destination for a
    /// balance move to be worthwhile.
    pub min_gap: f64,
}

impl Default for GemConfig {
    fn default() -> Self {
        GemConfig {
            default_bounds: Bounds::DEFAULT,
            max_balance_moves: 8,
            min_gap: 0.10,
        }
    }
}

/// Plans resource-rule actions over the GEM's managed scope.
pub fn plan(
    policy: &BoundPolicy<'_>,
    ctx: &EvalCtx<'_>,
    cfg: &GemConfig,
    reserved_servers: &BTreeSet<ServerId>,
) -> GemPlan {
    let mut plan = GemPlan::default();
    // Projected utilization, updated as moves are planned so one round does
    // not overshoot.
    let mut projected: BTreeMap<ServerId, [f64; 3]> = ctx
        .servers
        .iter()
        .map(|s| (s.id, [s.cpu, s.mem, s.net]))
        .collect();
    let mut moved: BTreeSet<ActorId> = BTreeSet::new();
    for bound in &policy.rules {
        let rule = bound.rule;
        if !rule.has_resource_behavior() {
            continue;
        }
        let envs = solve_bound(bound, ctx);
        let actions_before = plan.actions.len();
        if envs.is_empty() {
            plan.rule_stats.push(RuleStat {
                rule: rule.index,
                matches: 0,
                actions: 0,
            });
            continue;
        }
        for cb in &rule.behaviors {
            match &cb.behavior {
                Behavior::Balance { types, res } => {
                    let bounds = extract_bounds(&rule.cond, *res, cfg.default_bounds);
                    plan_balance(
                        &mut plan,
                        ctx,
                        cfg,
                        rule,
                        types,
                        *res,
                        bounds,
                        cb.priority,
                        &mut projected,
                        &mut moved,
                        reserved_servers,
                    );
                }
                Behavior::Reserve { actor, res } => {
                    let bounds = extract_bounds(&rule.cond, *res, cfg.default_bounds);
                    let mut targets: BTreeSet<ActorId> = BTreeSet::new();
                    for env in &envs {
                        targets.extend(expand_behavior_ref(actor, env, rule, ctx));
                    }
                    plan_reserve(
                        &mut plan,
                        ctx,
                        rule,
                        &targets,
                        *res,
                        bounds,
                        cb.priority,
                        &mut projected,
                        &mut moved,
                        reserved_servers,
                    );
                }
                _ => {}
            }
        }
        plan.rule_stats.push(RuleStat {
            rule: rule.index,
            matches: envs.len() as u64,
            actions: (plan.actions.len() - actions_before) as u64,
        });
    }
    plan
}

/// Decides whether this GEM should vote to scale the cluster.
///
/// Scale-out follows Fig. 1c's narrative: some server is overloaded *and*
/// no managed server has idle capacity left to rebalance into ("with no
/// available server to host additional workload, PLASMA has no choice but
/// to spawn a new server"). Scale-in fires when every server is under the
/// lower watermark.
pub fn scale_votes(ctx: &EvalCtx<'_>, bounds: Bounds) -> (bool, bool) {
    if ctx.servers.is_empty() {
        return (false, false);
    }
    let any_over = ctx.servers.iter().any(|s| s.cpu > bounds.upper);
    let none_idle = ctx.servers.iter().all(|s| s.cpu >= bounds.lower);
    let all_under = ctx.servers.iter().all(|s| s.cpu < bounds.lower);
    (any_over && none_idle, all_under)
}

#[allow(clippy::too_many_arguments)]
fn plan_balance(
    plan: &mut GemPlan,
    ctx: &EvalCtx<'_>,
    cfg: &GemConfig,
    rule: &CompiledRule,
    types: &[AType],
    res: Res,
    bounds: Bounds,
    priority: u32,
    projected: &mut BTreeMap<ServerId, [f64; 3]>,
    moved: &mut BTreeSet<ActorId>,
    reserved_servers: &BTreeSet<ServerId>,
) {
    let ridx = res_index(res);
    for _ in 0..cfg.max_balance_moves {
        // Source: the most loaded server; prefer ones above the upper bound.
        let Some(src) = ctx
            .servers
            .iter()
            .filter(|s| !reserved_servers.contains(&s.id))
            .max_by(|a, b| {
                projected[&a.id][ridx]
                    .partial_cmp(&projected[&b.id][ridx])
                    .expect("finite usage")
            })
        else {
            break;
        };
        // Destination: the least loaded non-reserved server.
        let Some(dst) = ctx
            .servers
            .iter()
            .filter(|s| s.id != src.id && !reserved_servers.contains(&s.id))
            .min_by(|a, b| {
                projected[&a.id][ridx]
                    .partial_cmp(&projected[&b.id][ridx])
                    .expect("finite usage")
            })
        else {
            break;
        };
        let src_u = projected[&src.id][ridx];
        let dst_u = projected[&dst.id][ridx];
        let triggered = src_u > bounds.upper || dst_u < bounds.lower;
        if std::env::var_os("PLASMA_EMR_DEBUG").is_some() {
            eprintln!(
                "[gem] balance res={res:?} src={:?}@{src_u:.2} dst={:?}@{dst_u:.2} trig={triggered}",
                src.id, dst.id
            );
        }
        if !triggered || src_u - dst_u < cfg.min_gap {
            break;
        }
        // Actor demand transfers scaled by relative server speed.
        let ratio = match res {
            Res::Cpu => src.total_speed / dst.total_speed.max(1e-9),
            Res::Mem => src.mem_bytes as f64 / dst.mem_bytes.max(1) as f64,
            Res::Net => src.net_bps / dst.net_bps.max(1e-9),
        };
        // Pick the movable actor whose share best fills *half* the gap:
        // bounding the transfer by gap/2 keeps the source at or above the
        // destination after the move, so rebalancing can never oscillate.
        let gap = src_u - dst_u;
        let movable: Vec<(ActorId, f64)> = ctx
            .actors()
            .iter()
            .filter(|a| a.server == src.id && !a.pinned && !moved.contains(&a.actor))
            .filter(|a| types.iter().any(|t| ctx.matches_type(a, t)))
            .map(|a| (a.actor, ctx.actor_usage(a, res)))
            .filter(|&(_, share)| share > 0.0)
            .collect();
        let candidate = movable
            .iter()
            .copied()
            .filter(|&(_, share)| share * ratio <= gap / 2.0 + 1e-9)
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite share"))
            .or_else(|| {
                // No actor fits half the gap (coarse-grained shares): when
                // the source is genuinely overloaded, move the smallest
                // movable actor that still narrows the gap, rather than
                // stalling forever.
                if src_u > bounds.upper {
                    movable
                        .iter()
                        .copied()
                        .filter(|&(_, share)| share * ratio < gap - 1e-9)
                        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite share"))
                } else {
                    None
                }
            });
        let Some((actor, share)) = candidate else {
            break;
        };
        projected.get_mut(&src.id).expect("src projected")[ridx] -= share;
        projected.get_mut(&dst.id).expect("dst projected")[ridx] += share * ratio;
        moved.insert(actor);
        plan.actions.push(Action {
            actor,
            src: src.id,
            dst: dst.id,
            kind: ActionKind::Balance,
            priority,
            rule: rule.index,
            trace: None,
        });
    }
    // Scale votes for this rule's bounds.
    let (out, inn) = scale_votes(ctx, bounds);
    plan.scale_out_vote |= out;
    plan.scale_in_vote |= inn;
}

#[allow(clippy::too_many_arguments)]
fn plan_reserve(
    plan: &mut GemPlan,
    ctx: &EvalCtx<'_>,
    rule: &CompiledRule,
    targets: &BTreeSet<ActorId>,
    res: Res,
    bounds: Bounds,
    priority: u32,
    projected: &mut BTreeMap<ServerId, [f64; 3]>,
    moved: &mut BTreeSet<ActorId>,
    reserved_servers: &BTreeSet<ServerId>,
) {
    let ridx = res_index(res);
    for &actor in targets {
        let Some(stats) = ctx.actor(actor) else {
            continue;
        };
        if stats.pinned || moved.contains(&actor) {
            continue;
        }
        if reserved_servers.contains(&stats.server) || plan.reserved.contains(&stats.server) {
            // Already on a dedicated server.
            continue;
        }
        let share = ctx.actor_usage(stats, res);
        let src_meta = ctx.server(stats.server);
        // Prefer an empty server; otherwise the least-loaded one that can
        // absorb the actor below the lower watermark.
        let target = ctx
            .servers
            .iter()
            .filter(|s| {
                s.id != stats.server
                    && !reserved_servers.contains(&s.id)
                    && !plan.reserved.contains(&s.id)
            })
            .filter(|s| {
                let ratio = match res {
                    Res::Cpu => {
                        src_meta.map(|m| m.total_speed).unwrap_or(s.total_speed)
                            / s.total_speed.max(1e-9)
                    }
                    Res::Mem => 1.0,
                    Res::Net => 1.0,
                };
                projected[&s.id][ridx] + share * ratio < bounds.lower.max(0.3)
            })
            .min_by_key(|s| (s.actor_count, s.id));
        match target {
            Some(t) => {
                projected.get_mut(&stats.server).expect("src projected")[ridx] -= share;
                projected.get_mut(&t.id).expect("dst projected")[ridx] += share;
                moved.insert(actor);
                plan.reserved.insert(t.id);
                plan.actions.push(Action {
                    actor,
                    src: stats.server,
                    dst: t.id,
                    kind: ActionKind::Reserve,
                    priority,
                    rule: rule.index,
                    trace: None,
                });
            }
            None => {
                // No server can host the reserved actor: ask for capacity.
                plan.scale_out_vote = true;
                plan.unplaced_reserves += 1;
            }
        }
    }
}

fn res_index(res: Res) -> usize {
    match res {
        Res::Cpu => 0,
        Res::Mem => 1,
        Res::Net => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plasma_epl::parser::parse_policy;

    #[test]
    fn bounds_extraction_both_sides() {
        let policy =
            parse_policy("server.cpu.perc > 80 or server.cpu.perc < 60 => balance({W}, cpu);")
                .unwrap();
        let b = extract_bounds(&policy.rules[0].cond, Res::Cpu, Bounds::DEFAULT);
        assert_eq!(
            b,
            Bounds {
                upper: 0.8,
                lower: 0.6
            }
        );
    }

    #[test]
    fn bounds_extraction_one_side_uses_default() {
        let policy = parse_policy("server.cpu.perc < 50 => balance({W}, cpu);").unwrap();
        let b = extract_bounds(&policy.rules[0].cond, Res::Cpu, Bounds::DEFAULT);
        assert_eq!(b.lower, 0.5);
        assert_eq!(b.upper, Bounds::DEFAULT.upper);
    }

    #[test]
    fn bounds_ignore_other_resources() {
        let policy = parse_policy("server.net.perc > 90 => balance({W}, cpu);").unwrap();
        let b = extract_bounds(&policy.rules[0].cond, Res::Cpu, Bounds::DEFAULT);
        assert_eq!(b, Bounds::DEFAULT);
    }

    /// The worker-side vote formula (`report_scale_votes`, computed from
    /// wire-carried report rows) and the GEM's own `scale_votes` are the
    /// same function under two encodings; this cross-check keeps them from
    /// drifting apart.
    #[test]
    fn wire_vote_formula_matches_scale_votes() {
        use crate::view::{EvalCtx, EvalFrame, ServerMeta};
        use plasma_actor::report_scale_votes;
        use plasma_actor::stats::ProfileSnapshot;
        use plasma_cluster::ServerId;
        use std::collections::BTreeMap;
        use std::sync::Arc;

        let metas = |cpus: &[f64]| -> Vec<ServerMeta> {
            cpus.iter()
                .enumerate()
                .map(|(i, &cpu)| ServerMeta {
                    id: ServerId(i as u32),
                    total_speed: 1.0,
                    vcpus: 1,
                    mem_bytes: 1,
                    net_bps: 1.0,
                    cpu,
                    mem: 0.0,
                    net: 0.0,
                    actor_count: 0,
                })
                .collect()
        };
        let bounds = Bounds {
            upper: 0.8,
            lower: 0.3,
        };
        let cases: [&[f64]; 6] = [
            &[],
            &[0.9],
            &[0.9, 0.5],
            &[0.9, 0.1],
            &[0.2, 0.1],
            &[0.5, 0.6],
        ];
        for cpus in cases {
            let servers = metas(cpus);
            let reports: Vec<_> = servers.iter().map(|m| m.to_report()).collect();
            let frame = EvalFrame::from_parts(
                Arc::new(ProfileSnapshot::default()),
                servers,
                BTreeMap::new(),
                BTreeMap::new(),
            );
            let ctx = EvalCtx::for_reports(&frame, &reports);
            assert_eq!(
                scale_votes(&ctx, bounds),
                report_scale_votes(&reports, bounds.upper, bounds.lower),
                "formulas must agree for cpus {cpus:?}"
            );
        }
    }
}
