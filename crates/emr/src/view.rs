//! The evaluation view: one shared indexed frame per round, scoped contexts
//! per consumer.
//!
//! LEMs evaluate rules anchored to their own server; GEMs evaluate over all
//! servers they manage. Both used to rebuild a string-keyed context per
//! evaluation; now the EMR builds one [`EvalFrame`] per decision round from
//! the runtime's generation-stamped [`ProfileSnapshot`] and every consumer
//! borrows it through a cheap scoped [`EvalCtx`].
//!
//! The frame carries the indexes the evaluator drives candidate enumeration
//! off: per-type actor lists, a per-server residency index, their
//! `(server, type)` intersection, and `cpu_share`-sorted copies of each for
//! threshold conditions (`actor.cpu.perc > X` resolves to a
//! `partition_point` over a sorted index instead of a scan). All index
//! groups store positions into the id-ordered actor list, so enumeration
//! order — which behavior expansion relies on — is identical to the old
//! full-scan implementation.

use std::collections::BTreeMap;

use plasma_actor::ids::{ActorId, ActorTypeId, FnId};
use plasma_actor::stats::{ActorWindowStats, ProfileSnapshot};
use plasma_actor::Runtime;
use plasma_cluster::ServerId;
use plasma_epl::ast::{AType, Comp, Res};

/// Static capacity data of one server, captured at context build time.
#[derive(Clone, Copy, Debug)]
pub struct ServerMeta {
    /// The server.
    pub id: ServerId,
    /// Total compute throughput (work units per second).
    pub total_speed: f64,
    /// Number of vCPU lanes.
    pub vcpus: u32,
    /// Memory capacity in bytes.
    pub mem_bytes: u64,
    /// NIC bandwidth in bits per second.
    pub net_bps: f64,
    /// Utilization fractions over the last window.
    pub cpu: f64,
    /// Memory utilization fraction.
    pub mem: f64,
    /// Network utilization fraction.
    pub net: f64,
    /// Resident actor count.
    pub actor_count: usize,
}

impl ServerMeta {
    /// Returns the utilization fraction of `res`.
    pub fn usage(&self, res: Res) -> f64 {
        match res {
            Res::Cpu => self.cpu,
            Res::Mem => self.mem,
            Res::Net => self.net,
        }
    }
}

/// A resolved actor-type selector, produced by binding a plan's type symbol
/// against the runtime's registry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TypeSel {
    /// Matches every actor type.
    Any,
    /// Matches one concrete type.
    Id(ActorTypeId),
    /// The named type is unknown to the registry: matches nothing.
    Unknown,
}

impl TypeSel {
    /// Returns whether `actor` matches this selector.
    pub fn matches(self, actor: &ActorWindowStats) -> bool {
        match self {
            TypeSel::Any => true,
            TypeSel::Id(t) => actor.type_id == t,
            TypeSel::Unknown => false,
        }
    }
}

/// The per-round indexed view over one profiling snapshot: server metadata,
/// the id-ordered actor list, candidate indexes, and the name tables rule
/// plans are bound against. Built once per decision round and shared by
/// every [`EvalCtx`].
pub struct EvalFrame<'a> {
    snap: &'a ProfileSnapshot,
    /// Server metadata in construction-scope order.
    servers: Vec<ServerMeta>,
    server_idx: BTreeMap<ServerId, usize>,
    /// Actor stats on frame servers, in id order.
    actors: Vec<&'a ActorWindowStats>,
    by_id: BTreeMap<ActorId, u32>,
    by_type: BTreeMap<ActorTypeId, Vec<u32>>,
    by_server: BTreeMap<ServerId, Vec<u32>>,
    by_server_type: BTreeMap<(ServerId, ActorTypeId), Vec<u32>>,
    /// `cpu_share`-ascending copies of the groups above, for threshold
    /// pruning via `partition_point`.
    all_cpu: Vec<u32>,
    by_type_cpu: BTreeMap<ActorTypeId, Vec<u32>>,
    by_server_cpu: BTreeMap<ServerId, Vec<u32>>,
    by_server_type_cpu: BTreeMap<(ServerId, ActorTypeId), Vec<u32>>,
    type_names: BTreeMap<String, ActorTypeId>,
    fn_names: BTreeMap<String, FnId>,
}

impl<'a> EvalFrame<'a> {
    /// Builds the round's frame over every running server.
    pub fn new(rt: &'a Runtime) -> Self {
        Self::from_runtime(rt, &rt.cluster().running_ids())
    }

    /// Builds a frame over `scope` servers from the runtime's latest
    /// snapshot (non-running servers are skipped).
    pub(crate) fn from_runtime(rt: &'a Runtime, scope: &[ServerId]) -> Self {
        let snap = rt.snapshot();
        let mut servers = Vec::with_capacity(scope.len());
        for &sid in scope {
            let server = rt.cluster().server(sid);
            if !server.is_running() {
                continue;
            }
            let inst = server.instance();
            let (cpu, mem, net, actor_count) = match snap.server(sid) {
                Some(s) => (s.usage.cpu(), s.usage.mem(), s.usage.net(), s.actor_count),
                None => (0.0, 0.0, 0.0, rt.actor_count_on(sid)),
            };
            servers.push(ServerMeta {
                id: sid,
                total_speed: inst.total_speed(),
                vcpus: inst.vcpus,
                mem_bytes: inst.mem_bytes,
                net_bps: inst.net_bps,
                cpu,
                mem,
                net,
                actor_count,
            });
        }
        let names = rt.names();
        let mut type_names = BTreeMap::new();
        for t in names.all_types() {
            type_names.insert(names.type_name(t).to_string(), t);
        }
        let mut fn_names = BTreeMap::new();
        for f in names.all_functions() {
            fn_names.insert(names.function_name(f).to_string(), f);
        }
        Self::build(snap, servers, type_names, fn_names)
    }

    /// Builds a frame from pre-assembled parts (synthetic snapshots in
    /// benches and property tests). Actors on servers absent from `servers`
    /// are excluded, as they would be for non-running servers.
    pub fn from_parts(
        snap: &'a ProfileSnapshot,
        servers: Vec<ServerMeta>,
        type_names: BTreeMap<String, ActorTypeId>,
        fn_names: BTreeMap<String, FnId>,
    ) -> Self {
        Self::build(snap, servers, type_names, fn_names)
    }

    fn build(
        snap: &'a ProfileSnapshot,
        servers: Vec<ServerMeta>,
        type_names: BTreeMap<String, ActorTypeId>,
        fn_names: BTreeMap<String, FnId>,
    ) -> Self {
        let server_idx: BTreeMap<ServerId, usize> =
            servers.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
        let mut actors = Vec::new();
        let mut by_id = BTreeMap::new();
        let mut by_type: BTreeMap<ActorTypeId, Vec<u32>> = BTreeMap::new();
        let mut by_server: BTreeMap<ServerId, Vec<u32>> = BTreeMap::new();
        let mut by_server_type: BTreeMap<(ServerId, ActorTypeId), Vec<u32>> = BTreeMap::new();
        for a in &snap.actors {
            if !server_idx.contains_key(&a.server) {
                continue;
            }
            let pos = actors.len() as u32;
            by_id.insert(a.actor, pos);
            by_type.entry(a.type_id).or_default().push(pos);
            by_server.entry(a.server).or_default().push(pos);
            by_server_type
                .entry((a.server, a.type_id))
                .or_default()
                .push(pos);
            actors.push(a);
        }
        let sort_cpu = |group: &[u32]| {
            let mut sorted = group.to_vec();
            // Stable sort keeps id-order ties deterministic; shares are
            // finite so `total_cmp` equals the usual order.
            sorted.sort_by(|&x, &y| {
                actors[x as usize]
                    .cpu_share
                    .total_cmp(&actors[y as usize].cpu_share)
            });
            sorted
        };
        let all: Vec<u32> = (0..actors.len() as u32).collect();
        let all_cpu = sort_cpu(&all);
        let by_type_cpu = by_type.iter().map(|(&k, v)| (k, sort_cpu(v))).collect();
        let by_server_cpu = by_server.iter().map(|(&k, v)| (k, sort_cpu(v))).collect();
        let by_server_type_cpu = by_server_type
            .iter()
            .map(|(&k, v)| (k, sort_cpu(v)))
            .collect();
        EvalFrame {
            snap,
            servers,
            server_idx,
            actors,
            by_id,
            by_type,
            by_server,
            by_server_type,
            all_cpu,
            by_type_cpu,
            by_server_cpu,
            by_server_type_cpu,
            type_names,
            fn_names,
        }
    }

    /// Returns the snapshot generation this frame was built from.
    pub fn generation(&self) -> u64 {
        self.snap.generation
    }

    /// Returns the metadata of every frame server.
    pub fn servers(&self) -> &[ServerMeta] {
        &self.servers
    }

    /// Returns the metadata of one frame server.
    pub fn server(&self, id: ServerId) -> Option<&ServerMeta> {
        self.server_idx.get(&id).map(|&i| &self.servers[i])
    }

    /// Resolves an EPL type name against the application's registry.
    pub fn type_id(&self, name: &str) -> Option<ActorTypeId> {
        self.type_names.get(name).copied()
    }

    /// Resolves a function name against the application's registry.
    pub fn fn_id(&self, name: &str) -> Option<FnId> {
        self.fn_names.get(name).copied()
    }

    fn group(&self, sel: TypeSel, on_server: Option<ServerId>, cpu_sorted: bool) -> &[u32] {
        let found = match (sel, on_server) {
            (TypeSel::Unknown, _) => None,
            (TypeSel::Any, None) => {
                // The unsorted full list is `EvalCtx::actors()`; only the
                // sorted variant is served from here.
                debug_assert!(cpu_sorted);
                Some(&self.all_cpu)
            }
            (TypeSel::Any, Some(s)) => {
                if cpu_sorted {
                    self.by_server_cpu.get(&s)
                } else {
                    self.by_server.get(&s)
                }
            }
            (TypeSel::Id(t), None) => {
                if cpu_sorted {
                    self.by_type_cpu.get(&t)
                } else {
                    self.by_type.get(&t)
                }
            }
            (TypeSel::Id(t), Some(s)) => {
                if cpu_sorted {
                    self.by_server_type_cpu.get(&(s, t))
                } else {
                    self.by_server_type.get(&(s, t))
                }
            }
        };
        found.map_or(&[], |v| v)
    }
}

/// How an [`EvalCtx`] holds its frame: built for this context alone, or
/// borrowed from the round's shared frame.
enum FrameRef<'a> {
    Owned(Box<EvalFrame<'a>>),
    Shared(&'a EvalFrame<'a>),
}

/// A scoped, immutable view over one profiling snapshot.
///
/// A context narrows a frame to the servers one consumer manages; all
/// candidate enumeration stays index-driven on the shared frame, filtered
/// by scope where the scope is partial.
pub struct EvalCtx<'a> {
    frame: FrameRef<'a>,
    /// Servers in scope, in scope order.
    pub servers: Vec<ServerMeta>,
    /// `None` when the scope covers the whole frame.
    scope: Option<BTreeMap<ServerId, ()>>,
    /// Scoped actor list (id order); `None` when the scope is full.
    scoped_actors: Option<Vec<&'a ActorWindowStats>>,
}

impl<'a> EvalCtx<'a> {
    /// Builds a standalone context over `scope` servers from the runtime's
    /// latest snapshot (the frame is private to this context).
    pub fn new(rt: &'a Runtime, scope: &[ServerId]) -> Self {
        let frame = EvalFrame::from_runtime(rt, scope);
        let servers = frame.servers.clone();
        EvalCtx {
            frame: FrameRef::Owned(Box::new(frame)),
            servers,
            scope: None,
            scoped_actors: None,
        }
    }

    /// Borrows the round's shared frame, narrowed to `scope` servers.
    /// Servers absent from the frame (not running at build time) are
    /// skipped, mirroring [`EvalCtx::new`].
    pub fn scoped(frame: &'a EvalFrame<'a>, scope: &[ServerId]) -> Self {
        let servers: Vec<ServerMeta> = scope
            .iter()
            .filter_map(|&sid| frame.server(sid))
            .copied()
            .collect();
        let full = servers.len() == frame.servers.len();
        let (scope_set, scoped_actors) = if full {
            (None, None)
        } else {
            let set: BTreeMap<ServerId, ()> = servers.iter().map(|s| (s.id, ())).collect();
            let actors = frame
                .actors
                .iter()
                .filter(|a| set.contains_key(&a.server))
                .copied()
                .collect();
            (Some(set), Some(actors))
        };
        EvalCtx {
            frame: FrameRef::Shared(frame),
            servers,
            scope: scope_set,
            scoped_actors,
        }
    }

    pub(crate) fn frame(&self) -> &EvalFrame<'a> {
        match &self.frame {
            FrameRef::Owned(f) => f,
            FrameRef::Shared(f) => f,
        }
    }

    fn in_scope(&self, sid: ServerId) -> bool {
        match &self.scope {
            Some(set) => set.contains_key(&sid),
            None => self.frame().server_idx.contains_key(&sid),
        }
    }

    /// Returns the window length in seconds.
    pub fn window_secs(&self) -> f64 {
        self.frame().snap.window.as_secs_f64().max(1e-9)
    }

    /// Returns every in-scope actor.
    pub fn actors(&self) -> &[&'a ActorWindowStats] {
        match &self.scoped_actors {
            Some(v) => v,
            None => &self.frame().actors,
        }
    }

    /// Returns the stats of one actor, if in scope.
    pub fn actor(&self, id: ActorId) -> Option<&'a ActorWindowStats> {
        let frame = self.frame();
        let a = frame.by_id.get(&id).map(|&i| frame.actors[i as usize])?;
        if self.in_scope(a.server) {
            Some(a)
        } else {
            None
        }
    }

    /// Returns the server metadata for `id`, if in scope.
    pub fn server(&self, id: ServerId) -> Option<&ServerMeta> {
        self.servers.iter().find(|s| s.id == id)
    }

    /// Resolves an EPL type name against the application's registry.
    pub fn type_id(&self, name: &str) -> Option<ActorTypeId> {
        self.frame().type_id(name)
    }

    /// Resolves a function name against the application's registry.
    pub fn fn_id(&self, name: &str) -> Option<FnId> {
        self.frame().fn_id(name)
    }

    /// Returns whether an actor's type matches an EPL type pattern.
    pub fn matches_type(&self, actor: &ActorWindowStats, pattern: &AType) -> bool {
        self.type_sel(pattern).matches(actor)
    }

    /// Binds a type pattern to a selector over this context's registry.
    pub fn type_sel(&self, pattern: &AType) -> TypeSel {
        match pattern {
            AType::Any => TypeSel::Any,
            AType::Named(name) => match self.type_id(name) {
                Some(t) => TypeSel::Id(t),
                None => TypeSel::Unknown,
            },
        }
    }

    /// Returns the in-scope actors matching a type pattern, optionally
    /// restricted to one server, in id order.
    pub fn actors_matching(
        &self,
        pattern: &AType,
        on_server: Option<ServerId>,
    ) -> Vec<&'a ActorWindowStats> {
        self.select(self.type_sel(pattern), on_server)
    }

    /// Index-driven candidate enumeration: in-scope actors matching `sel`,
    /// optionally on one server, in id order.
    pub(crate) fn select(
        &self,
        sel: TypeSel,
        on_server: Option<ServerId>,
    ) -> Vec<&'a ActorWindowStats> {
        let frame = self.frame();
        match (sel, on_server) {
            (TypeSel::Unknown, _) => Vec::new(),
            (_, Some(s)) if !self.in_scope(s) => Vec::new(),
            (TypeSel::Any, None) => self.actors().to_vec(),
            (sel, on_server @ Some(_)) => frame
                .group(sel, on_server, false)
                .iter()
                .map(|&i| frame.actors[i as usize])
                .collect(),
            (sel @ TypeSel::Id(_), None) => {
                let group = frame.group(sel, None, false);
                match &self.scope {
                    None => group.iter().map(|&i| frame.actors[i as usize]).collect(),
                    Some(set) => group
                        .iter()
                        .map(|&i| frame.actors[i as usize])
                        .filter(|a| set.contains_key(&a.server))
                        .collect(),
                }
            }
        }
    }

    /// Threshold-pruned enumeration for `actor.cpu.perc comp val`
    /// conditions: candidates whose `cpu_share * 100` satisfies `comp`
    /// against `val`, selected by `partition_point` over the frame's
    /// cpu-sorted index. The comparison applied is bit-identical to the
    /// per-candidate check, so the result set matches a full scan exactly;
    /// output order is unspecified (callers dedupe).
    pub(crate) fn select_cpu_threshold(
        &self,
        sel: TypeSel,
        on_server: Option<ServerId>,
        comp: Comp,
        val: f64,
    ) -> Vec<&'a ActorWindowStats> {
        if let Some(s) = on_server {
            if !self.in_scope(s) {
                return Vec::new();
            }
        }
        let frame = self.frame();
        let sorted = frame.group(sel, on_server, true);
        let pass = |&i: &u32| comp.eval(frame.actors[i as usize].cpu_share * 100.0, val);
        // `cpu_share` ascends along the group and every `Comp` is a
        // half-line, so passing candidates form a prefix (Lt/Le) or a
        // suffix (Gt/Ge).
        let hits = match comp {
            Comp::Gt | Comp::Ge => &sorted[sorted.partition_point(|i| !pass(i))..],
            Comp::Lt | Comp::Le => &sorted[..sorted.partition_point(pass)],
        };
        let needs_scope_filter = on_server.is_none() && self.scope.is_some();
        hits.iter()
            .map(|&i| frame.actors[i as usize])
            .filter(|a| !needs_scope_filter || self.in_scope(a.server))
            .collect()
    }

    /// Returns an actor's utilization fraction of its server for `res`.
    pub fn actor_usage(&self, actor: &ActorWindowStats, res: Res) -> f64 {
        match res {
            Res::Cpu => actor.cpu_share,
            Res::Mem => {
                let cap = self
                    .server(actor.server)
                    .map(|s| s.mem_bytes)
                    .unwrap_or(u64::MAX);
                if cap == 0 {
                    0.0
                } else {
                    actor.state_size as f64 / cap as f64
                }
            }
            Res::Net => {
                let bps = self
                    .server(actor.server)
                    .map(|s| s.net_bps)
                    .unwrap_or(f64::INFINITY);
                let recv: u64 = actor.counters.calls.values().map(|s| s.bytes).sum();
                let bits = (actor.counters.bytes_sent + recv) as f64 * 8.0;
                if bps <= 0.0 {
                    0.0
                } else {
                    bits / (bps * self.window_secs())
                }
            }
        }
    }
}
