//! The evaluation view: one shared indexed frame per round, scoped contexts
//! per consumer.
//!
//! LEMs evaluate rules anchored to their own server; GEMs evaluate over all
//! servers they manage. Both used to rebuild a string-keyed context per
//! evaluation; now the EMR retains one [`EvalFrame`] across decision rounds,
//! advances it by applying the runtime's [`SnapshotDelta`]s, and every
//! consumer borrows it through a cheap scoped [`EvalCtx`].
//!
//! The frame carries the indexes the evaluator drives candidate enumeration
//! off: per-type actor lists, a per-server residency index, their
//! `(server, type)` intersection, and `cpu_share`-sorted copies of each for
//! threshold conditions (`actor.cpu.perc > X` resolves to a
//! `partition_point` over a sorted index instead of a scan). Index groups
//! store stable [`ActorId`]s — id order *is* enumeration order, which the
//! behavior expansion relies on — resolved through a dense id-indexed row
//! table, so membership edits never shift unrelated entries.
//!
//! # Incremental maintenance
//!
//! A frame is built from scratch once ([`EvalFrame::new`]) and then patched
//! per round ([`EvalFrame::advance`]): the merged delta since the frame's
//! generation names every actor whose indexed stats (`server`, `type_id`,
//! `cpu_share`) may have changed, and only those ids are spliced out of and
//! back into the affected groups at binary-searched positions. Row *data*
//! is always read from the current snapshot through the dense row table
//! (refreshed in one O(world) pass with no allocation or sorting), so
//! non-indexed stats — call counters, refs, state size — are never stale.
//! The frame falls back to a full rebuild on scope changes (the running
//! server set differs from the frame's) and on generation gaps (the
//! runtime's bounded delta history no longer reaches the frame's
//! generation). The from-scratch builder remains the correctness oracle:
//! a patched frame is index-for-index identical to a rebuilt one, which
//! the churn property tests assert.

use std::collections::BTreeMap;
use std::sync::Arc;

use plasma_actor::ids::{ActorId, ActorTypeId, FnId};
use plasma_actor::stats::{ActorWindowStats, ProfileSnapshot, SnapshotDelta};
use plasma_actor::{Runtime, ServerReport};
use plasma_cluster::ServerId;
use plasma_epl::ast::{AType, Comp, Res};

/// Sentinel in the dense id->row table for "not in this frame".
const NO_ROW: u32 = u32::MAX;

/// A touched actor's indexed state — `(server, type, cpu_share)` — at one
/// endpoint of a delta, or `None` when absent from that generation (or out
/// of the frame's scope).
type EndpointState = Option<(ServerId, ActorTypeId, f64)>;

/// Static capacity data of one server, captured at context build time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServerMeta {
    /// The server.
    pub id: ServerId,
    /// Total compute throughput (work units per second).
    pub total_speed: f64,
    /// Number of vCPU lanes.
    pub vcpus: u32,
    /// Memory capacity in bytes.
    pub mem_bytes: u64,
    /// NIC bandwidth in bits per second.
    pub net_bps: f64,
    /// Utilization fractions over the last window.
    pub cpu: f64,
    /// Memory utilization fraction.
    pub mem: f64,
    /// Network utilization fraction.
    pub net: f64,
    /// Resident actor count.
    pub actor_count: usize,
}

impl ServerMeta {
    /// Returns the utilization fraction of `res`.
    pub fn usage(&self, res: Res) -> f64 {
        match res {
            Res::Cpu => self.cpu,
            Res::Mem => self.mem,
            Res::Net => self.net,
        }
    }

    /// Decodes a wire-carried LEM report row. The report carries every
    /// f64 as raw bits, so this conversion is exact: a row published from
    /// the coordinator's snapshot comes back as the identical `ServerMeta`
    /// the shared-snapshot path computes.
    pub fn from_report(r: &ServerReport) -> ServerMeta {
        ServerMeta {
            id: ServerId(r.server),
            total_speed: f64::from_bits(r.total_speed_bits),
            vcpus: r.vcpus,
            mem_bytes: r.mem_bytes,
            net_bps: f64::from_bits(r.net_bps_bits),
            cpu: f64::from_bits(r.cpu_bits),
            mem: f64::from_bits(r.mem_bits),
            net: f64::from_bits(r.net_bits),
            actor_count: r.actor_count as usize,
        }
    }

    /// Encodes this row for the control carriage (the inverse of
    /// [`ServerMeta::from_report`]; the round trip is bit-identity).
    pub fn to_report(&self) -> ServerReport {
        ServerReport {
            server: self.id.0,
            vcpus: self.vcpus,
            actor_count: self.actor_count as u64,
            mem_bytes: self.mem_bytes,
            total_speed_bits: self.total_speed.to_bits(),
            net_bps_bits: self.net_bps.to_bits(),
            cpu_bits: self.cpu.to_bits(),
            mem_bits: self.mem.to_bits(),
            net_bits: self.net.to_bits(),
        }
    }
}

/// A resolved actor-type selector, produced by binding a plan's type symbol
/// against the runtime's registry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TypeSel {
    /// Matches every actor type.
    Any,
    /// Matches one concrete type.
    Id(ActorTypeId),
    /// The named type is unknown to the registry: matches nothing.
    Unknown,
}

impl TypeSel {
    /// Returns whether `actor` matches this selector.
    pub fn matches(self, actor: &ActorWindowStats) -> bool {
        match self {
            TypeSel::Any => true,
            TypeSel::Id(t) => actor.type_id == t,
            TypeSel::Unknown => false,
        }
    }
}

/// The retained indexed view over one profiling snapshot: server metadata,
/// the dense id->row table, candidate indexes, and the name tables rule
/// plans are bound against. Built once, advanced per decision round by
/// applying snapshot deltas, and shared by every [`EvalCtx`].
pub struct EvalFrame {
    snap: Arc<ProfileSnapshot>,
    /// Server metadata in construction-scope order.
    servers: Vec<ServerMeta>,
    server_idx: BTreeMap<ServerId, usize>,
    /// Dense actor-id-indexed row table: position of the actor's stats in
    /// `snap.actors`, or [`NO_ROW`] when the actor is absent or hosted
    /// outside the frame's scope. Actor ids are slab indices, so this stays
    /// compact and replaces the former `BTreeMap<ActorId, u32>` lookup.
    rows: Vec<u32>,
    /// Dense server-id-indexed membership mask over the frame's scope
    /// (server ids are slab indices too); the O(1) replacement for
    /// `server_idx` lookups on the per-actor hot paths.
    server_mask: Vec<bool>,
    /// Index groups, each an id-ascending list of in-scope actors.
    by_type: BTreeMap<ActorTypeId, Vec<ActorId>>,
    by_server: BTreeMap<ServerId, Vec<ActorId>>,
    by_server_type: BTreeMap<(ServerId, ActorTypeId), Vec<ActorId>>,
    /// `(cpu_share, id)`-ascending copies of the groups above (plus the
    /// whole world), for threshold pruning via `partition_point`.
    all_cpu: CpuGroup,
    by_type_cpu: BTreeMap<ActorTypeId, CpuGroup>,
    by_server_cpu: BTreeMap<ServerId, CpuGroup>,
    by_server_type_cpu: BTreeMap<(ServerId, ActorTypeId), CpuGroup>,
    type_names: BTreeMap<String, ActorTypeId>,
    fn_names: BTreeMap<String, FnId>,
}

/// A `(cpu_share, id)`-ascending candidate list with its sort keys stored
/// alongside the ids. Keeping the keys contiguous means threshold pruning
/// and the delta-patch binary searches probe a flat `f64` array instead of
/// chasing `id -> row -> stats` indirections per comparison, and makes the
/// group self-contained: its order can be queried without consulting any
/// snapshot generation.
#[derive(Clone, Debug, Default, PartialEq)]
struct CpuGroup {
    ids: Vec<ActorId>,
    keys: Vec<f64>,
}

impl CpuGroup {
    /// Lower-bound position of `(key, id)` under the `(cpu_share, id)`
    /// ascending order.
    fn lower_bound(&self, key: f64, id: ActorId) -> usize {
        let (mut lo, mut hi) = (0, self.ids.len());
        while lo < hi {
            let m = lo + (hi - lo) / 2;
            if self.keys[m]
                .total_cmp(&key)
                .then(self.ids[m].0.cmp(&id.0))
                .is_lt()
            {
                lo = m + 1;
            } else {
                hi = m;
            }
        }
        lo
    }
}

/// Resolves `id` to its stats row. Free-standing so callers can borrow the
/// index maps of the same frame mutably at the same time.
fn row_of<'s>(actors: &'s [ActorWindowStats], rows: &[u32], id: ActorId) -> &'s ActorWindowStats {
    &actors[rows[id.0 as usize] as usize]
}

impl EvalFrame {
    /// Builds the round's frame over every running server.
    pub fn new(rt: &Runtime) -> Self {
        Self::from_runtime(rt, &rt.cluster().running_ids())
    }

    /// Builds a frame over `scope` servers from the runtime's latest
    /// snapshot (non-running servers are skipped).
    pub(crate) fn from_runtime(rt: &Runtime, scope: &[ServerId]) -> Self {
        let servers = Self::server_metas(rt, scope);
        let names = rt.names();
        let mut type_names = BTreeMap::new();
        for t in names.all_types() {
            type_names.insert(names.type_name(t).to_string(), t);
        }
        let mut fn_names = BTreeMap::new();
        for f in names.all_functions() {
            fn_names.insert(names.function_name(f).to_string(), f);
        }
        Self::build(rt.snapshot_shared(), servers, type_names, fn_names)
    }

    /// Captures [`ServerMeta`] rows for the running servers of `scope`,
    /// reading utilization strictly from the runtime's current snapshot.
    ///
    /// A running server absent from the snapshot became ready after the
    /// window closed; it reports zero utilization *and* zero actors so the
    /// frame stays a pure function of one snapshot generation (mixing in
    /// live residency counts would make same-generation frames disagree
    /// across backends and invalidate delta patching).
    fn server_metas(rt: &Runtime, scope: &[ServerId]) -> Vec<ServerMeta> {
        let snap = rt.snapshot();
        let mut servers = Vec::with_capacity(scope.len());
        for &sid in scope {
            let server = rt.cluster().server(sid);
            if !server.is_running() {
                continue;
            }
            let inst = server.instance();
            let (cpu, mem, net, actor_count) = match snap.server(sid) {
                Some(s) => (s.usage.cpu(), s.usage.mem(), s.usage.net(), s.actor_count),
                None => {
                    debug_assert!(
                        snap.generation == 0 || server.started_at() + inst.boot_delay >= snap.at,
                        "running {sid:?} missing from generation {} although it \
                         was ready before the window closed",
                        snap.generation,
                    );
                    (0.0, 0.0, 0.0, 0)
                }
            };
            servers.push(ServerMeta {
                id: sid,
                total_speed: inst.total_speed(),
                vcpus: inst.vcpus,
                mem_bytes: inst.mem_bytes,
                net_bps: inst.net_bps,
                cpu,
                mem,
                net,
                actor_count,
            });
        }
        servers
    }

    /// Builds a frame from pre-assembled parts (synthetic snapshots in
    /// benches and property tests). Actors on servers absent from `servers`
    /// are excluded, as they would be for non-running servers.
    pub fn from_parts(
        snap: Arc<ProfileSnapshot>,
        servers: Vec<ServerMeta>,
        type_names: BTreeMap<String, ActorTypeId>,
        fn_names: BTreeMap<String, FnId>,
    ) -> Self {
        Self::build(snap, servers, type_names, fn_names)
    }

    fn build(
        snap: Arc<ProfileSnapshot>,
        servers: Vec<ServerMeta>,
        type_names: BTreeMap<String, ActorTypeId>,
        fn_names: BTreeMap<String, FnId>,
    ) -> Self {
        let server_idx: BTreeMap<ServerId, usize> =
            servers.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
        let mut frame = EvalFrame {
            snap,
            servers,
            server_idx,
            rows: Vec::new(),
            server_mask: Vec::new(),
            by_type: BTreeMap::new(),
            by_server: BTreeMap::new(),
            by_server_type: BTreeMap::new(),
            all_cpu: CpuGroup::default(),
            by_type_cpu: BTreeMap::new(),
            by_server_cpu: BTreeMap::new(),
            by_server_type_cpu: BTreeMap::new(),
            type_names,
            fn_names,
        };
        frame.refresh_server_mask();
        frame.refresh_rows();
        let mut in_scope: Vec<ActorId> = Vec::new();
        for a in &frame.snap.actors {
            if frame.rows.get(a.actor.0 as usize) != Some(&NO_ROW) {
                in_scope.push(a.actor);
                frame.by_type.entry(a.type_id).or_default().push(a.actor);
                frame.by_server.entry(a.server).or_default().push(a.actor);
                frame
                    .by_server_type
                    .entry((a.server, a.type_id))
                    .or_default()
                    .push(a.actor);
            }
        }
        let actors = &frame.snap.actors;
        let rows = &frame.rows;
        let sort_cpu = |group: &[ActorId]| {
            let mut sorted = group.to_vec();
            // Stable sort over an id-ordered group keeps id-order ties, so
            // the result is `(cpu_share, id)`-ascending; shares are finite
            // so `total_cmp` equals the usual order.
            sorted.sort_by(|&x, &y| {
                row_of(actors, rows, x)
                    .cpu_share
                    .total_cmp(&row_of(actors, rows, y).cpu_share)
            });
            let keys = sorted
                .iter()
                .map(|&id| row_of(actors, rows, id).cpu_share)
                .collect();
            CpuGroup { ids: sorted, keys }
        };
        frame.all_cpu = sort_cpu(&in_scope);
        frame.by_type_cpu = frame
            .by_type
            .iter()
            .map(|(&k, v)| (k, sort_cpu(v)))
            .collect();
        frame.by_server_cpu = frame
            .by_server
            .iter()
            .map(|(&k, v)| (k, sort_cpu(v)))
            .collect();
        frame.by_server_type_cpu = frame
            .by_server_type
            .iter()
            .map(|(&k, v)| (k, sort_cpu(v)))
            .collect();
        frame
    }

    /// Rebuilds the dense server-membership mask from the scope list.
    fn refresh_server_mask(&mut self) {
        let width = self
            .servers
            .iter()
            .map(|s| s.id.0 as usize + 1)
            .max()
            .unwrap_or(0);
        self.server_mask.clear();
        self.server_mask.resize(width, false);
        for s in &self.servers {
            self.server_mask[s.id.0 as usize] = true;
        }
    }

    /// Returns whether `sid` is one of the frame's scope servers.
    fn scope_has(&self, sid: ServerId) -> bool {
        self.server_mask
            .get(sid.0 as usize)
            .copied()
            .unwrap_or(false)
    }

    /// Rebuilds the dense id->row table from the current snapshot: one
    /// O(world) pass, no allocation beyond table growth, no sorting.
    fn refresh_rows(&mut self) {
        let max_id = self
            .snap
            .actors
            .last()
            .map(|a| a.actor.0 as usize + 1)
            .unwrap_or(0);
        self.rows.clear();
        self.rows.resize(max_id, NO_ROW);
        for (pos, a) in self.snap.actors.iter().enumerate() {
            if self
                .server_mask
                .get(a.server.0 as usize)
                .copied()
                .unwrap_or(false)
            {
                self.rows[a.actor.0 as usize] = pos as u32;
            }
        }
    }

    /// Advances the retained frame to the runtime's current snapshot by
    /// applying the composed generation delta. Returns `false` — leaving
    /// the frame untouched — when a full rebuild is required instead: the
    /// running server set changed, the runtime's bounded delta history no
    /// longer reaches this frame's generation, or the delta itself reports
    /// servers entering or leaving the profile.
    pub fn advance(&mut self, rt: &Runtime) -> bool {
        let scope = rt.cluster().running_ids();
        if scope.len() != self.servers.len()
            || !scope.iter().zip(&self.servers).all(|(s, m)| *s == m.id)
        {
            return false;
        }
        let Some(delta) = rt.delta_since(self.snap.generation) else {
            return false;
        };
        if delta.scope_changed() {
            return false;
        }
        // Late registrations only ever grow the name tables; refresh them
        // in place instead of rebuilding the whole frame.
        let names = rt.names();
        if names.all_types().count() != self.type_names.len() {
            self.type_names = names
                .all_types()
                .map(|t| (names.type_name(t).to_string(), t))
                .collect();
        }
        if names.all_functions().count() != self.fn_names.len() {
            self.fn_names = names
                .all_functions()
                .map(|f| (names.function_name(f).to_string(), f))
                .collect();
        }
        let servers = Self::server_metas(rt, &scope);
        self.apply(rt.snapshot_shared(), servers, &delta)
    }

    /// Applies one composed delta, advancing the frame from its current
    /// snapshot to `snap`. `servers` must cover the same server ids as the
    /// frame (scope changes require a rebuild). Returns `false` — frame
    /// untouched — when the delta does not chain the two generations or the
    /// scope differs.
    ///
    /// Cost is O(world) for the row-table refresh (pointer writes only)
    /// plus O(touched · log group + touched · group-shift) for the index
    /// splices — no re-sorting, no re-keying of untouched actors.
    pub fn apply(
        &mut self,
        snap: Arc<ProfileSnapshot>,
        servers: Vec<ServerMeta>,
        delta: &SnapshotDelta,
    ) -> bool {
        if delta.from_generation != self.snap.generation
            || delta.to_generation != snap.generation
            || delta.scope_changed()
        {
            return false;
        }
        if servers.len() != self.servers.len()
            || !servers.iter().zip(&self.servers).all(|(a, b)| a.id == b.id)
        {
            return false;
        }
        // Classify every touched actor by its endpoint states: the old
        // state read from the retained frame, the new state — plus its
        // exact row — from the incoming snapshot (scope is unchanged, so
        // the old server mask applies to both).
        let touched = delta.touched_actors();
        let mut states: Vec<(ActorId, EndpointState, EndpointState)> =
            Vec::with_capacity(touched.len());
        let mut exact_rows: Vec<(ActorId, u32)> = Vec::with_capacity(touched.len());
        for &id in &touched {
            let old = self.lookup(id).map(|a| (a.server, a.type_id, a.cpu_share));
            let row = snap
                .actors
                .binary_search_by(|a| a.actor.0.cmp(&id.0))
                .ok()
                .filter(|&i| self.scope_has(snap.actors[i].server));
            let new = row.map(|i| {
                let a = &snap.actors[i];
                (a.server, a.type_id, a.cpu_share)
            });
            exact_rows.push((id, row.map_or(NO_ROW, |i| i as u32)));
            states.push((id, old, new));
        }
        // Endpoint membership diff over the snapshot's actor vec (scope
        // notwithstanding: out-of-scope actors still occupy vec positions
        // and therefore shift everyone's rows). Single deltas list exactly
        // the endpoint changes; a *merged* delta may list one id as both
        // added and removed, so overlaps resolve by presence in the two
        // endpoint snapshots.
        let mut vec_adds: Vec<u64> = Vec::new();
        let mut vec_rms: Vec<u64> = Vec::new();
        {
            let (a, r) = (&delta.added, &delta.removed);
            let (mut i, mut j) = (0, 0);
            while i < a.len() || j < r.len() {
                match (a.get(i), r.get(j)) {
                    (Some(&x), Some(&y)) if x == y => {
                        let present = |s: &ProfileSnapshot| {
                            s.actors.binary_search_by(|w| w.actor.0.cmp(&x.0)).is_ok()
                        };
                        match (present(&self.snap), present(&snap)) {
                            (false, true) => vec_adds.push(x.0),
                            (true, false) => vec_rms.push(x.0),
                            _ => {}
                        }
                        i += 1;
                        j += 1;
                    }
                    (Some(&x), Some(&y)) if x < y => {
                        vec_adds.push(x.0);
                        i += 1;
                    }
                    (Some(_), Some(&y)) => {
                        vec_rms.push(y.0);
                        j += 1;
                    }
                    (Some(&x), None) => {
                        vec_adds.push(x.0);
                        i += 1;
                    }
                    (None, Some(&y)) => {
                        vec_rms.push(y.0);
                        j += 1;
                    }
                    (None, None) => unreachable!(),
                }
            }
        }
        // Batch the removals per group, keyed by OLD membership. Batches
        // accumulate in flat `(group key, entry)` vectors sorted and walked
        // as runs — no per-group map or vector allocation. The cpu batches
        // carry their endpoint `cpu_share`, so position lookups never touch
        // a snapshot row.
        let mut ty_rm: Vec<(ActorTypeId, ActorId)> = Vec::new();
        let mut srv_rm: Vec<(ServerId, ActorId)> = Vec::new();
        let mut st_rm: Vec<((ServerId, ActorTypeId), ActorId)> = Vec::new();
        let mut all_rm: Vec<(f64, ActorId)> = Vec::new();
        let mut cty_rm: Vec<(ActorTypeId, (f64, ActorId))> = Vec::new();
        let mut csrv_rm: Vec<(ServerId, (f64, ActorId))> = Vec::new();
        let mut cst_rm: Vec<((ServerId, ActorTypeId), (f64, ActorId))> = Vec::new();
        for &(id, old, new) in &states {
            let Some((srv, ty, cpu)) = old else { continue };
            let regroup = match new {
                None => true,
                Some((nsrv, nty, _)) => nsrv != srv || nty != ty,
            };
            let recpu = regroup || new.is_some_and(|(_, _, ncpu)| ncpu.total_cmp(&cpu).is_ne());
            if regroup {
                ty_rm.push((ty, id));
                srv_rm.push((srv, id));
                st_rm.push(((srv, ty), id));
            }
            if recpu {
                all_rm.push((cpu, id));
                cty_rm.push((ty, (cpu, id)));
                csrv_rm.push((srv, (cpu, id)));
                cst_rm.push(((srv, ty), (cpu, id)));
            }
        }
        // Group the batches: a stable key sort keeps each run id-ascending
        // (removal runs need no in-run order beyond that — their positions
        // re-sort anyway).
        ty_rm.sort_unstable();
        srv_rm.sort_unstable();
        st_rm.sort_unstable();
        cty_rm.sort_by_key(|e| e.0);
        csrv_rm.sort_by_key(|e| e.0);
        cst_rm.sort_by_key(|e| e.0);
        // Phase 1 — splice the batches out. Each removed id's position is
        // found by binary search under the group's own order (the cpu
        // twins store their keys inline, so no snapshot row is consulted),
        // then the survivors compact with block memmoves: O(touched · log
        // group) probe work plus one linear copy pass per *affected* group.
        // Emptied groups disappear (insertions below re-create theirs,
        // keeping map keys exactly the non-empty groups a rebuild would
        // produce).
        let mut pos: Vec<usize> = Vec::new();
        Self::remove_ids_runs(&mut self.by_type, &ty_rm, &mut pos);
        Self::remove_ids_runs(&mut self.by_server, &srv_rm, &mut pos);
        Self::remove_ids_runs(&mut self.by_server_type, &st_rm, &mut pos);
        Self::splice_remove_cpu(&mut self.all_cpu, &all_rm, &mut pos);
        Self::remove_cpu_runs(&mut self.by_type_cpu, &cty_rm, &mut pos);
        Self::remove_cpu_runs(&mut self.by_server_cpu, &csrv_rm, &mut pos);
        Self::remove_cpu_runs(&mut self.by_server_type_cpu, &cst_rm, &mut pos);
        // Swap in the new generation: row data for every untouched actor
        // now resolves to its current stats. The server mask is untouched —
        // the scope ids were verified identical above — and the row table
        // is patched from the membership diff instead of re-streamed from
        // the (much larger) stats rows.
        self.snap = snap;
        self.servers = servers;
        self.patch_rows(&vec_adds, &vec_rms, &exact_rows);
        // Batch the insertions per group, keyed by NEW membership, in the
        // same flat sorted-run layout.
        let mut ty_ins: Vec<(ActorTypeId, ActorId)> = Vec::new();
        let mut srv_ins: Vec<(ServerId, ActorId)> = Vec::new();
        let mut st_ins: Vec<((ServerId, ActorTypeId), ActorId)> = Vec::new();
        let mut all_ins: Vec<(f64, ActorId)> = Vec::new();
        let mut cty_ins: Vec<(ActorTypeId, (f64, ActorId))> = Vec::new();
        let mut csrv_ins: Vec<(ServerId, (f64, ActorId))> = Vec::new();
        let mut cst_ins: Vec<((ServerId, ActorTypeId), (f64, ActorId))> = Vec::new();
        for &(id, old, new) in &states {
            let Some((srv, ty, cpu)) = new else { continue };
            let regroup = match old {
                None => true,
                Some((osrv, oty, _)) => osrv != srv || oty != ty,
            };
            let recpu = regroup || old.is_some_and(|(_, _, ocpu)| ocpu.total_cmp(&cpu).is_ne());
            if regroup {
                ty_ins.push((ty, id));
                srv_ins.push((srv, id));
                st_ins.push(((srv, ty), id));
            }
            if recpu {
                all_ins.push((cpu, id));
                cty_ins.push((ty, (cpu, id)));
                csrv_ins.push((srv, (cpu, id)));
                cst_ins.push(((srv, ty), (cpu, id)));
            }
        }
        // Phase 2 — splice the batches in at the new keys, same
        // binary-search-then-block-move strategy as the removals. Insertion
        // runs must ascend under their group's order, so the cpu batches
        // sort by `(group key, cpu, id)`. Every element still in a cpu twin
        // has a generation-stable sort key (its `cpu_share` is unchanged
        // between the two snapshots, or the delta would have listed it), so
        // the retained inline keys stay consistent across the swap.
        ty_ins.sort_unstable();
        srv_ins.sort_unstable();
        st_ins.sort_unstable();
        let cpu_entry =
            |a: &(f64, ActorId), b: &(f64, ActorId)| a.0.total_cmp(&b.0).then(a.1 .0.cmp(&b.1 .0));
        cty_ins.sort_by(|a, b| a.0.cmp(&b.0).then(cpu_entry(&a.1, &b.1)));
        csrv_ins.sort_by(|a, b| a.0.cmp(&b.0).then(cpu_entry(&a.1, &b.1)));
        cst_ins.sort_by(|a, b| a.0.cmp(&b.0).then(cpu_entry(&a.1, &b.1)));
        all_ins.sort_by(cpu_entry);
        Self::insert_ids_runs(&mut self.by_type, &ty_ins, &mut pos);
        Self::insert_ids_runs(&mut self.by_server, &srv_ins, &mut pos);
        Self::insert_ids_runs(&mut self.by_server_type, &st_ins, &mut pos);
        Self::splice_insert_cpu(&mut self.all_cpu, &all_ins, &mut pos);
        Self::insert_cpu_runs(&mut self.by_type_cpu, &cty_ins, &mut pos);
        Self::insert_cpu_runs(&mut self.by_server_cpu, &csrv_ins, &mut pos);
        Self::insert_cpu_runs(&mut self.by_server_type_cpu, &cst_ins, &mut pos);
        true
    }

    /// Compacts `v` by removing the elements at `positions` (strictly
    /// ascending) with one forward block-memmove pass.
    fn splice_out<T: Copy>(v: &mut Vec<T>, positions: &[usize]) {
        let mut w = positions[0];
        for (k, &p) in positions.iter().enumerate() {
            let next = positions.get(k + 1).copied().unwrap_or(v.len());
            v.copy_within(p + 1..next, w);
            w += next - p - 1;
        }
        v.truncate(w);
    }

    /// Grows `v` by inserting `item(j)` at lower-bound position
    /// `positions[j]` (non-decreasing, relative to the pre-insert vector)
    /// with one backward block-memmove pass: each retained element shifts
    /// right at most once and the prefix below the first position never
    /// moves.
    fn splice_in<T: Copy>(v: &mut Vec<T>, item: impl Fn(usize) -> T, positions: &[usize], fill: T) {
        debug_assert!(positions.windows(2).all(|w| w[0] <= w[1]));
        let old_len = v.len();
        v.resize(old_len + positions.len(), fill);
        let mut src_end = old_len;
        for j in (0..positions.len()).rev() {
            let p = positions[j];
            v.copy_within(p..src_end, p + j + 1);
            v[p + j] = item(j);
            src_end = p;
        }
    }

    /// Removes `(cpu, id)` entries (all present under their carried old
    /// keys, in any order) from a cpu twin, keeping `ids` and `keys` in
    /// lockstep. `pos` is caller-provided scratch.
    fn splice_remove_cpu(group: &mut CpuGroup, rm: &[(f64, ActorId)], pos: &mut Vec<usize>) {
        if rm.is_empty() {
            return;
        }
        pos.clear();
        for &(key, id) in rm {
            let p = group.lower_bound(key, id);
            debug_assert!(
                group.ids.get(p) == Some(&id),
                "a batched removal named an id absent from its cpu twin"
            );
            pos.push(p);
        }
        // `rm` ascends by id, not by the twin's `(cpu, id)` order; the
        // block-move pass only needs the positions.
        pos.sort_unstable();
        Self::splice_out(&mut group.ids, pos);
        Self::splice_out(&mut group.keys, pos);
    }

    /// Inserts `(cpu, id)` entries (already `(cpu, id)`-ascending, none
    /// present) into a cpu twin, keeping `ids` and `keys` in lockstep.
    fn splice_insert_cpu(group: &mut CpuGroup, ins: &[(f64, ActorId)], pos: &mut Vec<usize>) {
        if ins.is_empty() {
            return;
        }
        pos.clear();
        for &(key, id) in ins {
            pos.push(group.lower_bound(key, id));
        }
        Self::splice_in(&mut group.ids, |j| ins[j].1, pos, ActorId(u64::MAX));
        Self::splice_in(&mut group.keys, |j| ins[j].0, pos, f64::NAN);
    }

    /// Walks `list` (sorted so equal group keys are adjacent) as runs,
    /// invoking `f` once per `(key, run)`.
    fn runs<K: PartialEq + Copy, V>(list: &[(K, V)], mut f: impl FnMut(K, &[(K, V)])) {
        let mut i = 0;
        while i < list.len() {
            let k = list[i].0;
            let mut j = i + 1;
            while j < list.len() && list[j].0 == k {
                j += 1;
            }
            f(k, &list[i..j]);
            i = j;
        }
    }

    /// Splices each run of `rm` (ids ascending per run, all present) out of
    /// its id-ordered group; emptied groups leave the map.
    fn remove_ids_runs<K: Ord + Copy>(
        map: &mut BTreeMap<K, Vec<ActorId>>,
        rm: &[(K, ActorId)],
        pos: &mut Vec<usize>,
    ) {
        Self::runs(rm, |k, run| {
            let Some(group) = map.get_mut(&k) else {
                debug_assert!(false, "removal from a group that does not exist");
                return;
            };
            pos.clear();
            for &(_, id) in run {
                let p = group.partition_point(|&x| x.0 < id.0);
                debug_assert!(
                    group.get(p) == Some(&id),
                    "a batched removal named an id absent from its group"
                );
                pos.push(p);
            }
            Self::splice_out(group, pos);
            if group.is_empty() {
                map.remove(&k);
            }
        });
    }

    /// Splices each run of `ins` (ids ascending per run, none present) into
    /// its id-ordered group, creating absent groups.
    fn insert_ids_runs<K: Ord + Copy>(
        map: &mut BTreeMap<K, Vec<ActorId>>,
        ins: &[(K, ActorId)],
        pos: &mut Vec<usize>,
    ) {
        Self::runs(ins, |k, run| {
            let group = map.entry(k).or_default();
            pos.clear();
            for &(_, id) in run {
                pos.push(group.partition_point(|&x| x.0 < id.0));
            }
            Self::splice_in(group, |j| run[j].1, pos, ActorId(u64::MAX));
        });
    }

    /// Splices each run of `rm` out of its cpu twin; emptied twins leave
    /// the map.
    fn remove_cpu_runs<K: Ord + Copy>(
        map: &mut BTreeMap<K, CpuGroup>,
        rm: &[(K, (f64, ActorId))],
        pos: &mut Vec<usize>,
    ) {
        Self::runs(rm, |k, run| {
            let Some(group) = map.get_mut(&k) else {
                debug_assert!(false, "removal from a cpu twin that does not exist");
                return;
            };
            pos.clear();
            for &(_, (key, id)) in run {
                let p = group.lower_bound(key, id);
                debug_assert!(
                    group.ids.get(p) == Some(&id),
                    "a batched removal named an id absent from its cpu twin"
                );
                pos.push(p);
            }
            pos.sort_unstable();
            Self::splice_out(&mut group.ids, pos);
            Self::splice_out(&mut group.keys, pos);
            if group.ids.is_empty() {
                map.remove(&k);
            }
        });
    }

    /// Splices each run of `ins` (already `(cpu, id)`-ascending per run)
    /// into its cpu twin, creating absent twins.
    fn insert_cpu_runs<K: Ord + Copy>(
        map: &mut BTreeMap<K, CpuGroup>,
        ins: &[(K, (f64, ActorId))],
        pos: &mut Vec<usize>,
    ) {
        Self::runs(ins, |k, run| {
            let group = map.entry(k).or_default();
            pos.clear();
            for &(_, (key, id)) in run {
                pos.push(group.lower_bound(key, id));
            }
            Self::splice_in(&mut group.ids, |j| run[j].1 .1, pos, ActorId(u64::MAX));
            Self::splice_in(&mut group.keys, |j| run[j].1 .0, pos, f64::NAN);
        });
    }

    /// Patches the dense id->row table across a snapshot swap. Untouched
    /// actors' rows shift by the running count of vec insertions minus
    /// removals below their id (`vec_adds` / `vec_rms`, id-ascending);
    /// touched actors then get their `exact` rows written directly. One
    /// O(world) pass over the packed `u32` table — the stats rows
    /// themselves are never streamed.
    fn patch_rows(&mut self, vec_adds: &[u64], vec_rms: &[u64], exact: &[(ActorId, u32)]) {
        let new_width = self
            .snap
            .actors
            .last()
            .map(|a| a.actor.0 as usize + 1)
            .unwrap_or(0);
        if new_width > self.rows.len() {
            self.rows.resize(new_width, NO_ROW);
        }
        let mut events: Vec<(u64, i64)> = vec_adds
            .iter()
            .map(|&id| (id, 1i64))
            .chain(vec_rms.iter().map(|&id| (id, -1i64)))
            .collect();
        events.sort_unstable();
        let mut shift = 0i64;
        for (k, &(eid, d)) in events.iter().enumerate() {
            shift += d;
            // A membership change at `eid` shifts every row for ids above
            // it, up to the next event (ranges between same-id events are
            // empty, so duplicate ids compose correctly).
            let lo = (eid as usize + 1).min(self.rows.len());
            let hi = events
                .get(k + 1)
                .map(|&(n, _)| n as usize + 1)
                .unwrap_or(self.rows.len())
                .min(self.rows.len());
            if shift != 0 {
                for r in &mut self.rows[lo..hi] {
                    if *r != NO_ROW {
                        // Touched rows may transiently wrap here; their
                        // exact values land below.
                        *r = (*r as i64).wrapping_add(shift) as u32;
                    }
                }
            }
        }
        for &(id, row) in exact {
            // A touched id can sit beyond the table when a merged delta
            // names an actor absent from both endpoints; its implicit row
            // is already NO_ROW.
            if let Some(r) = self.rows.get_mut(id.0 as usize) {
                *r = row;
            } else {
                debug_assert_eq!(row, NO_ROW);
            }
        }
    }

    /// Returns the snapshot generation this frame was built from.
    pub fn generation(&self) -> u64 {
        self.snap.generation
    }

    /// Returns the stats row of `id`, if the actor is in the frame.
    pub(crate) fn lookup(&self, id: ActorId) -> Option<&ActorWindowStats> {
        match self.rows.get(id.0 as usize) {
            Some(&pos) if pos != NO_ROW => Some(&self.snap.actors[pos as usize]),
            _ => None,
        }
    }

    /// Returns the metadata of every frame server.
    pub fn servers(&self) -> &[ServerMeta] {
        &self.servers
    }

    /// Returns the metadata of one frame server.
    pub fn server(&self, id: ServerId) -> Option<&ServerMeta> {
        self.server_idx.get(&id).map(|&i| &self.servers[i])
    }

    /// Resolves an EPL type name against the application's registry.
    pub fn type_id(&self, name: &str) -> Option<ActorTypeId> {
        self.type_names.get(name).copied()
    }

    /// Resolves a function name against the application's registry.
    pub fn fn_id(&self, name: &str) -> Option<FnId> {
        self.fn_names.get(name).copied()
    }

    fn group(&self, sel: TypeSel, on_server: Option<ServerId>, cpu_sorted: bool) -> &[ActorId] {
        if cpu_sorted {
            return self.cpu_group(sel, on_server).map_or(&[], |g| &g.ids);
        }
        let found = match (sel, on_server) {
            (TypeSel::Unknown, _) => None,
            (TypeSel::Any, None) => {
                // The unsorted full list is `EvalCtx::actors()`; only the
                // sorted variant is served from here.
                debug_assert!(cpu_sorted);
                Some(&self.all_cpu.ids)
            }
            (TypeSel::Any, Some(s)) => self.by_server.get(&s),
            (TypeSel::Id(t), None) => self.by_type.get(&t),
            (TypeSel::Id(t), Some(s)) => self.by_server_type.get(&(s, t)),
        };
        found.map_or(&[], |v| v)
    }

    /// The `(cpu_share, id)`-ascending twin for a selector, keys included.
    fn cpu_group(&self, sel: TypeSel, on_server: Option<ServerId>) -> Option<&CpuGroup> {
        match (sel, on_server) {
            (TypeSel::Unknown, _) => None,
            (TypeSel::Any, None) => Some(&self.all_cpu),
            (TypeSel::Any, Some(s)) => self.by_server_cpu.get(&s),
            (TypeSel::Id(t), None) => self.by_type_cpu.get(&t),
            (TypeSel::Id(t), Some(s)) => self.by_server_type_cpu.get(&(s, t)),
        }
    }

    /// Asserts this frame's indexes are identical — contents *and* order —
    /// to `oracle`'s (a frame freshly rebuilt from the same snapshot and
    /// scope). Used by the churn property tests and the maintenance bench.
    #[cfg(any(test, feature = "naive-oracle"))]
    pub fn assert_same_indexes(&self, oracle: &EvalFrame) {
        assert_eq!(self.snap.generation, oracle.snap.generation, "generation");
        assert_eq!(self.servers, oracle.servers, "server metadata");
        assert_eq!(self.server_idx, oracle.server_idx, "server index");
        // Row tables may differ in trailing NO_ROW padding (the retained
        // table never shrinks); compare them semantically.
        let width = self.rows.len().max(oracle.rows.len());
        for i in 0..width {
            assert_eq!(
                self.rows.get(i).copied().unwrap_or(NO_ROW),
                oracle.rows.get(i).copied().unwrap_or(NO_ROW),
                "row table entry for actor {i}"
            );
        }
        assert_eq!(self.by_type, oracle.by_type, "by_type");
        assert_eq!(self.by_server, oracle.by_server, "by_server");
        assert_eq!(self.by_server_type, oracle.by_server_type, "by_server_type");
        assert_eq!(self.all_cpu, oracle.all_cpu, "all_cpu");
        assert_eq!(self.by_type_cpu, oracle.by_type_cpu, "by_type_cpu");
        assert_eq!(self.by_server_cpu, oracle.by_server_cpu, "by_server_cpu");
        assert_eq!(
            self.by_server_type_cpu, oracle.by_server_type_cpu,
            "by_server_type_cpu"
        );
    }
}

/// A scoped, immutable view over one profiling snapshot.
///
/// A context narrows a frame to the servers one consumer manages; all
/// candidate enumeration stays index-driven on the shared frame, filtered
/// by scope where the scope is partial.
pub struct EvalCtx<'a> {
    frame: &'a EvalFrame,
    /// Servers in scope, in scope order.
    pub servers: Vec<ServerMeta>,
    /// `None` when the scope covers the whole frame.
    scope: Option<BTreeMap<ServerId, ()>>,
    /// In-scope actor rows, in id order.
    actors: Vec<&'a ActorWindowStats>,
}

impl<'a> EvalCtx<'a> {
    /// Borrows the round's shared frame, narrowed to `scope` servers.
    /// Servers absent from the frame (not running at build time) are
    /// skipped.
    pub fn scoped(frame: &'a EvalFrame, scope: &[ServerId]) -> Self {
        let servers: Vec<ServerMeta> = scope
            .iter()
            .filter_map(|&sid| frame.server(sid))
            .copied()
            .collect();
        let full = servers.len() == frame.servers.len();
        let scope_set: Option<BTreeMap<ServerId, ()>> = if full {
            None
        } else {
            Some(servers.iter().map(|s| (s.id, ())).collect())
        };
        let actors: Vec<&'a ActorWindowStats> = frame
            .snap
            .actors
            .iter()
            .filter(|a| match &scope_set {
                Some(set) => set.contains_key(&a.server),
                None => frame.scope_has(a.server),
            })
            .collect();
        EvalCtx {
            frame,
            servers,
            scope: scope_set,
            actors,
        }
    }

    /// Builds a context from wire-carried LEM report rows — the QREPLY
    /// candidates of one GEM query, already merged into scope order.
    ///
    /// Each row decodes bit-for-bit into the `ServerMeta` the
    /// shared-snapshot path computes, so a context built this way is
    /// interchangeable with [`EvalCtx::scoped`] over the same scope: same
    /// servers in the same order, same in-scope actor rows. The EMR
    /// debug-asserts that equivalence every round; it is what keeps
    /// decision digests byte-identical with the control plane on the
    /// wire.
    pub fn for_reports(frame: &'a EvalFrame, reports: &[ServerReport]) -> Self {
        let servers: Vec<ServerMeta> = reports.iter().map(ServerMeta::from_report).collect();
        let full = servers.len() == frame.servers.len();
        let scope_set: Option<BTreeMap<ServerId, ()>> = if full {
            None
        } else {
            Some(servers.iter().map(|s| (s.id, ())).collect())
        };
        let actors: Vec<&'a ActorWindowStats> = frame
            .snap
            .actors
            .iter()
            .filter(|a| match &scope_set {
                Some(set) => set.contains_key(&a.server),
                None => frame.scope_has(a.server),
            })
            .collect();
        EvalCtx {
            frame,
            servers,
            scope: scope_set,
            actors,
        }
    }

    pub(crate) fn frame(&self) -> &'a EvalFrame {
        self.frame
    }

    fn in_scope(&self, sid: ServerId) -> bool {
        match &self.scope {
            Some(set) => set.contains_key(&sid),
            None => self.frame.scope_has(sid),
        }
    }

    /// Returns the window length in seconds.
    pub fn window_secs(&self) -> f64 {
        self.frame.snap.window.as_secs_f64().max(1e-9)
    }

    /// Returns every in-scope actor.
    pub fn actors(&self) -> &[&'a ActorWindowStats] {
        &self.actors
    }

    /// Returns the stats of one actor, if in scope.
    pub fn actor(&self, id: ActorId) -> Option<&'a ActorWindowStats> {
        let a = self.frame.lookup(id)?;
        if self.in_scope(a.server) {
            Some(a)
        } else {
            None
        }
    }

    /// Returns the server metadata for `id`, if in scope.
    pub fn server(&self, id: ServerId) -> Option<&ServerMeta> {
        self.servers.iter().find(|s| s.id == id)
    }

    /// Resolves an EPL type name against the application's registry.
    pub fn type_id(&self, name: &str) -> Option<ActorTypeId> {
        self.frame.type_id(name)
    }

    /// Resolves a function name against the application's registry.
    pub fn fn_id(&self, name: &str) -> Option<FnId> {
        self.frame.fn_id(name)
    }

    /// Returns whether an actor's type matches an EPL type pattern.
    pub fn matches_type(&self, actor: &ActorWindowStats, pattern: &AType) -> bool {
        self.type_sel(pattern).matches(actor)
    }

    /// Binds a type pattern to a selector over this context's registry.
    pub fn type_sel(&self, pattern: &AType) -> TypeSel {
        match pattern {
            AType::Any => TypeSel::Any,
            AType::Named(name) => match self.type_id(name) {
                Some(t) => TypeSel::Id(t),
                None => TypeSel::Unknown,
            },
        }
    }

    /// Returns the in-scope actors matching a type pattern, optionally
    /// restricted to one server, in id order.
    pub fn actors_matching(
        &self,
        pattern: &AType,
        on_server: Option<ServerId>,
    ) -> Vec<&'a ActorWindowStats> {
        self.select(self.type_sel(pattern), on_server)
    }

    /// Index-driven candidate enumeration: in-scope actors matching `sel`,
    /// optionally on one server, in id order.
    pub(crate) fn select(
        &self,
        sel: TypeSel,
        on_server: Option<ServerId>,
    ) -> Vec<&'a ActorWindowStats> {
        let frame = self.frame;
        match (sel, on_server) {
            (TypeSel::Unknown, _) => Vec::new(),
            (_, Some(s)) if !self.in_scope(s) => Vec::new(),
            (TypeSel::Any, None) => self.actors.clone(),
            (sel, on_server @ Some(_)) => frame
                .group(sel, on_server, false)
                .iter()
                .filter_map(|&id| frame.lookup(id))
                .collect(),
            (sel @ TypeSel::Id(_), None) => {
                let group = frame.group(sel, None, false);
                match &self.scope {
                    None => group.iter().filter_map(|&id| frame.lookup(id)).collect(),
                    Some(set) => group
                        .iter()
                        .filter_map(|&id| frame.lookup(id))
                        .filter(|a| set.contains_key(&a.server))
                        .collect(),
                }
            }
        }
    }

    /// Threshold-pruned enumeration for `actor.cpu.perc comp val`
    /// conditions: candidates whose `cpu_share * 100` satisfies `comp`
    /// against `val`, selected by `partition_point` over the frame's
    /// cpu-sorted index. The comparison applied is bit-identical to the
    /// per-candidate check, so the result set matches a full scan exactly;
    /// output order is unspecified (callers dedupe).
    pub(crate) fn select_cpu_threshold(
        &self,
        sel: TypeSel,
        on_server: Option<ServerId>,
        comp: Comp,
        val: f64,
    ) -> Vec<&'a ActorWindowStats> {
        if let Some(s) = on_server {
            if !self.in_scope(s) {
                return Vec::new();
            }
        }
        let frame = self.frame;
        let Some(group) = frame.cpu_group(sel, on_server) else {
            return Vec::new();
        };
        // The twin's inline keys are maintained bit-identical to each
        // actor's `cpu_share`, so thresholding on them matches the
        // per-candidate check exactly.
        let pass = |&key: &f64| comp.eval(key * 100.0, val);
        // `cpu_share` ascends along the group and every `Comp` is a
        // half-line, so passing candidates form a prefix (Lt/Le) or a
        // suffix (Gt/Ge).
        let hits = match comp {
            Comp::Gt | Comp::Ge => &group.ids[group.keys.partition_point(|k| !pass(k))..],
            Comp::Lt | Comp::Le => &group.ids[..group.keys.partition_point(pass)],
        };
        let needs_scope_filter = on_server.is_none() && self.scope.is_some();
        hits.iter()
            .filter_map(|&id| frame.lookup(id))
            .filter(|a| !needs_scope_filter || self.in_scope(a.server))
            .collect()
    }

    /// Returns an actor's utilization fraction of its server for `res`.
    pub fn actor_usage(&self, actor: &ActorWindowStats, res: Res) -> f64 {
        match res {
            Res::Cpu => actor.cpu_share,
            Res::Mem => {
                let cap = self
                    .server(actor.server)
                    .map(|s| s.mem_bytes)
                    .unwrap_or(u64::MAX);
                if cap == 0 {
                    0.0
                } else {
                    actor.state_size as f64 / cap as f64
                }
            }
            Res::Net => {
                let bps = self
                    .server(actor.server)
                    .map(|s| s.net_bps)
                    .unwrap_or(f64::INFINITY);
                let recv: u64 = actor.counters.calls.values().map(|s| s.bytes).sum();
                let bits = (actor.counters.bytes_sent + recv) as f64 * 8.0;
                if bps <= 0.0 {
                    0.0
                } else {
                    bits / (bps * self.window_secs())
                }
            }
        }
    }
}
