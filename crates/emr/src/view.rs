//! The evaluation context: a scoped view over one profiling snapshot.
//!
//! LEMs evaluate rules anchored to their own server; GEMs evaluate over all
//! servers they manage. Both use an [`EvalCtx`] built from the runtime's
//! latest [`ProfileSnapshot`] plus the static capacity data (speed, memory,
//! NIC) needed to turn raw counters into the percentages the EPL compares.

use std::collections::BTreeMap;

use plasma_actor::ids::{ActorId, ActorTypeId, FnId};
use plasma_actor::stats::{ActorWindowStats, ProfileSnapshot};
use plasma_actor::Runtime;
use plasma_cluster::ServerId;
use plasma_epl::ast::{AType, Res};

/// Static capacity data of one server, captured at context build time.
#[derive(Clone, Copy, Debug)]
pub struct ServerMeta {
    /// The server.
    pub id: ServerId,
    /// Total compute throughput (work units per second).
    pub total_speed: f64,
    /// Number of vCPU lanes.
    pub vcpus: u32,
    /// Memory capacity in bytes.
    pub mem_bytes: u64,
    /// NIC bandwidth in bits per second.
    pub net_bps: f64,
    /// Utilization fractions over the last window.
    pub cpu: f64,
    /// Memory utilization fraction.
    pub mem: f64,
    /// Network utilization fraction.
    pub net: f64,
    /// Resident actor count.
    pub actor_count: usize,
}

impl ServerMeta {
    /// Returns the utilization fraction of `res`.
    pub fn usage(&self, res: Res) -> f64 {
        match res {
            Res::Cpu => self.cpu,
            Res::Mem => self.mem,
            Res::Net => self.net,
        }
    }
}

/// A scoped, immutable view over one profiling snapshot.
pub struct EvalCtx<'a> {
    snap: &'a ProfileSnapshot,
    /// Servers in scope, in id order.
    pub servers: Vec<ServerMeta>,
    /// Actor stats in scope (hosted on in-scope servers), in id order.
    actors: Vec<&'a ActorWindowStats>,
    by_id: BTreeMap<ActorId, usize>,
    type_names: BTreeMap<String, ActorTypeId>,
    fn_names: BTreeMap<String, FnId>,
}

impl<'a> EvalCtx<'a> {
    /// Builds a context over `scope` servers from the runtime's latest
    /// snapshot.
    pub fn new(rt: &'a Runtime, scope: &[ServerId]) -> Self {
        let snap = rt.snapshot();
        let mut servers = Vec::with_capacity(scope.len());
        for &sid in scope {
            let server = rt.cluster().server(sid);
            if !server.is_running() {
                continue;
            }
            let inst = server.instance();
            let (cpu, mem, net, actor_count) = match snap.server(sid) {
                Some(s) => (s.usage.cpu(), s.usage.mem(), s.usage.net(), s.actor_count),
                None => (0.0, 0.0, 0.0, rt.actor_count_on(sid)),
            };
            servers.push(ServerMeta {
                id: sid,
                total_speed: inst.total_speed(),
                vcpus: inst.vcpus,
                mem_bytes: inst.mem_bytes,
                net_bps: inst.net_bps,
                cpu,
                mem,
                net,
                actor_count,
            });
        }
        let in_scope = |sid: ServerId| servers.iter().any(|s| s.id == sid);
        let mut actors = Vec::new();
        let mut by_id = BTreeMap::new();
        for a in &snap.actors {
            if in_scope(a.server) {
                by_id.insert(a.actor, actors.len());
                actors.push(a);
            }
        }
        let mut type_names = BTreeMap::new();
        let names = rt.names();
        for t in names.all_types() {
            type_names.insert(names.type_name(t).to_string(), t);
        }
        let mut fn_names = BTreeMap::new();
        for a in &snap.actors {
            for key in a.counters.calls.keys() {
                let name = names.function_name(key.fname).to_string();
                fn_names.insert(name, key.fname);
            }
        }
        EvalCtx {
            snap,
            servers,
            actors,
            by_id,
            type_names,
            fn_names,
        }
    }

    /// Returns the window length in seconds.
    pub fn window_secs(&self) -> f64 {
        self.snap.window.as_secs_f64().max(1e-9)
    }

    /// Returns every in-scope actor.
    pub fn actors(&self) -> &[&'a ActorWindowStats] {
        &self.actors
    }

    /// Returns the stats of one actor, if in scope.
    pub fn actor(&self, id: ActorId) -> Option<&'a ActorWindowStats> {
        self.by_id.get(&id).map(|&i| self.actors[i])
    }

    /// Returns the server metadata for `id`, if in scope.
    pub fn server(&self, id: ServerId) -> Option<&ServerMeta> {
        self.servers.iter().find(|s| s.id == id)
    }

    /// Resolves an EPL type name against the application's registry.
    pub fn type_id(&self, name: &str) -> Option<ActorTypeId> {
        self.type_names.get(name).copied()
    }

    /// Resolves a function name seen in profiling data.
    pub fn fn_id(&self, name: &str) -> Option<FnId> {
        self.fn_names.get(name).copied()
    }

    /// Returns whether an actor's type matches an EPL type pattern.
    pub fn matches_type(&self, actor: &ActorWindowStats, pattern: &AType) -> bool {
        match pattern {
            AType::Any => true,
            AType::Named(name) => self.type_id(name) == Some(actor.type_id),
        }
    }

    /// Returns the in-scope actors matching a type pattern, optionally
    /// restricted to one server.
    pub fn actors_matching(
        &self,
        pattern: &AType,
        on_server: Option<ServerId>,
    ) -> Vec<&'a ActorWindowStats> {
        self.actors
            .iter()
            .filter(|a| self.matches_type(a, pattern))
            .filter(|a| on_server.is_none_or(|s| a.server == s))
            .copied()
            .collect()
    }

    /// Returns an actor's utilization fraction of its server for `res`.
    pub fn actor_usage(&self, actor: &ActorWindowStats, res: Res) -> f64 {
        match res {
            Res::Cpu => actor.cpu_share,
            Res::Mem => {
                let cap = self
                    .server(actor.server)
                    .map(|s| s.mem_bytes)
                    .unwrap_or(u64::MAX);
                if cap == 0 {
                    0.0
                } else {
                    actor.state_size as f64 / cap as f64
                }
            }
            Res::Net => {
                let bps = self
                    .server(actor.server)
                    .map(|s| s.net_bps)
                    .unwrap_or(f64::INFINITY);
                let recv: u64 = actor.counters.calls.values().map(|s| s.bytes).sum();
                let bits = (actor.counters.bytes_sent + recv) as f64 * 8.0;
                if bps <= 0.0 {
                    0.0
                } else {
                    bits / (bps * self.window_secs())
                }
            }
        }
    }
}
