//! Local Elasticity Manager planning (Alg. 1): interaction rules.
//!
//! LEMs own the `[r-i]` behaviors: `pin` marks actors immovable,
//! `colocate` pulls interacting actors onto one server, `separate` pushes
//! coexisting heavy actors apart. Planning is pure: it reads an [`EvalCtx`]
//! and produces [`Action`]s; the EMR applies them after conflict resolution
//! and admission control.

use std::collections::{BTreeMap, BTreeSet};

use plasma_actor::ids::ActorId;
use plasma_cluster::ServerId;
use plasma_epl::analyze::CompiledRule;
use plasma_epl::ast::{ActorRef, Behavior};

use crate::action::{Action, ActionKind, RuleStat};
use crate::eval::{expand_behavior_ref, solve_bound, BoundPolicy, Env};
use crate::view::EvalCtx;

/// The outcome of one LEM planning pass.
#[derive(Debug, Default)]
pub struct LemPlan {
    /// Proposed colocate/separate migrations.
    pub actions: Vec<Action>,
    /// Actors to pin.
    pub pins: Vec<ActorId>,
    /// Colocate/separate pairs skipped because both sides were ambiguous.
    pub ambiguous_pairs: u64,
    /// Per-rule evaluation tallies, in evaluation order (for tracing).
    pub rule_stats: Vec<RuleStat>,
}

/// Plans interaction-rule actions over the whole snapshot.
///
/// `pending_dst` holds this round's already-planned resource migrations
/// (reserve/balance), so a `colocate` partner follows its companion to the
/// *new* server rather than chasing the old one — this is what makes the
/// Metadata Server rule (`reserve(fo, cpu); colocate(fo, fi);`) move the
/// files along with the folder.
pub fn plan(
    policy: &BoundPolicy<'_>,
    ctx: &EvalCtx<'_>,
    pending_dst: &BTreeMap<ActorId, ServerId>,
    upper_bound: f64,
    reserved_servers: &BTreeSet<ServerId>,
) -> LemPlan {
    let mut plan = LemPlan::default();
    let mut pins: BTreeSet<ActorId> = BTreeSet::new();
    // Within-round view of where actors will be once this round's actions
    // (resource ones and our own) are applied, plus per-server incoming
    // counts so consecutive `separate` pairs fan out to distinct targets.
    let mut future: BTreeMap<ActorId, ServerId> = pending_dst.clone();
    let mut incoming: BTreeMap<ServerId, usize> = BTreeMap::new();
    for dst in pending_dst.values() {
        *incoming.entry(*dst).or_insert(0) += 1;
    }
    for bound in &policy.rules {
        let rule = bound.rule;
        if !rule.has_interaction_behavior() {
            continue;
        }
        let envs = solve_bound(bound, ctx);
        let actions_before = plan.actions.len();
        for env in &envs {
            for cb in &rule.behaviors {
                match &cb.behavior {
                    Behavior::Pin(aref) => {
                        for a in expand_behavior_ref(aref, env, rule, ctx) {
                            pins.insert(a);
                        }
                    }
                    Behavior::Colocate(a, b) => plan_pair(
                        &mut plan,
                        ctx,
                        rule,
                        env,
                        a,
                        b,
                        cb.priority,
                        &mut future,
                        &mut incoming,
                        &pins,
                        PairMode::Colocate,
                        upper_bound,
                        reserved_servers,
                    ),
                    Behavior::Separate(a, b) => plan_pair(
                        &mut plan,
                        ctx,
                        rule,
                        env,
                        a,
                        b,
                        cb.priority,
                        &mut future,
                        &mut incoming,
                        &pins,
                        PairMode::Separate,
                        upper_bound,
                        reserved_servers,
                    ),
                    Behavior::Balance { .. } | Behavior::Reserve { .. } => {}
                }
            }
        }
        plan.rule_stats.push(RuleStat {
            rule: rule.index,
            matches: envs.len() as u64,
            actions: (plan.actions.len() - actions_before) as u64,
        });
    }
    plan.pins = pins.into_iter().collect();
    plan
}

enum PairMode {
    Colocate,
    Separate,
}

#[allow(clippy::too_many_arguments)]
fn plan_pair(
    plan: &mut LemPlan,
    ctx: &EvalCtx<'_>,
    rule: &CompiledRule,
    env: &Env,
    a: &ActorRef,
    b: &ActorRef,
    priority: u32,
    future: &mut BTreeMap<ActorId, ServerId>,
    incoming: &mut BTreeMap<ServerId, usize>,
    pins: &BTreeSet<ActorId>,
    mode: PairMode,
    upper_bound: f64,
    reserved_servers: &BTreeSet<ServerId>,
) {
    let axs = expand_behavior_ref(a, env, rule, ctx);
    let bxs = expand_behavior_ref(b, env, rule, ctx);
    let pairs: Vec<(ActorId, ActorId)> = if axs.len() == 1 {
        bxs.iter().map(|&b| (axs[0], b)).collect()
    } else if bxs.len() == 1 {
        axs.iter().map(|&a| (a, bxs[0])).collect()
    } else if matches!(mode, PairMode::Separate) {
        // `separate(Leaf(a), Leaf(b))` with both sides unbound means
        // "spread these actors out": pair up co-resident actors.
        let mut all: Vec<ActorId> = axs.iter().chain(bxs.iter()).copied().collect();
        all.sort_unstable();
        all.dedup();
        let mut by_server: BTreeMap<ServerId, Vec<ActorId>> = BTreeMap::new();
        for id in all {
            if let Some(stats) = ctx.actor(id) {
                by_server.entry(stats.server).or_default().push(id);
            }
        }
        by_server
            .into_values()
            .filter(|group| group.len() > 1)
            .flat_map(|group| {
                // Keep the first resident; every other one pairs with it.
                let anchor = group[0];
                group[1..]
                    .iter()
                    .map(move |&m| (anchor, m))
                    .collect::<Vec<_>>()
            })
            .collect()
    } else {
        plan.ambiguous_pairs += 1;
        return;
    };
    for (ax, bx) in pairs {
        if ax == bx {
            continue;
        }
        let (Some(sa), Some(sb)) = (
            ctx.actor(ax).map(|s| s.server),
            ctx.actor(bx).map(|s| s.server),
        ) else {
            continue;
        };
        // Where each partner will be after this round's planned actions.
        let fa = future.get(&ax).copied().unwrap_or(sa);
        let fb = future.get(&bx).copied().unwrap_or(sb);
        let is_pinned =
            |id: ActorId| pins.contains(&id) || ctx.actor(id).map(|s| s.pinned).unwrap_or(false);
        match mode {
            PairMode::Colocate => {
                if fa == fb {
                    continue;
                }
                // Decide the mover. A partner that is already being migrated
                // by a resource action (or is pinned) anchors the pair;
                // otherwise the smaller state moves.
                let (mover, target, mover_home) = if future.contains_key(&ax) {
                    (bx, fa, sb)
                } else if future.contains_key(&bx) {
                    (ax, fb, sa)
                } else if is_pinned(ax) {
                    (bx, fa, sb)
                } else if is_pinned(bx) {
                    (ax, fb, sa)
                } else {
                    let size_a = ctx.actor(ax).map(|s| s.state_size).unwrap_or(0);
                    let size_b = ctx.actor(bx).map(|s| s.state_size).unwrap_or(0);
                    if size_a <= size_b {
                        (ax, fb, sa)
                    } else {
                        (bx, fa, sb)
                    }
                };
                if is_pinned(mover) || mover_home == target {
                    continue;
                }
                future.insert(mover, target);
                *incoming.entry(target).or_insert(0) += 1;
                plan.actions.push(Action {
                    actor: mover,
                    src: mover_home,
                    dst: target,
                    kind: ActionKind::Colocate,
                    priority,
                    rule: rule.index,
                    trace: None,
                });
            }
            PairMode::Separate => {
                if fa != fb {
                    continue;
                }
                let mover = if is_pinned(bx) { ax } else { bx };
                if is_pinned(mover) {
                    continue;
                }
                let mover_home = if mover == ax { sa } else { sb };
                // Target: spread across servers - fewest planned arrivals
                // first, then least CPU - excluding the anchor's server and
                // reserved servers.
                let target = ctx
                    .servers
                    .iter()
                    .filter(|s| s.id != fa && !reserved_servers.contains(&s.id))
                    .filter(|s| s.cpu < upper_bound)
                    .min_by(|x, y| {
                        let ix = incoming.get(&x.id).copied().unwrap_or(0);
                        let iy = incoming.get(&y.id).copied().unwrap_or(0);
                        ix.cmp(&iy)
                            .then(x.cpu.partial_cmp(&y.cpu).expect("finite usage"))
                    })
                    .map(|s| s.id);
                let Some(target) = target else { continue };
                future.insert(mover, target);
                *incoming.entry(target).or_insert(0) += 1;
                plan.actions.push(Action {
                    actor: mover,
                    src: mover_home,
                    dst: target,
                    kind: ActionKind::Separate,
                    priority,
                    rule: rule.index,
                    trace: None,
                });
            }
        }
    }
}
