//! End-to-end tests: EPL policy -> EMR -> actor runtime effects.

use plasma_actor::logic::{ActorCtx, ClientCtx};
use plasma_actor::message::Payload;
use plasma_actor::{ActorId, ActorLogic, ClientLogic, Message, Runtime, RuntimeConfig};
use plasma_cluster::topology::ClusterLimits;
use plasma_cluster::{InstanceType, ServerId};
use plasma_emr::{EmrConfig, PlasmaEmr};
use plasma_epl::{compile, ActorSchema};
use plasma_sim::{SimDuration, SimTime};

/// An actor that burns fixed CPU per request and replies.
struct Worker {
    work: f64,
}

impl ActorLogic for Worker {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, _msg: &mut Message) {
        ctx.work(self.work);
        ctx.reply(32);
    }
}

/// An open-loop client: one request to `target` every `period`.
struct Pulse {
    target: ActorId,
    period: SimDuration,
}

impl ClientLogic for Pulse {
    fn on_start(&mut self, ctx: &mut ClientCtx<'_>) {
        ctx.set_timer(SimDuration::ZERO, 0);
    }

    fn on_reply(
        &mut self,
        _ctx: &mut ClientCtx<'_>,
        _request: u64,
        _latency: SimDuration,
        _payload: Option<Payload>,
    ) {
    }

    fn on_timer(&mut self, ctx: &mut ClientCtx<'_>, _token: u64) {
        ctx.request(self.target, "run", 64);
        ctx.set_timer(self.period, 0);
    }
}

fn worker_schema() -> ActorSchema {
    let mut schema = ActorSchema::new();
    schema.actor_type("Worker").func("run");
    schema
}

fn emr_for(policy: &str, schema: &ActorSchema, cfg: EmrConfig) -> PlasmaEmr {
    let compiled = compile(policy, schema).expect("policy compiles");
    PlasmaEmr::new(compiled, cfg)
}

fn cpu_of(rt: &Runtime, sid: ServerId) -> f64 {
    rt.snapshot()
        .server(sid)
        .map(|s| s.usage.cpu())
        .unwrap_or(0.0)
}

#[test]
fn balance_rule_spreads_cpu_load() {
    let mut rt = Runtime::new(RuntimeConfig {
        seed: 1,
        ..RuntimeConfig::default()
    });
    let emr = emr_for(
        "server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);",
        &worker_schema(),
        EmrConfig::default(),
    );
    rt.set_controller(Box::new(emr));
    let s0 = rt.add_server(InstanceType::m1_small());
    let s1 = rt.add_server(InstanceType::m1_small());
    // Four workers, all on s0, each demanding ~35% of an m1.small vCPU.
    for i in 0..4 {
        let w = rt.spawn_actor("Worker", Box::new(Worker { work: 0.035 }), 64 << 10, s0);
        rt.add_client(Box::new(Pulse {
            target: w,
            period: SimDuration::from_millis(100),
        }));
        let _ = i;
    }
    rt.run_until(SimTime::from_secs(200));
    // After a couple of elasticity periods the load must be split 2/2.
    assert_eq!(rt.actor_count_on(s0), 2, "workers on s0");
    assert_eq!(rt.actor_count_on(s1), 2, "workers on s1");
    assert!(!rt.report().migrations.is_empty());
    let (u0, u1) = (cpu_of(&rt, s0), cpu_of(&rt, s1));
    assert!(u0 < 0.85 && u1 < 0.85, "usages {u0} {u1}");
    assert!((u0 - u1).abs() < 0.2, "balanced usages {u0} {u1}");
}

#[test]
fn colocate_rule_moves_player_to_pinned_session() {
    struct Session;
    impl ActorLogic for Session {
        fn on_message(&mut self, ctx: &mut ActorCtx<'_>, _msg: &mut Message) {
            ctx.work(0.001);
            ctx.reply(16);
        }
    }
    let mut schema = ActorSchema::new();
    schema.actor_type("Session").prop("players").func("route");
    schema.actor_type("Player").func("update");
    let emr = emr_for(
        "Player(p) in ref(Session(s).players) => pin(s); colocate(p, s);",
        &schema,
        EmrConfig::default(),
    );
    let mut rt = Runtime::new(RuntimeConfig {
        seed: 2,
        ..RuntimeConfig::default()
    });
    rt.set_controller(Box::new(emr));
    let s0 = rt.add_server(InstanceType::m1_small());
    let s1 = rt.add_server(InstanceType::m1_small());
    let session = rt.spawn_actor("Session", Box::new(Session), 1 << 10, s0);
    let player = rt.spawn_actor("Player", Box::new(Worker { work: 0.001 }), 1 << 10, s1);
    rt.actor_add_ref(session, "players", player);
    // Keep a little traffic flowing so snapshots exist.
    rt.add_client(Box::new(Pulse {
        target: player,
        period: SimDuration::from_millis(200),
    }));
    rt.run_until(SimTime::from_secs(130));
    assert_eq!(rt.actor_server(player), s0, "player joined its session");
    assert!(rt.is_pinned(session), "session pinned by rule");
    assert!(!rt.is_pinned(player));
}

#[test]
fn reserve_and_colocate_move_folder_with_files() {
    struct Folder {
        files: Vec<ActorId>,
    }
    impl ActorLogic for Folder {
        fn on_message(&mut self, ctx: &mut ActorCtx<'_>, _msg: &mut Message) {
            ctx.work(0.012);
            for f in self.files.clone() {
                ctx.send(f, "read", 128);
            }
        }
    }
    struct File;
    impl ActorLogic for File {
        fn on_message(&mut self, ctx: &mut ActorCtx<'_>, _msg: &mut Message) {
            ctx.work(0.004);
            ctx.reply(64);
        }
    }
    let mut schema = ActorSchema::new();
    schema.actor_type("Folder").prop("files").func("open");
    schema.actor_type("File").func("read");
    let emr = emr_for(
        "server.cpu.perc > 80 and client.call(Folder(fo).open).perc > 40 \
         and File(fi) in ref(fo.files) => reserve(fo, cpu); colocate(fo, fi);",
        &schema,
        EmrConfig::default(),
    );
    let mut rt = Runtime::new(RuntimeConfig {
        seed: 3,
        ..RuntimeConfig::default()
    });
    rt.set_controller(Box::new(emr));
    let s0 = rt.add_server(InstanceType::m1_small());
    let s1 = rt.add_server(InstanceType::m1_small());
    // Two folders with two files each, all on s0; folder 0 is hot (3 of 4
    // clients target it -> 75% > 40%), saturating s0.
    let mut folders = Vec::new();
    for _ in 0..2 {
        let files: Vec<ActorId> = (0..2)
            .map(|_| rt.spawn_actor("File", Box::new(File), 32 << 10, s0))
            .collect();
        let folder = rt.spawn_actor(
            "Folder",
            Box::new(Folder {
                files: files.clone(),
            }),
            64 << 10,
            s0,
        );
        for f in files {
            rt.actor_add_ref(folder, "files", f);
        }
        folders.push(folder);
    }
    for i in 0..4 {
        let target = if i < 3 { folders[0] } else { folders[1] };
        rt.add_client(Box::new(PulseNamed {
            target,
            period: SimDuration::from_millis(40),
            fname: "open",
        }));
    }
    rt.run_until(SimTime::from_secs(200));
    let hot = folders[0];
    let hot_server = rt.actor_server(hot);
    assert_eq!(hot_server, s1, "hot folder reserved onto the idle server");
    for f in rt.actor_refs(hot, "files") {
        assert_eq!(rt.actor_server(f), hot_server, "files follow their folder");
    }
    // The cold folder stays home.
    assert_eq!(rt.actor_server(folders[1]), s0);
}

/// A pulse client with a configurable function name.
struct PulseNamed {
    target: ActorId,
    period: SimDuration,
    fname: &'static str,
}

impl ClientLogic for PulseNamed {
    fn on_start(&mut self, ctx: &mut ClientCtx<'_>) {
        ctx.set_timer(SimDuration::ZERO, 0);
    }
    fn on_reply(
        &mut self,
        _ctx: &mut ClientCtx<'_>,
        _request: u64,
        _latency: SimDuration,
        _payload: Option<Payload>,
    ) {
    }
    fn on_timer(&mut self, ctx: &mut ClientCtx<'_>, _token: u64) {
        ctx.request(self.target, self.fname, 64);
        ctx.set_timer(self.period, 0);
    }
}

#[test]
fn pinned_actors_survive_balance() {
    let mut schema = ActorSchema::new();
    schema.actor_type("Worker").func("run");
    let emr = emr_for(
        "true => pin(Worker);\n\
         server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);",
        &schema,
        EmrConfig::default(),
    );
    let mut rt = Runtime::new(RuntimeConfig {
        seed: 4,
        ..RuntimeConfig::default()
    });
    rt.set_controller(Box::new(emr));
    let s0 = rt.add_server(InstanceType::m1_small());
    let _s1 = rt.add_server(InstanceType::m1_small());
    for _ in 0..4 {
        let w = rt.spawn_actor("Worker", Box::new(Worker { work: 0.035 }), 1 << 10, s0);
        rt.add_client(Box::new(Pulse {
            target: w,
            period: SimDuration::from_millis(100),
        }));
    }
    rt.run_until(SimTime::from_secs(200));
    // Everything pinned: despite overload, nothing may move.
    assert_eq!(rt.actor_count_on(s0), 4);
    assert!(rt.report().migrations.is_empty());
}

#[test]
fn auto_scale_out_until_within_bounds() {
    let emr = emr_for(
        "server.cpu.perc > 80 or server.cpu.perc < 50 => balance({Worker}, cpu);",
        &worker_schema(),
        EmrConfig {
            auto_scale: true,
            scale_instance: InstanceType::m1_small(),
            ..EmrConfig::default()
        },
    );
    let mut rt = Runtime::new(RuntimeConfig {
        seed: 5,
        limits: ClusterLimits {
            max_servers: 6,
            min_servers: 1,
        },
        elasticity_period: SimDuration::from_secs(30),
        min_residency: SimDuration::from_secs(30),
        ..RuntimeConfig::default()
    });
    rt.set_controller(Box::new(emr));
    let s0 = rt.add_server(InstanceType::m1_small());
    // Six workers each wanting ~30%: one server is hopeless (180%).
    for _ in 0..6 {
        let w = rt.spawn_actor("Worker", Box::new(Worker { work: 0.03 }), 1 << 10, s0);
        rt.add_client(Box::new(Pulse {
            target: w,
            period: SimDuration::from_millis(100),
        }));
    }
    rt.run_until(SimTime::from_secs(600));
    let servers = rt.cluster().running_count();
    assert!(servers >= 3, "scaled out to {servers} servers");
    for sid in rt.cluster().running_ids() {
        let u = cpu_of(&rt, sid);
        assert!(u < 0.9, "server {sid:?} still hot: {u}");
    }
}

#[test]
fn auto_scale_in_reclaims_idle_servers() {
    let emr = emr_for(
        "server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);",
        &worker_schema(),
        EmrConfig {
            auto_scale: true,
            scale_instance: InstanceType::m1_small(),
            scale_in_step: 1,
            ..EmrConfig::default()
        },
    );
    let mut rt = Runtime::new(RuntimeConfig {
        seed: 6,
        elasticity_period: SimDuration::from_secs(30),
        min_residency: SimDuration::from_secs(30),
        ..RuntimeConfig::default()
    });
    rt.set_controller(Box::new(emr));
    // Four servers, trivial load.
    for _ in 0..4 {
        rt.add_server(InstanceType::m1_small());
    }
    let s0 = rt.cluster().running_ids()[0];
    let w = rt.spawn_actor("Worker", Box::new(Worker { work: 0.002 }), 1 << 10, s0);
    rt.add_client(Box::new(Pulse {
        target: w,
        period: SimDuration::from_millis(500),
    }));
    rt.run_until(SimTime::from_secs(400));
    assert!(
        rt.cluster().running_count() <= 2,
        "idle servers reclaimed, now {}",
        rt.cluster().running_count()
    );
}

#[test]
fn gem_failure_does_not_stop_balancing() {
    let compiled = compile(
        "server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);",
        &worker_schema(),
    )
    .unwrap();
    let mut emr = PlasmaEmr::new(
        compiled,
        EmrConfig {
            num_gems: 2,
            ..EmrConfig::default()
        },
    );
    emr.fail_gem(0);
    assert_eq!(emr.alive_gems(), 1);
    let mut rt = Runtime::new(RuntimeConfig {
        seed: 7,
        ..RuntimeConfig::default()
    });
    rt.set_controller(Box::new(emr));
    let s0 = rt.add_server(InstanceType::m1_small());
    let s1 = rt.add_server(InstanceType::m1_small());
    for _ in 0..4 {
        let w = rt.spawn_actor("Worker", Box::new(Worker { work: 0.035 }), 1 << 10, s0);
        rt.add_client(Box::new(Pulse {
            target: w,
            period: SimDuration::from_millis(100),
        }));
    }
    rt.run_until(SimTime::from_secs(200));
    assert!(rt.actor_count_on(s1) >= 1, "surviving GEM still migrates");
}

#[test]
fn rule_guided_placement_puts_child_on_creator_server() {
    struct Spawner;
    impl ActorLogic for Spawner {
        fn on_message(&mut self, ctx: &mut ActorCtx<'_>, _msg: &mut Message) {
            let child = ctx.spawn("Player", Box::new(Worker { work: 0.001 }), 256);
            ctx.add_ref("players", child);
            ctx.reply(8);
        }
    }
    let mut schema = ActorSchema::new();
    schema.actor_type("Session").prop("players").func("join");
    schema.actor_type("Player").func("update");
    let run = |policy: &str| {
        let emr = emr_for(policy, &schema, EmrConfig::default());
        let mut rt = Runtime::new(RuntimeConfig {
            seed: 8,
            ..RuntimeConfig::default()
        });
        rt.set_controller(Box::new(emr));
        let s0 = rt.add_server(InstanceType::m1_small());
        for _ in 0..3 {
            rt.add_server(InstanceType::m1_small());
        }
        let session = rt.spawn_actor("Session", Box::new(Spawner), 1 << 10, s0);
        for _ in 0..8 {
            rt.inject(session, "join", 16, None);
        }
        rt.run_until(SimTime::from_secs(5));
        let players = rt.actor_refs(session, "players");
        assert_eq!(players.len(), 8);
        let on_creator = players
            .iter()
            .filter(|&&p| rt.actor_server(p) == s0)
            .count();
        on_creator
    };
    // With the colocate rule every player starts beside its session.
    let guided = run("Player(p) in ref(Session(s).players) => pin(s); colocate(p, s);");
    assert_eq!(guided, 8);
    // Without any rule mentioning Player, placement is spread round-robin.
    let unguided = run("server.cpu.perc > 80 => balance({Session}, cpu);");
    assert!(
        unguided < 8,
        "unguided placement spread players: {unguided}"
    );
}

#[test]
fn gem_waits_for_k_reports() {
    // With K larger than the per-GEM server count, no GEM ever plans, so
    // the overloaded server is never relieved.
    let compiled = compile(
        "server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);",
        &worker_schema(),
    )
    .unwrap();
    let emr = PlasmaEmr::new(
        compiled,
        EmrConfig {
            k_reports: 10,
            ..EmrConfig::default()
        },
    );
    let mut rt = Runtime::new(RuntimeConfig {
        seed: 42,
        ..RuntimeConfig::default()
    });
    rt.set_controller(Box::new(emr));
    let s0 = rt.add_server(InstanceType::m1_small());
    let _s1 = rt.add_server(InstanceType::m1_small());
    for _ in 0..4 {
        let w = rt.spawn_actor("Worker", Box::new(Worker { work: 0.035 }), 1 << 16, s0);
        rt.add_client(Box::new(Pulse {
            target: w,
            period: SimDuration::from_millis(100),
        }));
    }
    rt.run_until(SimTime::from_secs(200));
    assert!(
        rt.report().migrations.is_empty(),
        "below the K-report threshold the GEM must not act"
    );
}
