//! Direct tests of the rule evaluator's binding semantics against live
//! profiling snapshots.

use plasma_actor::logic::{ActorCtx, ClientCtx};
use plasma_actor::message::Payload;
use plasma_actor::{ActorId, ActorLogic, ClientLogic, Message, Runtime, RuntimeConfig};
use plasma_cluster::{InstanceType, ServerId};
use plasma_emr::eval::{solve, Env};
use plasma_emr::view::{EvalCtx, EvalFrame};
use plasma_epl::{compile, ActorSchema, CompiledPolicy};
use plasma_sim::{SimDuration, SimTime};

struct Echo {
    work: f64,
}

impl ActorLogic for Echo {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, _msg: &mut Message) {
        ctx.work(self.work);
        if _msg.corr.is_some() {
            ctx.reply(32);
        }
    }
}

/// Sends `fname` to `target` every `period`.
struct Caller {
    target: ActorId,
    fname: &'static str,
    period: SimDuration,
}

impl ClientLogic for Caller {
    fn on_start(&mut self, ctx: &mut ClientCtx<'_>) {
        ctx.set_timer(SimDuration::ZERO, 0);
    }
    fn on_reply(
        &mut self,
        _ctx: &mut ClientCtx<'_>,
        _r: u64,
        _l: SimDuration,
        _p: Option<Payload>,
    ) {
    }
    fn on_timer(&mut self, ctx: &mut ClientCtx<'_>, _t: u64) {
        ctx.request(self.target, self.fname, 64);
        ctx.set_timer(self.period, 0);
    }
}

fn schema() -> ActorSchema {
    let mut s = ActorSchema::new();
    s.actor_type("Folder").prop("files").func("open");
    s.actor_type("File").func("read");
    s
}

fn compiled(policy: &str) -> CompiledPolicy {
    compile(policy, &schema()).unwrap()
}

/// Two servers; `hot` folders on s0 driven hard, one idle folder on s1.
fn setup() -> (Runtime, Vec<ActorId>, ServerId, ServerId) {
    let mut rt = Runtime::new(RuntimeConfig {
        seed: 3,
        ..RuntimeConfig::default()
    });
    let s0 = rt.add_server(InstanceType::m1_small());
    let s1 = rt.add_server(InstanceType::m1_small());
    let f0 = rt.spawn_actor("Folder", Box::new(Echo { work: 0.01 }), 1 << 16, s0);
    let f1 = rt.spawn_actor("Folder", Box::new(Echo { work: 0.01 }), 1 << 16, s0);
    let f2 = rt.spawn_actor("Folder", Box::new(Echo { work: 0.001 }), 1 << 16, s1);
    // f0 gets 3x the traffic of f1; f2 idles.
    for _ in 0..3 {
        rt.add_client(Box::new(Caller {
            target: f0,
            fname: "open",
            period: SimDuration::from_millis(40),
        }));
    }
    rt.add_client(Box::new(Caller {
        target: f1,
        fname: "open",
        period: SimDuration::from_millis(40),
    }));
    rt.run_until(SimTime::from_secs(5));
    (rt, vec![f0, f1, f2], s0, s1)
}

fn envs_of(rt: &Runtime, policy: &CompiledPolicy) -> Vec<Env> {
    let scope = rt.cluster().running_ids();
    let frame = EvalFrame::new(rt);
    let ctx = EvalCtx::scoped(&frame, &scope);
    solve(&policy.rules[0], &ctx)
}

#[test]
fn server_condition_binds_matching_servers() {
    let (rt, _, s0, s1) = setup();
    // s0 is saturated (~100%), s1 nearly idle.
    let hot = compiled("server.cpu.perc > 80 => balance({Folder}, cpu);");
    let envs = envs_of(&rt, &hot);
    assert_eq!(envs.len(), 1);
    assert_eq!(envs[0].server, Some(s0));

    let cold = compiled("server.cpu.perc < 20 => balance({Folder}, cpu);");
    let envs = envs_of(&rt, &cold);
    assert_eq!(envs.len(), 1);
    assert_eq!(envs[0].server, Some(s1));
}

#[test]
fn call_perc_is_relative_to_same_type_on_same_server() {
    let (rt, folders, _, _) = setup();
    // f0 receives ~75% of client opens among folders on its server, f1 ~25%.
    let policy = compiled("client.call(Folder(fo).open).perc > 60 => reserve(fo, cpu);");
    let envs = envs_of(&rt, &policy);
    assert_eq!(envs.len(), 1);
    assert_eq!(envs[0].var(0), Some(folders[0]));
    // f2 on s1 receives no opens: perc > 60 cannot bind it even though it
    // is alone on its server (0 of 0 calls).
}

#[test]
fn call_count_is_per_minute_rate() {
    let (rt, folders, _, _) = setup();
    // f1 gets one open per 40ms = 1500/min; f0 gets 4500/min.
    let policy = compiled("client.call(Folder(fo).open).count > 3000 => reserve(fo, cpu);");
    let envs = envs_of(&rt, &policy);
    assert_eq!(envs.len(), 1);
    assert_eq!(envs[0].var(0), Some(folders[0]));
    let both = compiled("client.call(Folder(fo).open).count > 1000 => reserve(fo, cpu);");
    assert_eq!(envs_of(&rt, &both).len(), 2);
}

#[test]
fn conjunction_anchors_actor_to_bound_server() {
    let (rt, folders, _, _) = setup();
    // The server condition binds s0; folder candidates are then restricted
    // to s0, so idle f2 (on s1, receiving 0 calls -> perc 0) stays out and
    // so does any folder on s1 even with a permissive threshold.
    let policy = compiled(
        "server.cpu.perc > 80 and client.call(Folder(fo).open).perc > 60 => reserve(fo, cpu);",
    );
    let envs = envs_of(&rt, &policy);
    assert_eq!(envs.len(), 1);
    assert_eq!(envs[0].var(0), Some(folders[0]));
}

#[test]
fn inref_binds_members_across_servers() {
    let (mut rt, folders, _, s1) = setup();
    let file_local = rt.spawn_actor(
        "File",
        Box::new(Echo { work: 0.0 }),
        64,
        rt.actor_server(folders[0]),
    );
    let file_remote = rt.spawn_actor("File", Box::new(Echo { work: 0.0 }), 64, s1);
    rt.actor_add_ref(folders[0], "files", file_local);
    rt.actor_add_ref(folders[0], "files", file_remote);
    rt.run_until(SimTime::from_secs(7));
    let policy = compiled("File(fi) in ref(Folder(fo).files) => colocate(fo, fi);");
    let envs = envs_of(&rt, &policy);
    // Both files bind, including the remote one (references cross servers).
    // Variable slots follow declaration order: `fi` (member) is slot 0,
    // `fo` (owner) is slot 1.
    assert_eq!(envs.len(), 2);
    let bound_files: Vec<Option<ActorId>> = envs.iter().map(|e| e.var(0)).collect();
    assert!(bound_files.contains(&Some(file_local)));
    assert!(bound_files.contains(&Some(file_remote)));
    for e in &envs {
        assert_eq!(e.var(1), Some(folders[0]));
    }
}

#[test]
fn or_branches_union_without_duplicates() {
    let (rt, _, s0, s1) = setup();
    let policy =
        compiled("server.cpu.perc > 80 or server.cpu.perc < 20 => balance({Folder}, cpu);");
    let envs = envs_of(&rt, &policy);
    assert_eq!(envs.len(), 2);
    let servers: Vec<Option<ServerId>> = envs.iter().map(|e| e.server).collect();
    assert!(servers.contains(&Some(s0)));
    assert!(servers.contains(&Some(s1)));
    // A tautological or must not duplicate environments.
    let tauto =
        compiled("server.cpu.perc >= 0 or server.cpu.perc <= 100 => balance({Folder}, cpu);");
    assert_eq!(envs_of(&rt, &tauto).len(), 2);
}

#[test]
fn true_condition_yields_single_unbound_env() {
    let (rt, _, _, _) = setup();
    let policy = compiled("true => pin(Folder);");
    let envs = envs_of(&rt, &policy);
    assert_eq!(envs.len(), 1);
    assert_eq!(envs[0].server, None);
}

#[test]
fn never_called_function_reads_as_zero() {
    let (rt, _, _, _) = setup();
    // No client ever calls `read`, so `count < 1` binds every File... but
    // there are no File actors yet, so it binds every Folder? No: the
    // callee type is File; with no File actors there are no candidates.
    let policy = compiled("client.call(File(fi).read).count < 1 => pin(fi);");
    assert!(envs_of(&rt, &policy).is_empty());
    // `> 0` on an uncalled function also never fires for folders.
    let policy = compiled("client.call(Folder(fo).open).count < 1 => pin(fo);");
    // Folders on s1 (f2) receive no opens -> rate 0 < 1 binds f2 only.
    let envs = envs_of(&rt, &policy);
    assert_eq!(envs.len(), 1);
}

#[test]
fn scoped_view_hides_out_of_scope_servers() {
    let (rt, folders, s0, _) = setup();
    let policy = compiled("server.cpu.perc < 20 => balance({Folder}, cpu);");
    // Restrict the GEM scope to s0 only: the idle s1 is invisible.
    let frame = EvalFrame::new(&rt);
    let ctx = EvalCtx::scoped(&frame, &[s0]);
    assert!(solve(&policy.rules[0], &ctx).is_empty());
    let _ = folders;
}
