//! Pins the "one snapshot build per profiling window" invariant.
//!
//! Before the shared-frame refactor every GEM scope (and the apply phase)
//! called `rt.snapshot()` independently; with `num_gems = 4` a single round
//! could have rebuilt per-consumer views four times over. The runtime now
//! stamps each [`plasma_actor::stats::ProfileSnapshot`] with a generation
//! counter, so the build count is observable and must track profiling
//! windows — never planning consumers.

use plasma_actor::logic::{ActorCtx, ClientCtx};
use plasma_actor::message::Payload;
use plasma_actor::{ActorId, ActorLogic, ClientLogic, Message, Runtime, RuntimeConfig};
use plasma_cluster::InstanceType;
use plasma_emr::{EmrConfig, PlasmaEmr};
use plasma_epl::{compile, ActorSchema};
use plasma_sim::{SimDuration, SimTime};

struct Worker {
    work: f64,
}

impl ActorLogic for Worker {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, _msg: &mut Message) {
        ctx.work(self.work);
        ctx.reply(32);
    }
}

struct Pulse {
    target: ActorId,
    period: SimDuration,
}

impl ClientLogic for Pulse {
    fn on_start(&mut self, ctx: &mut ClientCtx<'_>) {
        ctx.set_timer(SimDuration::ZERO, 0);
    }

    fn on_reply(
        &mut self,
        _ctx: &mut ClientCtx<'_>,
        _request: u64,
        _latency: SimDuration,
        _payload: Option<Payload>,
    ) {
    }

    fn on_timer(&mut self, ctx: &mut ClientCtx<'_>, _token: u64) {
        ctx.request(self.target, "run", 64);
        ctx.set_timer(self.period, 0);
    }
}

/// Runs a small unbalanced cluster for `secs` seconds under a balance policy
/// with `num_gems` GEM scopes and returns the finished runtime.
fn run_cluster(num_gems: usize, secs: u64) -> Runtime {
    let mut schema = ActorSchema::new();
    schema.actor_type("Worker").func("run");
    let compiled = compile(
        "server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);",
        &schema,
    )
    .expect("policy compiles");
    let emr = PlasmaEmr::new(
        compiled,
        EmrConfig {
            num_gems,
            ..EmrConfig::default()
        },
    );
    let mut rt = Runtime::new(RuntimeConfig {
        seed: 9,
        ..RuntimeConfig::default()
    });
    rt.set_controller(Box::new(emr));
    let s0 = rt.add_server(InstanceType::m1_small());
    for _ in 0..3 {
        rt.add_server(InstanceType::m1_small());
    }
    for _ in 0..6 {
        let w = rt.spawn_actor("Worker", Box::new(Worker { work: 0.03 }), 1 << 10, s0);
        rt.add_client(Box::new(Pulse {
            target: w,
            period: SimDuration::from_millis(100),
        }));
    }
    rt.run_until(SimTime::from_secs(secs));
    rt
}

#[test]
fn snapshot_builds_track_profile_windows_not_consumers() {
    let secs = 120;
    let rt = run_cluster(4, secs);
    // One build per elapsed profiling window (1s default), regardless of how
    // many GEM/LEM consumers read it each round. `run_until` stops *at* the
    // deadline, so the window event scheduled exactly there may or may not
    // have fired yet.
    let builds = rt.snapshot_builds();
    assert!(
        builds >= secs - 1 && builds <= secs,
        "expected ~{secs} snapshot builds (one per window), got {builds}"
    );
}

#[test]
fn snapshot_build_count_is_independent_of_gem_count() {
    let solo = run_cluster(1, 90);
    let fleet = run_cluster(4, 90);
    assert_eq!(
        solo.snapshot_builds(),
        fleet.snapshot_builds(),
        "extra GEM consumers must reuse the window's snapshot, not rebuild it"
    );
}

#[test]
fn emr_reports_snapshot_reuse() {
    let rt = run_cluster(4, 120);
    let report = rt.report();
    let reuse = report
        .scalar("emr.snapshot_reuse")
        .expect("emr.snapshot_reuse scalar exported");
    // 4 GEM scopes + 1 LEM pass share one frame per round (>= 1 reuse per
    // planning round with >1 consumer), plus one reuse per apply round.
    assert!(reuse > 0.0, "expected shared-frame reuse, got {reuse}");
    let eval_ns = report
        .scalar("emr.eval_ns")
        .expect("emr.eval_ns scalar exported");
    // Planning time is measured on the execution backend's monotonic
    // clock, which is identically zero under the sim backend — nothing
    // host-dependent may leak into simulated results.
    assert_eq!(eval_ns, 0.0, "sim carrier clock never moves: {eval_ns}");
    let skews = report
        .scalar("emr.snapshot_skew_rounds")
        .expect("emr.snapshot_skew_rounds scalar exported");
    let rounds = report
        .scalar("emr.rounds_applied")
        .expect("emr.rounds_applied scalar exported");
    // Under the default cadence the 1s profiling window divides the 60s
    // elasticity period, and the tick (scheduled once at startup) wins the
    // FIFO tie at the shared boundary: every round plans against the old
    // generation and applies after the boundary rolls a new one.
    assert!(rounds >= 1.0, "at least one applied round: {rounds}");
    assert_eq!(skews, rounds, "every boundary round skews one generation");
}
