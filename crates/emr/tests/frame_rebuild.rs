//! Regression tests for the retained-frame fallback paths: when
//! `EvalFrame::advance` cannot patch (scope changed, or the runtime's
//! bounded delta history no longer reaches the frame's generation) it must
//! refuse — leaving the frame untouched — and a from-scratch rebuild must
//! produce a frame equivalent to one built fresh at that instant.

use plasma_actor::logic::{ActorCtx, ClientCtx};
use plasma_actor::message::Payload;
use plasma_actor::{ActorId, ActorLogic, ClientLogic, Message, Runtime, RuntimeConfig};
use plasma_cluster::InstanceType;
use plasma_emr::view::{EvalCtx, EvalFrame};
use plasma_sim::{SimDuration, SimTime};

struct Worker {
    work: f64,
}

impl ActorLogic for Worker {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, _msg: &mut Message) {
        ctx.work(self.work);
        ctx.reply(32);
    }
}

struct Pulse {
    target: ActorId,
    period: SimDuration,
}

impl ClientLogic for Pulse {
    fn on_start(&mut self, ctx: &mut ClientCtx<'_>) {
        ctx.set_timer(SimDuration::ZERO, 0);
    }
    fn on_reply(
        &mut self,
        _ctx: &mut ClientCtx<'_>,
        _request: u64,
        _latency: SimDuration,
        _payload: Option<Payload>,
    ) {
    }
    fn on_timer(&mut self, ctx: &mut ClientCtx<'_>, _token: u64) {
        ctx.request(self.target, "run", 64);
        ctx.set_timer(self.period, 0);
    }
}

/// Two servers, four busy workers; enough traffic that every profiling
/// window has actors in it.
fn busy_world(cfg: RuntimeConfig) -> Runtime {
    let mut rt = Runtime::new(cfg);
    let s0 = rt.add_server(InstanceType::m1_small());
    let s1 = rt.add_server(InstanceType::m1_small());
    for i in 0..4 {
        let home = if i % 2 == 0 { s0 } else { s1 };
        let a = rt.spawn_actor("Worker", Box::new(Worker { work: 0.02 }), 1 << 10, home);
        rt.add_client(Box::new(Pulse {
            target: a,
            period: SimDuration::from_millis(100),
        }));
    }
    rt
}

/// The frame-visible state: generation, per-server metadata, and the full
/// in-scope actor enumeration in snapshot order.
fn observe(frame: &EvalFrame, rt: &Runtime) -> (u64, Vec<String>, Vec<(u64, u32, f64)>) {
    let servers: Vec<String> = frame.servers().iter().map(|m| format!("{m:?}")).collect();
    let ctx = EvalCtx::scoped(frame, &rt.cluster().running_ids());
    let actors = ctx
        .actors()
        .iter()
        .map(|a| (a.actor.0 as u64, a.server.0, a.cpu_share))
        .collect();
    (frame.generation(), servers, actors)
}

#[test]
fn scope_change_refuses_advance_and_rebuild_sees_new_server_zeroed() {
    let mut rt = busy_world(RuntimeConfig {
        seed: 11,
        ..RuntimeConfig::default()
    });
    rt.run_until(SimTime::from_secs(5));
    let mut frame = EvalFrame::new(&rt);
    assert_eq!(frame.servers().len(), 2);
    let before = observe(&frame, &rt);

    // The running set grows: advance must refuse and leave the frame as-is.
    let s2 = rt.add_server(InstanceType::m1_small());
    assert!(!frame.advance(&rt), "scope change must force a rebuild");
    assert_eq!(observe(&frame, &rt).0, before.0, "refused advance mutated");

    // The rebuild covers the newcomer. It joined after the last window
    // closed, so its metadata is zeroed (a pure function of the snapshot,
    // not of live residency) while the old servers' rows carry over.
    let rebuilt = EvalFrame::new(&rt);
    assert_eq!(rebuilt.generation(), frame.generation());
    assert_eq!(rebuilt.servers().len(), 3);
    let meta = rebuilt.server(s2).expect("new server in scope");
    assert_eq!(meta.cpu, 0.0);
    assert_eq!(meta.actor_count, 0);
    let after = observe(&rebuilt, &rt);
    assert_eq!(after.2, before.2, "existing actors unchanged by the grow");
}

#[test]
fn generation_gap_refuses_advance_and_rebuild_matches_fresh() {
    // 1s windows and 1s rounds floor the runtime's delta history at 8
    // generations; sitting out 15 windows guarantees the frame's
    // generation has fallen off the back.
    let mut rt = busy_world(RuntimeConfig {
        seed: 12,
        profile_window: SimDuration::from_secs(1),
        elasticity_period: SimDuration::from_secs(1),
        ..RuntimeConfig::default()
    });
    rt.run_until(SimTime::from_secs(5));
    let mut frame = EvalFrame::new(&rt);
    let stale = frame.generation();

    rt.run_until(SimTime::from_secs(20));
    assert!(
        rt.snapshot().generation > stale + 8,
        "history outran the cap"
    );
    assert!(!frame.advance(&rt), "generation gap must force a rebuild");
    assert_eq!(frame.generation(), stale, "refused advance mutated");

    let rebuilt = EvalFrame::new(&rt);
    assert_eq!(rebuilt.generation(), rt.snapshot().generation);
    assert_eq!(
        observe(&rebuilt, &rt).2.len(),
        4,
        "all four workers visible after rebuild"
    );
}

#[test]
fn advance_within_delta_window_matches_fresh_build() {
    // Control: a short sit-out stays within the delta history, advance
    // succeeds, and the patched frame is observationally identical to one
    // built from scratch at the same instant.
    let mut rt = busy_world(RuntimeConfig {
        seed: 13,
        profile_window: SimDuration::from_secs(1),
        elasticity_period: SimDuration::from_secs(1),
        ..RuntimeConfig::default()
    });
    rt.run_until(SimTime::from_secs(5));
    let mut frame = EvalFrame::new(&rt);

    rt.run_until(SimTime::from_secs(7));
    assert!(frame.advance(&rt), "2 generations are within the cap");
    let fresh = EvalFrame::new(&rt);
    assert_eq!(observe(&frame, &rt), observe(&fresh, &rt));
}
