//! Property tests for the GEM server-partitioning scheme (§4.3 shuffling
//! fault tolerance): no matter which GEMs crash, the survivors always cover
//! every running server exactly once.

use plasma_cluster::ServerId;
use plasma_emr::{EmrConfig, PlasmaEmr};
use plasma_epl::{compile, ActorSchema};
use proptest::prelude::*;

fn worker_schema() -> ActorSchema {
    let mut s = ActorSchema::new();
    s.actor_type("Worker").func("run");
    s
}

fn emr_with_gems(num_gems: usize) -> PlasmaEmr {
    let compiled = compile(
        "server.cpu.perc > 80 => balance({Worker}, cpu);",
        &worker_schema(),
    )
    .unwrap();
    PlasmaEmr::new(
        compiled,
        EmrConfig {
            num_gems,
            ..EmrConfig::default()
        },
    )
}

proptest! {
    /// After any sequence of `fail_gem` calls that leaves at least one GEM
    /// alive, every running server maps to exactly one live GEM: it appears
    /// in exactly one partition of `gem_assignment`, and `gem_for_server`
    /// agrees with that partition.
    #[test]
    fn every_server_maps_to_exactly_one_live_gem(
        num_gems in 1usize..8,
        num_servers in 0usize..40,
        failures in proptest::collection::vec(0usize..8, 0..16),
    ) {
        let mut emr = emr_with_gems(num_gems);
        for g in failures {
            // Leave at least one GEM alive; out-of-range ids are a no-op
            // at assignment time but exercise the bookkeeping anyway.
            if emr.alive_gems() > 1 || g >= num_gems {
                emr.fail_gem(g);
            }
        }
        prop_assert!(emr.alive_gems() >= 1);

        let servers: Vec<ServerId> = (0..num_servers as u32).map(ServerId).collect();
        let assignment = emr.gem_assignment(&servers);
        prop_assert_eq!(assignment.len(), emr.alive_gems());

        for &sid in &servers {
            let owners = assignment
                .iter()
                .filter(|group| group.contains(&sid))
                .count();
            prop_assert_eq!(owners, 1, "server {:?} owned by {} live GEMs", sid, owners);
            let idx = emr.gem_for_server(&servers, sid);
            prop_assert!(idx.is_some(), "gem_for_server must find {:?}", sid);
            prop_assert!(assignment[idx.unwrap()].contains(&sid));
        }

        // No phantom servers: the partitions cover exactly the input set.
        let total: usize = assignment.iter().map(Vec::len).sum();
        prop_assert_eq!(total, servers.len());

        // A server outside the scope maps to no GEM.
        let outside = ServerId(num_servers as u32 + 1);
        prop_assert_eq!(emr.gem_for_server(&servers, outside), None);
    }

    /// With every GEM dead the assignment is empty and lookups return None
    /// (the data plane keeps running; only resource rules stop).
    #[test]
    fn all_gems_dead_yields_empty_assignment(
        num_gems in 1usize..6,
        num_servers in 1usize..20,
    ) {
        let mut emr = emr_with_gems(num_gems);
        for g in 0..num_gems {
            emr.fail_gem(g);
        }
        prop_assert_eq!(emr.alive_gems(), 0);
        let servers: Vec<ServerId> = (0..num_servers as u32).map(ServerId).collect();
        prop_assert!(emr.gem_assignment(&servers).is_empty());
        prop_assert_eq!(emr.gem_for_server(&servers, ServerId(0)), None);
    }
}
