//! End-to-end coverage of the remaining rule forms: memory and network
//! balancing, the `any` wildcard, actor-resource conditions, and runtime
//! priority resolution between competing behaviors.

use plasma_actor::logic::{ActorCtx, ClientCtx};
use plasma_actor::message::Payload;
use plasma_actor::{ActorId, ActorLogic, ClientLogic, Message, Runtime, RuntimeConfig};
use plasma_cluster::{InstanceType, ServerId};
use plasma_emr::{EmrConfig, PlasmaEmr};
use plasma_epl::{compile, ActorSchema};
use plasma_sim::{SimDuration, SimTime};

struct Blob {
    work: f64,
}

impl ActorLogic for Blob {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, _msg: &mut Message) {
        ctx.work(self.work);
        ctx.reply(32);
    }
}

/// Streams large replies (network-heavy).
struct Streamer;
impl ActorLogic for Streamer {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, _msg: &mut Message) {
        ctx.work(0.0005);
        ctx.reply(1 << 20);
    }
}

struct Pulse {
    target: ActorId,
    period: SimDuration,
}

impl ClientLogic for Pulse {
    fn on_start(&mut self, ctx: &mut ClientCtx<'_>) {
        ctx.set_timer(SimDuration::ZERO, 0);
    }
    fn on_reply(
        &mut self,
        _ctx: &mut ClientCtx<'_>,
        _r: u64,
        _l: SimDuration,
        _p: Option<Payload>,
    ) {
    }
    fn on_timer(&mut self, ctx: &mut ClientCtx<'_>, _t: u64) {
        ctx.request(self.target, "go", 64);
        ctx.set_timer(self.period, 0);
    }
}

fn emr(policy: &str, schema: &ActorSchema) -> PlasmaEmr {
    PlasmaEmr::new(compile(policy, schema).unwrap(), EmrConfig::default())
}

#[test]
fn memory_balance_rule_moves_state_heavy_actors() {
    let mut schema = ActorSchema::new();
    schema.actor_type("Blob").func("go");
    // m1.small has ~1.7 GB; six 400 MB blobs on one server exceed it.
    let mut rt = Runtime::new(RuntimeConfig {
        seed: 11,
        ..RuntimeConfig::default()
    });
    rt.set_controller(Box::new(emr(
        "server.mem.perc > 80 or server.mem.perc < 40 => balance({Blob}, mem);",
        &schema,
    )));
    let s0 = rt.add_server(InstanceType::m1_small());
    let s1 = rt.add_server(InstanceType::m1_small());
    for _ in 0..6 {
        let b = rt.spawn_actor("Blob", Box::new(Blob { work: 0.001 }), 400 << 20, s0);
        rt.add_client(Box::new(Pulse {
            target: b,
            period: SimDuration::from_millis(500),
        }));
    }
    rt.run_until(SimTime::from_secs(200));
    let mem = |s: ServerId| rt.cluster().server(s).mem_used() >> 20;
    assert!(
        rt.actor_count_on(s1) >= 2,
        "memory pressure moved blobs: {} on s1",
        rt.actor_count_on(s1)
    );
    let (m0, m1) = (mem(s0), mem(s1));
    assert!(
        m0 < 1_700 && m1 < 1_700,
        "both below capacity: {m0} MB / {m1} MB"
    );
}

#[test]
fn network_balance_rule_spreads_streamers() {
    let mut schema = ActorSchema::new();
    schema.actor_type("Streamer").func("go");
    let mut rt = Runtime::new(RuntimeConfig {
        seed: 12,
        ..RuntimeConfig::default()
    });
    rt.set_controller(Box::new(emr(
        "server.net.perc > 60 or server.net.perc < 30 => balance({Streamer}, net);",
        &schema,
    )));
    let s0 = rt.add_server(InstanceType::m1_small());
    let s1 = rt.add_server(InstanceType::m1_small());
    // Each streamer pushes ~1 MB replies every 100 ms = ~84 Mbps; three
    // saturate an m1.small NIC (250 Mbps).
    for _ in 0..4 {
        let a = rt.spawn_actor("Streamer", Box::new(Streamer), 1 << 20, s0);
        rt.add_client(Box::new(Pulse {
            target: a,
            period: SimDuration::from_millis(100),
        }));
    }
    rt.run_until(SimTime::from_secs(200));
    assert!(
        rt.actor_count_on(s1) >= 1,
        "network pressure moved streamers: {}/{}",
        rt.actor_count_on(s0),
        rt.actor_count_on(s1)
    );
    let net0 = rt.snapshot().server(s0).map(|s| s.usage.net()).unwrap();
    assert!(net0 < 0.99, "source NIC relieved: {net0}");
}

#[test]
fn any_wildcard_balances_every_type() {
    let mut schema = ActorSchema::new();
    schema.actor_type("A").func("go");
    schema.actor_type("B").func("go");
    let mut rt = Runtime::new(RuntimeConfig {
        seed: 13,
        ..RuntimeConfig::default()
    });
    rt.set_controller(Box::new(emr(
        "server.cpu.perc > 80 or server.cpu.perc < 60 => balance({any}, cpu);",
        &schema,
    )));
    let s0 = rt.add_server(InstanceType::m1_small());
    let s1 = rt.add_server(InstanceType::m1_small());
    for i in 0..4 {
        let name = if i % 2 == 0 { "A" } else { "B" };
        let a = rt.spawn_actor(name, Box::new(Blob { work: 0.035 }), 1 << 16, s0);
        rt.add_client(Box::new(Pulse {
            target: a,
            period: SimDuration::from_millis(100),
        }));
    }
    rt.run_until(SimTime::from_secs(200));
    assert_eq!(rt.actor_count_on(s0), 2);
    assert_eq!(rt.actor_count_on(s1), 2);
    // Both types were eligible: check that at least one of each moved or
    // stayed - the wildcard must not filter by type.
    let types_on_s1: std::collections::BTreeSet<_> = rt
        .actors_on(s1)
        .into_iter()
        .map(|a| rt.actor_type(a))
        .collect();
    assert!(!types_on_s1.is_empty());
}

#[test]
fn actor_resource_condition_selects_heavy_actors() {
    // `Blob(b).cpu.perc > 20 => reserve(b, cpu);` - only the heavy blob
    // crosses the per-actor threshold and gets a dedicated server.
    let mut schema = ActorSchema::new();
    schema.actor_type("Blob").func("go");
    let mut rt = Runtime::new(RuntimeConfig {
        seed: 14,
        ..RuntimeConfig::default()
    });
    rt.set_controller(Box::new(emr(
        "Blob(b).cpu.perc > 20 => reserve(b, cpu);",
        &schema,
    )));
    let s0 = rt.add_server(InstanceType::m1_small());
    let s1 = rt.add_server(InstanceType::m1_small());
    let heavy = rt.spawn_actor("Blob", Box::new(Blob { work: 0.030 }), 1 << 16, s0);
    let light = rt.spawn_actor("Blob", Box::new(Blob { work: 0.002 }), 1 << 16, s0);
    for &(a, ms) in &[(heavy, 100u64), (light, 100)] {
        rt.add_client(Box::new(Pulse {
            target: a,
            period: SimDuration::from_millis(ms),
        }));
    }
    rt.run_until(SimTime::from_secs(200));
    assert_eq!(rt.actor_server(heavy), s1, "heavy blob got the idle server");
    assert_eq!(rt.actor_server(light), s0, "light blob stayed");
}

#[test]
fn balance_beats_colocate_for_the_same_actor() {
    // Rule 1 wants each Blob near its Anchor on the hot server; rule 2
    // wants CPU balanced. Balance has the higher default priority, so the
    // blob must end up spread out rather than glued to the anchor.
    let mut schema = ActorSchema::new();
    schema.actor_type("Anchor").prop("pals").func("go");
    schema.actor_type("Blob").func("go");
    let mut rt = Runtime::new(RuntimeConfig {
        seed: 15,
        ..RuntimeConfig::default()
    });
    rt.set_controller(Box::new(emr(
        "Blob(b) in ref(Anchor(a).pals) => colocate(b, a);\n\
         server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Blob}, cpu);",
        &schema,
    )));
    let s0 = rt.add_server(InstanceType::m1_small());
    let s1 = rt.add_server(InstanceType::m1_small());
    let anchor = rt.spawn_actor("Anchor", Box::new(Blob { work: 0.001 }), 1 << 16, s0);
    let mut blobs = Vec::new();
    for _ in 0..4 {
        let b = rt.spawn_actor("Blob", Box::new(Blob { work: 0.035 }), 1 << 16, s0);
        rt.actor_add_ref(anchor, "pals", b);
        rt.add_client(Box::new(Pulse {
            target: b,
            period: SimDuration::from_millis(100),
        }));
        blobs.push(b);
    }
    rt.run_until(SimTime::from_secs(240));
    let moved = blobs.iter().filter(|&&b| rt.actor_server(b) == s1).count();
    assert!(
        moved >= 1,
        "balance must override colocate for at least some blobs"
    );
    let u0 = rt.snapshot().server(s0).map(|s| s.usage.cpu()).unwrap();
    assert!(u0 < 0.95, "hot server relieved: {u0}");
}
