#![warn(missing_docs)]

//! Execution backends for the PLASMA runtime.
//!
//! Everything above this crate — the actor runtime, the EMR, compiled EPL
//! policies, chaos — plans and decides on *logical* state: the deterministic
//! event schedule, profiling snapshots, and the decision sequence they
//! produce. What varies between a simulated run and a deployed one is the
//! *carrier* underneath that logic: where the clock comes from, what a
//! message delivery physically is, where a service executes, and what closes
//! a profiling window. The [`ExecutionBackend`] trait abstracts exactly that
//! carrier surface:
//!
//! - **clock** — [`ExecutionBackend::monotonic_ns`]: virtual (identically
//!   zero offsets) under sim, a real monotonic clock under live.
//! - **transport** — [`ExecutionBackend::transmit`]: a counter under sim,
//!   a real cross-thread channel send under live.
//! - **spawn surface** — [`ExecutionBackend::server_up`] /
//!   [`ExecutionBackend::server_down`]: bookkeeping under sim, an OS worker
//!   thread per server under live.
//! - **windows and rounds** — [`ExecutionBackend::window_close`] /
//!   [`ExecutionBackend::round_barrier`]: no-ops under sim, real barriers
//!   under live that verify exactly-once carriage of every event.
//!
//! The two implementations are [`SimBackend`] (an adapter over the
//! `plasma-sim` event loop: the queue itself already *is* the carrier, so
//! the backend only audits) and [`LiveBackend`] (OS threads plus real
//! channels, conservatively time-stepped: the logical schedule stays
//! deterministic and single-threaded while every delivery and service is
//! carried to per-server worker threads over real channels and re-counted
//! at window barriers). Decision-relevant ordering is therefore identical
//! by construction — the parity the `backend-parity` CI job gates.
//!
//! A third implementation lives one crate up: `plasma-net`'s `NetBackend`
//! carries the same surface across real process boundaries — worker
//! processes over localhost TCP speaking the length-prefixed wire format
//! whose field codec is this crate's [`wire`] module. The `net-parity` CI
//! job extends the gate three ways (sim/live/net).

pub mod control;
pub mod live;
pub mod sim;
pub mod wire;

pub use control::{
    answer_query, report_scale_votes, ControlDecision, ControlMsg, ControlQuery, ControlReply,
    MigrationOrder, ServerReport,
};
pub use live::LiveBackend;
pub use sim::SimBackend;

/// Which execution backend carries a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BackendKind {
    /// The discrete-event simulator carries everything (the default).
    #[default]
    Sim,
    /// OS threads and real channels carry deliveries and services.
    Live,
    /// Worker processes over localhost TCP carry deliveries and services
    /// on the `plasma-net` wire format (one process per server group).
    Net,
}

impl BackendKind {
    /// Parses `"sim"` / `"live"` / `"net"` (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "sim" => Some(BackendKind::Sim),
            "live" => Some(BackendKind::Live),
            "net" => Some(BackendKind::Net),
            _ => None,
        }
    }

    /// The canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Sim => "sim",
            BackendKind::Live => "live",
            BackendKind::Net => "net",
        }
    }
}

/// One message delivery handed to the carrier.
///
/// Identifies the hosting server and target actor by raw id so the backend
/// stays below the actor crate in the dependency order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// The server the target actor resides on.
    pub server: u32,
    /// The target actor.
    pub actor: u64,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Whether the message crossed servers.
    pub remote: bool,
}

/// One message service handed to the carrier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Execution {
    /// The server whose CPU lane runs the service.
    pub server: u32,
    /// The serviced actor.
    pub actor: u64,
    /// Simulated service time in nanoseconds (the live backend accounts it
    /// as busy time; it does not dilate wall-clock to simulated durations).
    pub service_ns: u64,
}

/// What one profiling-window barrier observed.
#[derive(Clone, Copy, Debug, Default)]
pub struct WindowReport {
    /// The snapshot generation the window closed for.
    pub generation: u64,
    /// Deliveries the carrier confirmed for the window.
    pub deliveries: u64,
    /// Services the carrier confirmed for the window.
    pub executions: u64,
    /// Whether the carrier-side counts matched the coordinator's — the
    /// exactly-once check. Always `true` under sim.
    pub matched: bool,
}

/// Cumulative backend counters, exported as `backend.*` report scalars for
/// live runs (sim runs export nothing, keeping their reports byte-stable).
///
/// All wall-clock fields are measurement side-channels: they never feed
/// back into scheduling or decisions, and they are excluded from decision
/// digests and benchmark baselines.
#[derive(Clone, Copy, Debug, Default)]
pub struct BackendStats {
    /// Deliveries handed to the carrier.
    pub deliveries: u64,
    /// Services handed to the carrier.
    pub executions: u64,
    /// Profiling-window barriers completed.
    pub windows_closed: u64,
    /// Window barriers whose carrier counts diverged from the
    /// coordinator's (lost or duplicated carriage; gated to 0 by parity).
    pub window_mismatches: u64,
    /// Elasticity-round barriers completed.
    pub rounds: u64,
    /// Worker threads ever spawned.
    pub workers_spawned: u64,
    /// Wall-clock nanoseconds since the backend was created (0 under sim).
    pub wall_ns: u64,
    /// Simulated service time carried by workers, in nanoseconds.
    pub worker_busy_ns: u64,
    /// Total transport latency over sampled deliveries, ns. Wall-clock
    /// under live; deterministic *injected* (chaos link-degradation) delay
    /// under net.
    pub channel_ns_total: u64,
    /// Worst transport latency over sampled deliveries, ns.
    pub channel_ns_max: u64,
    /// Deliveries with a transport-latency sample.
    pub channel_samples: u64,
    /// Wire frames written by the coordinator (net backend only).
    pub frames_sent: u64,
    /// Wire frames read back by the coordinator (net backend only).
    pub frames_received: u64,
    /// Wire bytes written by the coordinator (net backend only).
    pub wire_bytes_sent: u64,
    /// Wire bytes read back by the coordinator (net backend only).
    pub wire_bytes_received: u64,
    /// Most frames ever outstanding between two carrier barriers (net
    /// backend only): frames written since the last fully-acked barrier.
    pub max_inflight_frames: u64,
    /// LEM report rows published to the carrier.
    pub control_reports: u64,
    /// GEM control queries carried.
    pub control_queries: u64,
    /// Query replies carried back. Carrier-dependent fan-out: one merged
    /// reply under sim, one per in-scope worker under live/net.
    pub control_replies: u64,
    /// Round decisions broadcast.
    pub control_decisions: u64,
    /// Wire bytes of control-plane traffic, both directions (net backend
    /// only; 0 under sim/live where control rides channels, not bytes).
    pub control_wire_bytes: u64,
}

impl BackendStats {
    /// Mean wall-clock transport latency in microseconds (0 when no
    /// samples were taken, e.g. under sim).
    pub fn channel_latency_us_mean(&self) -> f64 {
        if self.channel_samples == 0 {
            0.0
        } else {
            self.channel_ns_total as f64 / self.channel_samples as f64 / 1e3
        }
    }
}

/// The carrier surface under the actor runtime.
///
/// # Contract
///
/// The caller (the runtime's single-threaded coordinator) promises:
///
/// - [`ExecutionBackend::server_up`] precedes any [`Delivery`] or
///   [`Execution`] naming that server; [`ExecutionBackend::server_down`]
///   ends the server's stream (a later `server_up` re-opens it — reboots).
/// - [`ExecutionBackend::window_close`] is called once per profiling
///   window, after the window's last delivery and before the next window's
///   first; `generation` strictly increases.
/// - Nothing the backend returns may alter logical scheduling: clock reads
///   and window reports feed measurements only, never decisions. This is
///   what makes sim/live decision sequences comparable at all.
///
/// The backend promises in return: `window_close` confirms every event of
/// the window reached its carrier exactly once (`matched`), and
/// `monotonic_ns` never decreases.
pub trait ExecutionBackend {
    /// Which backend this is.
    fn kind(&self) -> BackendKind;

    /// Nanoseconds on the backend's monotonic clock. Sim returns 0 —
    /// virtual time lives in the event queue, and nothing wall-clock
    /// dependent may leak into simulated results.
    fn monotonic_ns(&self) -> u64;

    /// Opens (or re-opens, after a crash/reboot) a server's carrier.
    fn server_up(&mut self, server: u32, vcpus: u32);

    /// Closes a server's carrier, draining its in-flight accounting.
    fn server_down(&mut self, server: u32);

    /// Carries one message delivery.
    fn transmit(&mut self, delivery: Delivery);

    /// Carries one message service.
    fn execute(&mut self, execution: Execution);

    /// Closes a profiling window: barriers all carriers and verifies the
    /// window's event counts arrived exactly once.
    fn window_close(&mut self, generation: u64) -> WindowReport;

    /// Barriers all carriers at an elasticity-round boundary.
    fn round_barrier(&mut self, round: u64);

    /// Publishes one server's LEM report row to the carrier — the REPORT
    /// step of the control plane. Called once per running server when a
    /// profiling window closes (and once, with a zero-utilization row, when
    /// a server boots mid-window), before any query against `generation`.
    /// The row must be a byte-exact copy of the coordinator's snapshot
    /// data: carriers hold it verbatim and echo it back in query replies.
    fn publish_report(&mut self, generation: u64, report: &ServerReport);

    /// Carries one control-plane message.
    ///
    /// For [`ControlMsg::Query`] the call is synchronous: the carrier
    /// routes the query to every LEM holding in-scope reports and returns
    /// their replies in a deterministic order (scope-group order under
    /// net, server order under live, one merged reply under sim). For
    /// [`ControlMsg::Decision`] the message is broadcast and the return is
    /// empty. [`ControlMsg::Reply`] never originates at the coordinator.
    ///
    /// This is the one deliberate relaxation of the "nothing the backend
    /// returns may alter logical scheduling" rule: replies *do* feed the
    /// GEM's decision — but every candidate row is a bit-exact copy of
    /// snapshot state the coordinator itself published, so the decision
    /// sequence remains a pure function of logical state (the N-way parity
    /// gate holds the carriages to that).
    fn control(&mut self, msg: &ControlMsg) -> Vec<ControlReply>;

    /// Announces the currently injected cross-server transport delay in
    /// nanoseconds (`0` clears it). The chaos layer calls this when a
    /// link-degradation fault is applied or healed, so transport-level
    /// carriers can map the fault onto their own medium — the net backend
    /// stamps subsequent remote deliveries with the delay and accounts it
    /// as deterministic transport latency. Purely a measurement
    /// side-channel: it must never alter carriage or logical scheduling.
    /// Default: ignored (sim and live model the delay in the event queue).
    fn link_delay(&mut self, _extra_ns: u64) {}

    /// Snapshot of the cumulative counters.
    fn stats(&self) -> BackendStats;

    /// Stops the carrier (joins worker threads under live). Idempotent.
    fn shutdown(&mut self);
}

/// Constructs the in-process backend for `kind`.
///
/// # Panics
///
/// [`BackendKind::Net`] cannot be constructed here: it spawns worker
/// *processes* and lives in the `plasma-net` crate (above this one in the
/// dependency order). The actor runtime routes `Net` to
/// `plasma_net::NetBackend::launch` itself; calling `make(Net)` directly
/// panics with a pointer there.
pub fn make(kind: BackendKind) -> Box<dyn ExecutionBackend> {
    match kind {
        BackendKind::Sim => Box::new(SimBackend::new()),
        BackendKind::Live => Box::new(LiveBackend::new()),
        BackendKind::Net => {
            panic!("BackendKind::Net is constructed by plasma_net::NetBackend::launch")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_parses_and_names() {
        assert_eq!(BackendKind::parse("sim"), Some(BackendKind::Sim));
        assert_eq!(BackendKind::parse("LIVE"), Some(BackendKind::Live));
        assert_eq!(BackendKind::parse("net"), Some(BackendKind::Net));
        assert_eq!(BackendKind::parse("tcp"), None);
        assert_eq!(BackendKind::Sim.name(), "sim");
        assert_eq!(BackendKind::Live.name(), "live");
        assert_eq!(BackendKind::Net.name(), "net");
        assert_eq!(BackendKind::default(), BackendKind::Sim);
    }

    /// Both backends, driven with the same event stream, agree on every
    /// logical counter — the unit-level version of the parity property.
    #[test]
    fn backends_agree_on_logical_counters() {
        let mut counts = Vec::new();
        for kind in [BackendKind::Sim, BackendKind::Live] {
            let mut b = make(kind);
            b.server_up(0, 2);
            b.server_up(1, 2);
            for i in 0..10u64 {
                b.transmit(Delivery {
                    server: (i % 2) as u32,
                    actor: i,
                    bytes: 64,
                    remote: i % 2 == 1,
                });
                b.execute(Execution {
                    server: (i % 2) as u32,
                    actor: i,
                    service_ns: 1_000,
                });
            }
            let w = b.window_close(1);
            assert!(w.matched, "{kind:?} window must verify");
            b.round_barrier(1);
            b.server_down(1);
            b.shutdown();
            let s = b.stats();
            counts.push((s.deliveries, s.executions, s.windows_closed, s.rounds));
        }
        assert_eq!(counts[0], counts[1]);
    }

    /// Both in-process carriers hand back the same merged candidate rows
    /// for a query — the control-plane half of the parity property.
    #[test]
    fn backends_agree_on_control_candidates() {
        let query = ControlQuery {
            gem: 0,
            round: 1,
            generation: 1,
            upper_bits: 0.8_f64.to_bits(),
            lower_bits: 0.2_f64.to_bits(),
            scope: vec![1, 0],
        };
        let mut merged = Vec::new();
        for kind in [BackendKind::Sim, BackendKind::Live] {
            let mut b = make(kind);
            b.server_up(0, 2);
            b.server_up(1, 2);
            for s in 0..2u32 {
                b.publish_report(
                    1,
                    &ServerReport {
                        server: s,
                        vcpus: 2,
                        actor_count: u64::from(s),
                        mem_bytes: 1 << 30,
                        total_speed_bits: 1000.0_f64.to_bits(),
                        net_bps_bits: 1e9_f64.to_bits(),
                        cpu_bits: (0.3 + f64::from(s) * 0.2).to_bits(),
                        mem_bits: 0.1_f64.to_bits(),
                        net_bits: 0.0_f64.to_bits(),
                    },
                );
            }
            let replies = b.control(&ControlMsg::Query(query.clone()));
            assert!(!replies.is_empty(), "{kind:?} must answer a query");
            // Reassemble candidates in scope order, as the GEM does.
            let mut rows = Vec::new();
            for &s in &query.scope {
                for r in &replies {
                    if let Some(c) = r.candidates.iter().find(|c| c.server == s) {
                        rows.push(*c);
                    }
                }
            }
            assert!(
                b.control(&ControlMsg::Decision(ControlDecision {
                    round: 1,
                    grow: 0,
                    shrink: 0,
                    migrations: vec![MigrationOrder {
                        actor: 7,
                        src: 0,
                        dst: 1
                    }],
                }))
                .is_empty(),
                "decisions return no replies"
            );
            let s = b.stats();
            assert_eq!((s.control_reports, s.control_queries), (2, 1));
            assert_eq!(s.control_decisions, 1);
            b.shutdown();
            merged.push(rows);
        }
        assert_eq!(merged[0].len(), 2);
        assert_eq!(merged[0], merged[1]);
    }
}
