//! Control-plane carriage types: the GEM↔LEM QUERY/QREPLY/DECISION traffic.
//!
//! PLASMA's elasticity protocol is a message-passing control plane: LEMs
//! REPORT per-server load profiles, GEMs QUERY the LEMs in their scope,
//! collect QREPLY candidate rows and scale votes, and publish a DECISION
//! (grow/shrink plus the migration list). This module defines those
//! messages as carriage structs so the [`ExecutionBackend::control`]
//! hook can route them over whatever medium the backend provides —
//! in-process audit under sim, cross-thread channels under live, TCP
//! frames under net — while the *decision logic* stays in the EMR.
//!
//! # Determinism contract
//!
//! A [`ServerReport`] is a byte-exact copy of the coordinator's snapshot
//! row for one server: every `f64` travels as its raw IEEE-754 bit
//! pattern ([`f64::to_bits`]), never re-derived or re-rounded by the
//! carrier. A query reply therefore reconstructs, bit for bit, the same
//! server rows the GEM would have read from the shared snapshot — which
//! is what keeps decision digests identical across sim, live, and net
//! carriages (the N-way parity gate).
//!
//! [`ExecutionBackend::control`]: crate::ExecutionBackend::control

use std::collections::BTreeMap;

/// One server's load-profile row as published by its LEM.
///
/// Fractions and capacities that are `f64` on the coordinator travel as
/// raw bit patterns (`*_bits` fields), making the struct `Eq`/hashable
/// and the wire codec canonical: re-encoding a decoded report reproduces
/// the input bytes exactly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerReport {
    /// The reporting server.
    pub server: u32,
    /// Number of vCPU lanes.
    pub vcpus: u32,
    /// Resident actor count.
    pub actor_count: u64,
    /// Memory capacity in bytes.
    pub mem_bytes: u64,
    /// Total compute throughput (work units/s), as `f64` bits.
    pub total_speed_bits: u64,
    /// NIC bandwidth (bits/s), as `f64` bits.
    pub net_bps_bits: u64,
    /// CPU utilization fraction over the last window, as `f64` bits.
    pub cpu_bits: u64,
    /// Memory utilization fraction, as `f64` bits.
    pub mem_bits: u64,
    /// Network utilization fraction, as `f64` bits.
    pub net_bits: u64,
}

impl ServerReport {
    /// CPU utilization fraction.
    pub fn cpu(&self) -> f64 {
        f64::from_bits(self.cpu_bits)
    }
}

/// A GEM's per-round query to the LEMs in its scope.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ControlQuery {
    /// The querying GEM's index.
    pub gem: u32,
    /// The elasticity round (the plan id).
    pub round: u64,
    /// The snapshot generation the GEM plans against. Replies only carry
    /// candidates whose published report matches this generation.
    pub generation: u64,
    /// The scale-out CPU threshold the GEM votes with, as `f64` bits.
    pub upper_bits: u64,
    /// The scale-in CPU threshold, as `f64` bits.
    pub lower_bits: u64,
    /// Servers in the GEM's scope, in the GEM's assignment order.
    pub scope: Vec<u32>,
}

/// A carrier-side answer to a [`ControlQuery`]: the candidate rows it
/// holds for the queried scope, plus its advisory scale votes.
///
/// Under net each worker process answers for its own server group, so a
/// GEM's full candidate set is the merge of every group's reply; the
/// votes are advisory partial votes over the responder's subset (the GEM
/// recomputes the authoritative vote over the merged candidates).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ControlReply {
    /// Echo of the querying GEM's index.
    pub gem: u32,
    /// Echo of the round.
    pub round: u64,
    /// Echo of the snapshot generation.
    pub generation: u64,
    /// Advisory scale-out vote over this responder's candidates.
    pub vote_out: bool,
    /// Advisory scale-in vote over this responder's candidates.
    pub vote_in: bool,
    /// Candidate rows held for the queried scope, in scope order.
    pub candidates: Vec<ServerReport>,
}

/// One migration order inside a [`ControlDecision`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MigrationOrder {
    /// The migrating actor.
    pub actor: u64,
    /// The source server.
    pub src: u32,
    /// The destination server.
    pub dst: u32,
}

/// The decision a round published: grow/shrink counts plus every admitted
/// migration. Broadcast to all carriers so the decision sequence is
/// reconstructable from message traffic alone.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ControlDecision {
    /// The elasticity round the decision closes.
    pub round: u64,
    /// Servers requested up by this round.
    pub grow: u32,
    /// Servers chosen to drain by this round.
    pub shrink: u32,
    /// Admitted migrations, in admission order.
    pub migrations: Vec<MigrationOrder>,
}

/// A control-plane message handed to [`ExecutionBackend::control`].
///
/// [`ExecutionBackend::control`]: crate::ExecutionBackend::control
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ControlMsg {
    /// GEM → LEMs: request candidate rows and votes for a scope.
    Query(ControlQuery),
    /// LEM → GEM: candidate rows and advisory votes.
    Reply(ControlReply),
    /// GEM → all: the round's published decision.
    Decision(ControlDecision),
}

/// Majority scale votes over a set of candidate reports.
///
/// This is the report-level twin of `gem::scale_votes` in `plasma-emr`
/// (`(any cpu > upper && all cpu >= lower, all cpu < lower)`, empty →
/// neither); a cross-crate test pins the two formulas together. Votes
/// computed here are advisory — the GEM recomputes them over the merged
/// candidate set.
pub fn report_scale_votes(candidates: &[ServerReport], upper: f64, lower: f64) -> (bool, bool) {
    if candidates.is_empty() {
        return (false, false);
    }
    let any_over = candidates.iter().any(|s| s.cpu() > upper);
    let none_idle = candidates.iter().all(|s| s.cpu() >= lower);
    let all_under = candidates.iter().all(|s| s.cpu() < lower);
    (any_over && none_idle, all_under)
}

/// Answers a query from a held report set: the pure evaluation every
/// carrier shares (the sim backend calls it inline; each net worker and
/// live worker thread calls it against the reports it holds).
///
/// Candidates are the held rows named by `query.scope`, **in scope
/// order** — the same order `EvalCtx::scoped` materializes server rows
/// in, which is what lets the GEM reassemble a byte-identical evaluation
/// context from merged replies. Held rows from a different generation
/// than the query's are skipped (a reply never mixes generations).
pub fn answer_query(
    held_generation: u64,
    held: &BTreeMap<u32, ServerReport>,
    query: &ControlQuery,
) -> ControlReply {
    let candidates: Vec<ServerReport> = if held_generation == query.generation {
        query
            .scope
            .iter()
            .filter_map(|s| held.get(s))
            .copied()
            .collect()
    } else {
        Vec::new()
    };
    let (vote_out, vote_in) = report_scale_votes(
        &candidates,
        f64::from_bits(query.upper_bits),
        f64::from_bits(query.lower_bits),
    );
    ControlReply {
        gem: query.gem,
        round: query.round,
        generation: query.generation,
        vote_out,
        vote_in,
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(server: u32, cpu: f64) -> ServerReport {
        ServerReport {
            server,
            vcpus: 2,
            actor_count: 3,
            mem_bytes: 1 << 30,
            total_speed_bits: 1000.0_f64.to_bits(),
            net_bps_bits: 1e9_f64.to_bits(),
            cpu_bits: cpu.to_bits(),
            mem_bits: 0.1_f64.to_bits(),
            net_bits: 0.2_f64.to_bits(),
        }
    }

    #[test]
    fn votes_match_gem_formula() {
        // Empty: neither direction.
        assert_eq!(report_scale_votes(&[], 0.8, 0.2), (false, false));
        // One over, none idle: out.
        let c = [report(0, 0.9), report(1, 0.5)];
        assert_eq!(report_scale_votes(&c, 0.8, 0.2), (true, false));
        // One over but another idle: neither (rebalance first).
        let c = [report(0, 0.9), report(1, 0.1)];
        assert_eq!(report_scale_votes(&c, 0.8, 0.2), (false, false));
        // All under lower: in.
        let c = [report(0, 0.1), report(1, 0.15)];
        assert_eq!(report_scale_votes(&c, 0.8, 0.2), (false, true));
    }

    #[test]
    fn answer_preserves_scope_order_and_generation() {
        let mut held = BTreeMap::new();
        held.insert(2, report(2, 0.5));
        held.insert(7, report(7, 0.9));
        let query = ControlQuery {
            gem: 1,
            round: 4,
            generation: 9,
            upper_bits: 0.8_f64.to_bits(),
            lower_bits: 0.2_f64.to_bits(),
            // Scope order is not id order; server 5 is not held.
            scope: vec![7, 5, 2],
        };
        let reply = answer_query(9, &held, &query);
        assert_eq!(
            reply.candidates.iter().map(|c| c.server).collect::<Vec<_>>(),
            vec![7, 2],
            "candidates follow scope order, holes skipped"
        );
        assert!(reply.vote_out && !reply.vote_in);
        assert_eq!((reply.gem, reply.round, reply.generation), (1, 4, 9));

        // A stale held generation yields no candidates and no votes.
        let stale = answer_query(8, &held, &query);
        assert!(stale.candidates.is_empty());
        assert_eq!((stale.vote_out, stale.vote_in), (false, false));
    }
}
