//! Wire encoding for the carriage types.
//!
//! The multi-process TCP backend (`plasma-net`) serializes every
//! [`Delivery`] and [`Execution`] onto a hand-rolled binary wire format.
//! The codec lives here, next to the types themselves, so the carriage
//! structs and their byte layout cannot drift apart; the frame layer on
//! top (length prefix, version byte, message kinds) lives in `plasma-net`.
//!
//! Layout rules, chosen once and applied everywhere:
//!
//! - **Endianness is explicit**: every multi-byte integer is big-endian
//!   (network byte order). No host-order field ever touches the wire.
//! - **Fixed width**: `u8`/`u32`/`u64` only — no varints, no padding.
//! - **Canonical booleans**: exactly `0` or `1`; any other byte is a
//!   [`DecodeError::BadBool`]. This is what makes re-encoding a decoded
//!   value reproduce the input bytes exactly (the fuzz round-trip
//!   property).
//! - **No wire-level `serde`**: the format is hand-rolled for the same
//!   reason the BENCH JSON writer is — the byte layout is part of the
//!   protocol contract and must not change under us when a dependency
//!   changes its derive output.

use crate::control::{ControlDecision, ControlQuery, ControlReply, MigrationOrder, ServerReport};
use crate::{Delivery, Execution};

/// Why a buffer failed to decode.
///
/// Every variant is a *clean* failure: decoders return these instead of
/// panicking or reading past the input, which is the property the
/// `net_frame` fuzz target drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the value did.
    Truncated,
    /// A boolean byte was neither `0` nor `1`.
    BadBool(u8),
    /// A frame announced an unsupported protocol version.
    BadVersion(u8),
    /// A frame announced an unknown message kind.
    BadKind(u8),
    /// A frame announced a body longer than the protocol allows.
    Oversize(u64),
    /// A frame body had bytes left over after its payload decoded.
    Trailing {
        /// Bytes the payload consumed.
        consumed: usize,
        /// Bytes the frame header announced.
        announced: usize,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "input truncated mid-value"),
            DecodeError::BadBool(b) => write!(f, "non-canonical boolean byte {b:#04x}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            DecodeError::BadKind(k) => write!(f, "unknown message kind {k:#04x}"),
            DecodeError::Oversize(n) => write!(f, "frame body of {n} bytes exceeds the cap"),
            DecodeError::Trailing {
                consumed,
                announced,
            } => write!(
                f,
                "frame body decoded {consumed} of {announced} announced bytes"
            ),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A bounds-checked reader over a wire buffer.
///
/// Reads advance a cursor and return [`DecodeError::Truncated`] instead of
/// slicing past the end — torn TCP reads and fuzzed garbage both land here.
#[derive(Debug)]
pub struct WireCursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireCursor<'a> {
    /// Wraps a buffer with the cursor at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        WireCursor { buf, pos: 0 }
    }

    /// Bytes consumed so far.
    pub fn consumed(&self) -> usize {
        self.pos
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a big-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a canonical boolean (`0` / `1` only).
    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(DecodeError::BadBool(b)),
        }
    }
}

/// Appends a big-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Appends a big-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Appends a canonical boolean byte.
pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

impl Delivery {
    /// Wire size of an encoded delivery, in bytes.
    pub const WIRE_LEN: usize = 4 + 8 + 8 + 1;

    /// Appends the wire encoding: `server:u32 actor:u64 bytes:u64 remote:bool`.
    pub fn wire_encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.server);
        put_u64(out, self.actor);
        put_u64(out, self.bytes);
        put_bool(out, self.remote);
    }

    /// Decodes a delivery from the cursor.
    pub fn wire_decode(c: &mut WireCursor<'_>) -> Result<Self, DecodeError> {
        Ok(Delivery {
            server: c.u32()?,
            actor: c.u64()?,
            bytes: c.u64()?,
            remote: c.bool()?,
        })
    }
}

impl Execution {
    /// Wire size of an encoded execution, in bytes.
    pub const WIRE_LEN: usize = 4 + 8 + 8;

    /// Appends the wire encoding: `server:u32 actor:u64 service_ns:u64`.
    pub fn wire_encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.server);
        put_u64(out, self.actor);
        put_u64(out, self.service_ns);
    }

    /// Decodes an execution from the cursor.
    pub fn wire_decode(c: &mut WireCursor<'_>) -> Result<Self, DecodeError> {
        Ok(Execution {
            server: c.u32()?,
            actor: c.u64()?,
            service_ns: c.u64()?,
        })
    }
}

/// Reads a `u32` element count and verifies the buffer can possibly hold
/// that many `item_len`-byte elements, so a corrupt count fails as a clean
/// [`DecodeError::Truncated`] instead of a giant allocation.
fn counted(c: &mut WireCursor<'_>, item_len: usize) -> Result<usize, DecodeError> {
    let n = c.u32()? as usize;
    if n.saturating_mul(item_len) > c.remaining() {
        return Err(DecodeError::Truncated);
    }
    Ok(n)
}

impl ServerReport {
    /// Wire size of an encoded report, in bytes.
    pub const WIRE_LEN: usize = 4 + 4 + 8 * 7;

    /// Appends the wire encoding: `server:u32 vcpus:u32 actor_count:u64
    /// mem_bytes:u64 total_speed:u64 net_bps:u64 cpu:u64 mem:u64 net:u64`
    /// (the trailing five are `f64` bit patterns).
    pub fn wire_encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.server);
        put_u32(out, self.vcpus);
        put_u64(out, self.actor_count);
        put_u64(out, self.mem_bytes);
        put_u64(out, self.total_speed_bits);
        put_u64(out, self.net_bps_bits);
        put_u64(out, self.cpu_bits);
        put_u64(out, self.mem_bits);
        put_u64(out, self.net_bits);
    }

    /// Decodes a report from the cursor.
    pub fn wire_decode(c: &mut WireCursor<'_>) -> Result<Self, DecodeError> {
        Ok(ServerReport {
            server: c.u32()?,
            vcpus: c.u32()?,
            actor_count: c.u64()?,
            mem_bytes: c.u64()?,
            total_speed_bits: c.u64()?,
            net_bps_bits: c.u64()?,
            cpu_bits: c.u64()?,
            mem_bits: c.u64()?,
            net_bits: c.u64()?,
        })
    }
}

impl ControlQuery {
    /// Appends the wire encoding: `gem:u32 round:u64 generation:u64
    /// upper:u64 lower:u64 n:u32 scope:[u32; n]`.
    pub fn wire_encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.gem);
        put_u64(out, self.round);
        put_u64(out, self.generation);
        put_u64(out, self.upper_bits);
        put_u64(out, self.lower_bits);
        put_u32(out, self.scope.len() as u32);
        for &s in &self.scope {
            put_u32(out, s);
        }
    }

    /// Decodes a query from the cursor.
    pub fn wire_decode(c: &mut WireCursor<'_>) -> Result<Self, DecodeError> {
        let gem = c.u32()?;
        let round = c.u64()?;
        let generation = c.u64()?;
        let upper_bits = c.u64()?;
        let lower_bits = c.u64()?;
        let n = counted(c, 4)?;
        let mut scope = Vec::with_capacity(n);
        for _ in 0..n {
            scope.push(c.u32()?);
        }
        Ok(ControlQuery {
            gem,
            round,
            generation,
            upper_bits,
            lower_bits,
            scope,
        })
    }
}

impl ControlReply {
    /// Appends the wire encoding: `gem:u32 round:u64 generation:u64
    /// vote_out:bool vote_in:bool n:u32 candidates:[ServerReport; n]`.
    pub fn wire_encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.gem);
        put_u64(out, self.round);
        put_u64(out, self.generation);
        put_bool(out, self.vote_out);
        put_bool(out, self.vote_in);
        put_u32(out, self.candidates.len() as u32);
        for cand in &self.candidates {
            cand.wire_encode(out);
        }
    }

    /// Decodes a reply from the cursor.
    pub fn wire_decode(c: &mut WireCursor<'_>) -> Result<Self, DecodeError> {
        let gem = c.u32()?;
        let round = c.u64()?;
        let generation = c.u64()?;
        let vote_out = c.bool()?;
        let vote_in = c.bool()?;
        let n = counted(c, ServerReport::WIRE_LEN)?;
        let mut candidates = Vec::with_capacity(n);
        for _ in 0..n {
            candidates.push(ServerReport::wire_decode(c)?);
        }
        Ok(ControlReply {
            gem,
            round,
            generation,
            vote_out,
            vote_in,
            candidates,
        })
    }
}

impl MigrationOrder {
    /// Wire size of an encoded migration order, in bytes.
    pub const WIRE_LEN: usize = 8 + 4 + 4;

    /// Appends the wire encoding: `actor:u64 src:u32 dst:u32`.
    pub fn wire_encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.actor);
        put_u32(out, self.src);
        put_u32(out, self.dst);
    }

    /// Decodes a migration order from the cursor.
    pub fn wire_decode(c: &mut WireCursor<'_>) -> Result<Self, DecodeError> {
        Ok(MigrationOrder {
            actor: c.u64()?,
            src: c.u32()?,
            dst: c.u32()?,
        })
    }
}

impl ControlDecision {
    /// Appends the wire encoding: `round:u64 grow:u32 shrink:u32 n:u32
    /// migrations:[MigrationOrder; n]`.
    pub fn wire_encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.round);
        put_u32(out, self.grow);
        put_u32(out, self.shrink);
        put_u32(out, self.migrations.len() as u32);
        for m in &self.migrations {
            m.wire_encode(out);
        }
    }

    /// Decodes a decision from the cursor.
    pub fn wire_decode(c: &mut WireCursor<'_>) -> Result<Self, DecodeError> {
        let round = c.u64()?;
        let grow = c.u32()?;
        let shrink = c.u32()?;
        let n = counted(c, MigrationOrder::WIRE_LEN)?;
        let mut migrations = Vec::with_capacity(n);
        for _ in 0..n {
            migrations.push(MigrationOrder::wire_decode(c)?);
        }
        Ok(ControlDecision {
            round,
            grow,
            shrink,
            migrations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_round_trips_and_is_canonical() {
        let d = Delivery {
            server: 7,
            actor: 0xDEAD_BEEF_0BAD_F00D,
            bytes: 4096,
            remote: true,
        };
        let mut buf = Vec::new();
        d.wire_encode(&mut buf);
        assert_eq!(buf.len(), Delivery::WIRE_LEN);
        let mut c = WireCursor::new(&buf);
        let back = Delivery::wire_decode(&mut c).unwrap();
        assert_eq!(c.consumed(), buf.len());
        let mut again = Vec::new();
        back.wire_encode(&mut again);
        assert_eq!(buf, again, "re-encoding must reproduce the bytes");
    }

    #[test]
    fn execution_round_trips() {
        let e = Execution {
            server: 3,
            actor: 42,
            service_ns: 1_000_000,
        };
        let mut buf = Vec::new();
        e.wire_encode(&mut buf);
        assert_eq!(buf.len(), Execution::WIRE_LEN);
        let back = Execution::wire_decode(&mut WireCursor::new(&buf)).unwrap();
        assert_eq!(
            (back.server, back.actor, back.service_ns),
            (3, 42, 1_000_000)
        );
    }

    #[test]
    fn truncation_is_a_clean_error_at_every_split() {
        let d = Delivery {
            server: 1,
            actor: 2,
            bytes: 3,
            remote: false,
        };
        let mut buf = Vec::new();
        d.wire_encode(&mut buf);
        for cut in 0..buf.len() {
            let err = Delivery::wire_decode(&mut WireCursor::new(&buf[..cut]));
            assert_eq!(err.unwrap_err(), DecodeError::Truncated, "cut at {cut}");
        }
    }

    #[test]
    fn non_canonical_bool_is_rejected() {
        let d = Delivery {
            server: 1,
            actor: 2,
            bytes: 3,
            remote: true,
        };
        let mut buf = Vec::new();
        d.wire_encode(&mut buf);
        *buf.last_mut().unwrap() = 2;
        assert_eq!(
            Delivery::wire_decode(&mut WireCursor::new(&buf)).unwrap_err(),
            DecodeError::BadBool(2)
        );
    }

    #[test]
    fn server_report_wire_len_is_exact() {
        let r = ServerReport {
            server: 9,
            vcpus: 4,
            actor_count: 17,
            mem_bytes: 1 << 34,
            total_speed_bits: 2000.0_f64.to_bits(),
            net_bps_bits: 1e10_f64.to_bits(),
            cpu_bits: 0.75_f64.to_bits(),
            mem_bits: 0.5_f64.to_bits(),
            net_bits: 0.25_f64.to_bits(),
        };
        let mut buf = Vec::new();
        r.wire_encode(&mut buf);
        assert_eq!(buf.len(), ServerReport::WIRE_LEN);
        assert_eq!(ServerReport::wire_decode(&mut WireCursor::new(&buf)), Ok(r));
    }

    #[test]
    fn corrupt_counts_fail_cleanly() {
        let q = ControlQuery {
            gem: 0,
            round: 1,
            generation: 2,
            upper_bits: 0,
            lower_bits: 0,
            scope: vec![1, 2, 3],
        };
        let mut buf = Vec::new();
        q.wire_encode(&mut buf);
        // Inflate the element count far past the buffer: the decoder must
        // reject it without attempting the allocation.
        let at = 4 + 8 * 4;
        buf[at..at + 4].copy_from_slice(&u32::MAX.to_be_bytes());
        assert_eq!(
            ControlQuery::wire_decode(&mut WireCursor::new(&buf)).unwrap_err(),
            DecodeError::Truncated
        );
    }

    mod control_props {
        use super::*;
        use proptest::prelude::*;

        /// Full-width integer strategies (the offline proptest stand-in has
        /// range strategies only; `..MAX` loses one value, which is fine).
        fn u64s() -> std::ops::Range<u64> {
            0..u64::MAX
        }

        fn u32s() -> std::ops::Range<u32> {
            0..u32::MAX
        }

        fn bools() -> impl Strategy<Value = bool> {
            (0u8..2).prop_map(|b| b == 1)
        }

        fn arb_report() -> impl Strategy<Value = ServerReport> {
            (
                u32s(),
                u32s(),
                u64s(),
                u64s(),
                (u64s(), u64s()),
                (u64s(), u64s(), u64s()),
            )
                .prop_map(
                    |(server, vcpus, actor_count, mem_bytes, (speed, bps), (cpu, mem, net))| {
                        ServerReport {
                            server,
                            vcpus,
                            actor_count,
                            mem_bytes,
                            total_speed_bits: speed,
                            net_bps_bits: bps,
                            cpu_bits: cpu,
                            mem_bits: mem,
                            net_bits: net,
                        }
                    },
                )
        }

        proptest! {
            /// Decode∘encode is the identity and re-encoding reproduces the
            /// bytes — for arbitrary queries, including raw-bit NaN floats.
            #[test]
            fn query_round_trips(
                gem in u32s(),
                round in u64s(),
                generation in u64s(),
                upper_bits in u64s(),
                lower_bits in u64s(),
                scope in proptest::collection::vec(u32s(), 0..64),
            ) {
                let q = ControlQuery { gem, round, generation, upper_bits, lower_bits, scope };
                let mut buf = Vec::new();
                q.wire_encode(&mut buf);
                let mut c = WireCursor::new(&buf);
                let back = ControlQuery::wire_decode(&mut c).unwrap();
                prop_assert_eq!(c.consumed(), buf.len());
                prop_assert_eq!(&back, &q);
                let mut again = Vec::new();
                back.wire_encode(&mut again);
                prop_assert_eq!(again, buf);
            }

            #[test]
            fn reply_round_trips(
                gem in u32s(),
                round in u64s(),
                generation in u64s(),
                vote_out in bools(),
                vote_in in bools(),
                candidates in proptest::collection::vec(arb_report(), 0..32),
            ) {
                let r = ControlReply { gem, round, generation, vote_out, vote_in, candidates };
                let mut buf = Vec::new();
                r.wire_encode(&mut buf);
                let mut c = WireCursor::new(&buf);
                let back = ControlReply::wire_decode(&mut c).unwrap();
                prop_assert_eq!(c.consumed(), buf.len());
                prop_assert_eq!(&back, &r);
                let mut again = Vec::new();
                back.wire_encode(&mut again);
                prop_assert_eq!(again, buf);
            }

            #[test]
            fn decision_round_trips(
                round in u64s(),
                grow in u32s(),
                shrink in u32s(),
                migrations in proptest::collection::vec(
                    (u64s(), u32s(), u32s())
                        .prop_map(|(actor, src, dst)| MigrationOrder { actor, src, dst }),
                    0..64,
                ),
            ) {
                let d = ControlDecision { round, grow, shrink, migrations };
                let mut buf = Vec::new();
                d.wire_encode(&mut buf);
                let mut c = WireCursor::new(&buf);
                let back = ControlDecision::wire_decode(&mut c).unwrap();
                prop_assert_eq!(c.consumed(), buf.len());
                prop_assert_eq!(&back, &d);
                let mut again = Vec::new();
                back.wire_encode(&mut again);
                prop_assert_eq!(again, buf);
            }

            /// Truncating an encoded reply at any byte fails cleanly.
            #[test]
            fn reply_truncation_is_clean(
                candidates in proptest::collection::vec(arb_report(), 0..8),
                frac in 0.0f64..1.0,
            ) {
                let r = ControlReply {
                    gem: 1, round: 2, generation: 3,
                    vote_out: false, vote_in: true, candidates,
                };
                let mut buf = Vec::new();
                r.wire_encode(&mut buf);
                let cut = (buf.len() as f64 * frac) as usize;
                prop_assert!(cut < buf.len());
                let err = ControlReply::wire_decode(&mut WireCursor::new(&buf[..cut]));
                prop_assert_eq!(err.unwrap_err(), DecodeError::Truncated);
            }
        }
    }
}
