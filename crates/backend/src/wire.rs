//! Wire encoding for the carriage types.
//!
//! The multi-process TCP backend (`plasma-net`) serializes every
//! [`Delivery`] and [`Execution`] onto a hand-rolled binary wire format.
//! The codec lives here, next to the types themselves, so the carriage
//! structs and their byte layout cannot drift apart; the frame layer on
//! top (length prefix, version byte, message kinds) lives in `plasma-net`.
//!
//! Layout rules, chosen once and applied everywhere:
//!
//! - **Endianness is explicit**: every multi-byte integer is big-endian
//!   (network byte order). No host-order field ever touches the wire.
//! - **Fixed width**: `u8`/`u32`/`u64` only — no varints, no padding.
//! - **Canonical booleans**: exactly `0` or `1`; any other byte is a
//!   [`DecodeError::BadBool`]. This is what makes re-encoding a decoded
//!   value reproduce the input bytes exactly (the fuzz round-trip
//!   property).
//! - **No wire-level `serde`**: the format is hand-rolled for the same
//!   reason the BENCH JSON writer is — the byte layout is part of the
//!   protocol contract and must not change under us when a dependency
//!   changes its derive output.

use crate::{Delivery, Execution};

/// Why a buffer failed to decode.
///
/// Every variant is a *clean* failure: decoders return these instead of
/// panicking or reading past the input, which is the property the
/// `net_frame` fuzz target drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the value did.
    Truncated,
    /// A boolean byte was neither `0` nor `1`.
    BadBool(u8),
    /// A frame announced an unsupported protocol version.
    BadVersion(u8),
    /// A frame announced an unknown message kind.
    BadKind(u8),
    /// A frame announced a body longer than the protocol allows.
    Oversize(u64),
    /// A frame body had bytes left over after its payload decoded.
    Trailing {
        /// Bytes the payload consumed.
        consumed: usize,
        /// Bytes the frame header announced.
        announced: usize,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "input truncated mid-value"),
            DecodeError::BadBool(b) => write!(f, "non-canonical boolean byte {b:#04x}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            DecodeError::BadKind(k) => write!(f, "unknown message kind {k:#04x}"),
            DecodeError::Oversize(n) => write!(f, "frame body of {n} bytes exceeds the cap"),
            DecodeError::Trailing {
                consumed,
                announced,
            } => write!(
                f,
                "frame body decoded {consumed} of {announced} announced bytes"
            ),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A bounds-checked reader over a wire buffer.
///
/// Reads advance a cursor and return [`DecodeError::Truncated`] instead of
/// slicing past the end — torn TCP reads and fuzzed garbage both land here.
#[derive(Debug)]
pub struct WireCursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireCursor<'a> {
    /// Wraps a buffer with the cursor at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        WireCursor { buf, pos: 0 }
    }

    /// Bytes consumed so far.
    pub fn consumed(&self) -> usize {
        self.pos
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a big-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a canonical boolean (`0` / `1` only).
    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(DecodeError::BadBool(b)),
        }
    }
}

/// Appends a big-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Appends a big-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Appends a canonical boolean byte.
pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

impl Delivery {
    /// Wire size of an encoded delivery, in bytes.
    pub const WIRE_LEN: usize = 4 + 8 + 8 + 1;

    /// Appends the wire encoding: `server:u32 actor:u64 bytes:u64 remote:bool`.
    pub fn wire_encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.server);
        put_u64(out, self.actor);
        put_u64(out, self.bytes);
        put_bool(out, self.remote);
    }

    /// Decodes a delivery from the cursor.
    pub fn wire_decode(c: &mut WireCursor<'_>) -> Result<Self, DecodeError> {
        Ok(Delivery {
            server: c.u32()?,
            actor: c.u64()?,
            bytes: c.u64()?,
            remote: c.bool()?,
        })
    }
}

impl Execution {
    /// Wire size of an encoded execution, in bytes.
    pub const WIRE_LEN: usize = 4 + 8 + 8;

    /// Appends the wire encoding: `server:u32 actor:u64 service_ns:u64`.
    pub fn wire_encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.server);
        put_u64(out, self.actor);
        put_u64(out, self.service_ns);
    }

    /// Decodes an execution from the cursor.
    pub fn wire_decode(c: &mut WireCursor<'_>) -> Result<Self, DecodeError> {
        Ok(Execution {
            server: c.u32()?,
            actor: c.u64()?,
            service_ns: c.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_round_trips_and_is_canonical() {
        let d = Delivery {
            server: 7,
            actor: 0xDEAD_BEEF_0BAD_F00D,
            bytes: 4096,
            remote: true,
        };
        let mut buf = Vec::new();
        d.wire_encode(&mut buf);
        assert_eq!(buf.len(), Delivery::WIRE_LEN);
        let mut c = WireCursor::new(&buf);
        let back = Delivery::wire_decode(&mut c).unwrap();
        assert_eq!(c.consumed(), buf.len());
        let mut again = Vec::new();
        back.wire_encode(&mut again);
        assert_eq!(buf, again, "re-encoding must reproduce the bytes");
    }

    #[test]
    fn execution_round_trips() {
        let e = Execution {
            server: 3,
            actor: 42,
            service_ns: 1_000_000,
        };
        let mut buf = Vec::new();
        e.wire_encode(&mut buf);
        assert_eq!(buf.len(), Execution::WIRE_LEN);
        let back = Execution::wire_decode(&mut WireCursor::new(&buf)).unwrap();
        assert_eq!(
            (back.server, back.actor, back.service_ns),
            (3, 42, 1_000_000)
        );
    }

    #[test]
    fn truncation_is_a_clean_error_at_every_split() {
        let d = Delivery {
            server: 1,
            actor: 2,
            bytes: 3,
            remote: false,
        };
        let mut buf = Vec::new();
        d.wire_encode(&mut buf);
        for cut in 0..buf.len() {
            let err = Delivery::wire_decode(&mut WireCursor::new(&buf[..cut]));
            assert_eq!(err.unwrap_err(), DecodeError::Truncated, "cut at {cut}");
        }
    }

    #[test]
    fn non_canonical_bool_is_rejected() {
        let d = Delivery {
            server: 1,
            actor: 2,
            bytes: 3,
            remote: true,
        };
        let mut buf = Vec::new();
        d.wire_encode(&mut buf);
        *buf.last_mut().unwrap() = 2;
        assert_eq!(
            Delivery::wire_decode(&mut WireCursor::new(&buf)).unwrap_err(),
            DecodeError::BadBool(2)
        );
    }
}
