//! The simulated carrier: an audit-only adapter over the event loop.
//!
//! Under simulation the `plasma-sim` event queue *is* the transport and the
//! CPU — a pushed event is delivered exactly once, in deterministic order,
//! by construction. The backend therefore has nothing to carry; it only
//! mirrors the coordinator's counters so harnesses can assert that sim and
//! live runs saw identical event streams. Crucially it adds **zero** state
//! to the run: no RNG draws, no clock reads, no report scalars — a run with
//! this backend is byte-identical to one predating the backend layer.

use std::collections::BTreeMap;

use crate::control::{answer_query, ControlMsg, ControlReply, ServerReport};
use crate::{BackendKind, BackendStats, Delivery, Execution, ExecutionBackend, WindowReport};

/// Adapter wrapping the discrete-event loop. See the [module docs](self).
#[derive(Debug, Default)]
pub struct SimBackend {
    stats: BackendStats,
    window_deliveries: u64,
    window_executions: u64,
    live_servers: u64,
    /// Held LEM report rows, one per server, for `report_generation`.
    /// Under sim the coordinator *is* every LEM, so one map answers
    /// queries inline — the audit-only twin of the per-worker state the
    /// live and net carriers hold.
    reports: BTreeMap<u32, ServerReport>,
    report_generation: u64,
}

impl SimBackend {
    /// Creates the audit-only sim carrier.
    pub fn new() -> Self {
        SimBackend::default()
    }
}

impl ExecutionBackend for SimBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Sim
    }

    fn monotonic_ns(&self) -> u64 {
        // Virtual time lives in the event queue; the carrier clock is
        // identically zero so nothing host-dependent can leak into results.
        0
    }

    fn server_up(&mut self, _server: u32, _vcpus: u32) {
        self.live_servers += 1;
        self.stats.workers_spawned += 1;
    }

    fn server_down(&mut self, server: u32) {
        self.live_servers = self.live_servers.saturating_sub(1);
        self.reports.remove(&server);
    }

    fn transmit(&mut self, d: Delivery) {
        let _ = (d.server, d.actor, d.bytes, d.remote);
        self.stats.deliveries += 1;
        self.window_deliveries += 1;
    }

    fn execute(&mut self, e: Execution) {
        self.stats.executions += 1;
        self.stats.worker_busy_ns += e.service_ns;
        self.window_executions += 1;
    }

    fn window_close(&mut self, generation: u64) -> WindowReport {
        let report = WindowReport {
            generation,
            deliveries: self.window_deliveries,
            executions: self.window_executions,
            // The event queue delivers exactly once by construction.
            matched: true,
        };
        self.window_deliveries = 0;
        self.window_executions = 0;
        self.stats.windows_closed += 1;
        report
    }

    fn round_barrier(&mut self, _round: u64) {
        self.stats.rounds += 1;
    }

    fn publish_report(&mut self, generation: u64, report: &ServerReport) {
        if generation != self.report_generation {
            self.reports.clear();
            self.report_generation = generation;
        }
        self.reports.insert(report.server, *report);
        self.stats.control_reports += 1;
    }

    fn control(&mut self, msg: &ControlMsg) -> Vec<ControlReply> {
        match msg {
            ControlMsg::Query(q) => {
                self.stats.control_queries += 1;
                self.stats.control_replies += 1;
                vec![answer_query(self.report_generation, &self.reports, q)]
            }
            ControlMsg::Decision(_) => {
                self.stats.control_decisions += 1;
                Vec::new()
            }
            ControlMsg::Reply(_) => Vec::new(),
        }
    }

    fn stats(&self) -> BackendStats {
        self.stats
    }

    fn shutdown(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_partition_the_counters() {
        let mut b = SimBackend::new();
        b.server_up(0, 4);
        for i in 0..3 {
            b.transmit(Delivery {
                server: 0,
                actor: i,
                bytes: 1,
                remote: false,
            });
        }
        b.execute(Execution {
            server: 0,
            actor: 0,
            service_ns: 500,
        });
        let w1 = b.window_close(1);
        assert_eq!((w1.deliveries, w1.executions), (3, 1));
        assert!(w1.matched);
        let w2 = b.window_close(2);
        assert_eq!((w2.deliveries, w2.executions), (0, 0));
        assert_eq!(b.stats().deliveries, 3);
        assert_eq!(b.stats().worker_busy_ns, 500);
        assert_eq!(b.stats().windows_closed, 2);
        assert_eq!(b.monotonic_ns(), 0);
    }
}
