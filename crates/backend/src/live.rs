//! The live carrier: OS threads and real channels, conservatively stepped.
//!
//! A deployed PLASMA runtime cannot free-run its servers and still promise
//! the simulator's decision sequence — real thread interleaving is not
//! deterministic. This backend takes the conservative time-stepped design
//! instead: the logical event schedule stays single-threaded and
//! deterministic in the coordinator (the actor runtime), while the *carriage*
//! of every decision-relevant event is real. Each up server owns an OS
//! worker thread fed over a real channel; every delivery and service is
//! shipped to its server's worker, which does the per-window accounting and
//! wall-clock latency measurement on its own thread.
//!
//! Correctness is enforced at window barriers: closing a profiling window
//! sends a FIFO marker down every worker channel and waits for the acks.
//! Because the channels are FIFO, the ack proves every event sent before
//! the marker was received before it; the coordinator then compares the
//! workers' counts against its own. Any loss or duplication shows up as a
//! `window_mismatches` increment — which the parity tests and CI gate at 0.
//!
//! Wall-clock quantities (transport latency, busy time) are measured and
//! reported separately; they never influence the logical schedule, which is
//! what makes live decision sequences replay the simulator's exactly.

use std::collections::BTreeMap;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::control::{answer_query, ControlDecision, ControlMsg, ControlQuery, ControlReply};
use crate::{
    BackendKind, BackendStats, Delivery, Execution, ExecutionBackend, ServerReport, WindowReport,
};

/// How long a barrier waits for one worker ack before declaring the window
/// broken. Generous: a worker only does counter arithmetic per message.
const ACK_TIMEOUT: Duration = Duration::from_secs(10);

enum WorkerMsg {
    Deliver {
        bytes: u64,
        remote: bool,
        /// Coordinator clock at send; the worker's receive stamp minus this
        /// is the real cross-thread transport latency.
        sent_ns: u64,
    },
    Execute {
        service_ns: u64,
    },
    /// FIFO window barrier: report and reset the window counters.
    WindowMark {
        generation: u64,
        ack: Sender<WorkerWindow>,
    },
    /// FIFO round barrier: prove liveness at an elasticity boundary.
    RoundMark {
        ack: Sender<u32>,
    },
    /// LEM report row for the worker's own server.
    Report {
        generation: u64,
        report: ServerReport,
    },
    /// GEM query; the worker answers from the report rows it holds.
    Query {
        query: ControlQuery,
        ack: Sender<ControlReply>,
    },
    /// Round decision broadcast (accounting only on this carrier).
    Decision {
        decision: ControlDecision,
    },
    Shutdown,
}

/// One worker's accounting for one profiling window.
#[derive(Clone, Copy, Debug, Default)]
struct WorkerWindow {
    deliveries: u64,
    executions: u64,
    busy_ns: u64,
    channel_ns_total: u64,
    channel_ns_max: u64,
    channel_samples: u64,
    /// Control-plane carriage counts, verified at the barrier like the
    /// data-plane ones: report rows received, queries answered, replies
    /// returned, decisions seen.
    reports: u64,
    queries: u64,
    replies: u64,
    decisions: u64,
}

struct WorkerHandle {
    tx: Sender<WorkerMsg>,
    join: JoinHandle<()>,
}

/// The OS-thread carrier. See the [module docs](self).
pub struct LiveBackend {
    epoch: Instant,
    workers: BTreeMap<u32, WorkerHandle>,
    stats: BackendStats,
    /// Coordinator-side tallies for the open window, compared against the
    /// workers' counts at the barrier.
    sent_deliveries: u64,
    sent_executions: u64,
    sent_reports: u64,
    sent_queries: u64,
    recv_replies: u64,
    sent_decisions: u64,
    /// Partial-window accounting drained from workers that went down
    /// mid-window (crashes, decommissions); folded into the next barrier.
    retired: WorkerWindow,
    shut: bool,
}

impl Default for LiveBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl LiveBackend {
    /// Creates the live carrier; workers spawn as servers come up.
    pub fn new() -> Self {
        LiveBackend {
            epoch: Instant::now(),
            workers: BTreeMap::new(),
            stats: BackendStats::default(),
            sent_deliveries: 0,
            sent_executions: 0,
            sent_reports: 0,
            sent_queries: 0,
            recv_replies: 0,
            sent_decisions: 0,
            retired: WorkerWindow::default(),
            shut: false,
        }
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn fold(acc: &mut WorkerWindow, w: &WorkerWindow) {
        acc.deliveries += w.deliveries;
        acc.executions += w.executions;
        acc.busy_ns += w.busy_ns;
        acc.channel_ns_total += w.channel_ns_total;
        acc.channel_ns_max = acc.channel_ns_max.max(w.channel_ns_max);
        acc.channel_samples += w.channel_samples;
        acc.reports += w.reports;
        acc.queries += w.queries;
        acc.replies += w.replies;
        acc.decisions += w.decisions;
    }

    /// Barriers every live worker, returning the summed window accounting
    /// and whether every ack arrived.
    fn collect_windows(&mut self, generation: u64) -> (WorkerWindow, bool) {
        let (ack_tx, ack_rx): (Sender<WorkerWindow>, Receiver<WorkerWindow>) = unbounded();
        let mut expected = 0usize;
        for handle in self.workers.values() {
            if handle
                .tx
                .send(WorkerMsg::WindowMark {
                    generation,
                    ack: ack_tx.clone(),
                })
                .is_ok()
            {
                expected += 1;
            }
        }
        drop(ack_tx);
        let mut sum = WorkerWindow::default();
        let mut complete = expected == self.workers.len();
        for _ in 0..expected {
            match ack_rx.recv_timeout(ACK_TIMEOUT) {
                Ok(w) => Self::fold(&mut sum, &w),
                Err(_) => {
                    complete = false;
                    break;
                }
            }
        }
        (sum, complete)
    }
}

impl ExecutionBackend for LiveBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Live
    }

    fn monotonic_ns(&self) -> u64 {
        self.now_ns()
    }

    fn server_up(&mut self, server: u32, vcpus: u32) {
        // Re-announcing a live server (initial boot paths overlap with
        // reboot paths upstream) must not restart its carrier.
        if self.workers.contains_key(&server) {
            return;
        }
        let _ = vcpus;
        let (tx, rx): (Sender<WorkerMsg>, Receiver<WorkerMsg>) = unbounded();
        let epoch = self.epoch;
        let join = std::thread::Builder::new()
            .name(format!("plasma-srv-{server}"))
            .spawn(move || worker_loop(epoch, rx))
            .expect("spawn server worker thread");
        self.workers.insert(server, WorkerHandle { tx, join });
        self.stats.workers_spawned += 1;
    }

    fn server_down(&mut self, server: u32) {
        let Some(handle) = self.workers.remove(&server) else {
            return;
        };
        // Drain the worker's partial window before stopping it, so the next
        // barrier still balances: a crashed server's delivered messages were
        // delivered, even though the server is gone by window close.
        let (ack_tx, ack_rx) = unbounded();
        if handle
            .tx
            .send(WorkerMsg::WindowMark {
                generation: u64::MAX,
                ack: ack_tx,
            })
            .is_ok()
        {
            if let Ok(w) = ack_rx.recv_timeout(ACK_TIMEOUT) {
                Self::fold(&mut self.retired, &w);
            }
        }
        let _ = handle.tx.send(WorkerMsg::Shutdown);
        let _ = handle.join.join();
    }

    fn transmit(&mut self, d: Delivery) {
        let sent_ns = self.now_ns();
        if let Some(handle) = self.workers.get(&d.server) {
            if handle
                .tx
                .send(WorkerMsg::Deliver {
                    bytes: d.bytes,
                    remote: d.remote,
                    sent_ns,
                })
                .is_ok()
            {
                self.sent_deliveries += 1;
            }
        }
        self.stats.deliveries += 1;
    }

    fn execute(&mut self, e: Execution) {
        if let Some(handle) = self.workers.get(&e.server) {
            if handle
                .tx
                .send(WorkerMsg::Execute {
                    service_ns: e.service_ns,
                })
                .is_ok()
            {
                self.sent_executions += 1;
            }
        }
        self.stats.executions += 1;
    }

    fn window_close(&mut self, generation: u64) -> WindowReport {
        let (mut sum, complete) = self.collect_windows(generation);
        Self::fold(&mut sum, &self.retired.clone());
        self.retired = WorkerWindow::default();
        let matched = complete
            && sum.deliveries == self.sent_deliveries
            && sum.executions == self.sent_executions
            && sum.reports == self.sent_reports
            && sum.queries == self.sent_queries
            && sum.replies == self.recv_replies
            && sum.decisions == self.sent_decisions;
        let report = WindowReport {
            generation,
            deliveries: sum.deliveries,
            executions: sum.executions,
            matched,
        };
        self.stats.windows_closed += 1;
        if !matched {
            self.stats.window_mismatches += 1;
        }
        self.stats.worker_busy_ns += sum.busy_ns;
        self.stats.channel_ns_total += sum.channel_ns_total;
        self.stats.channel_ns_max = self.stats.channel_ns_max.max(sum.channel_ns_max);
        self.stats.channel_samples += sum.channel_samples;
        self.sent_deliveries = 0;
        self.sent_executions = 0;
        self.sent_reports = 0;
        self.sent_queries = 0;
        self.recv_replies = 0;
        self.sent_decisions = 0;
        report
    }

    fn round_barrier(&mut self, _round: u64) {
        let (ack_tx, ack_rx): (Sender<u32>, Receiver<u32>) = unbounded();
        let mut expected = 0usize;
        for handle in self.workers.values() {
            if handle
                .tx
                .send(WorkerMsg::RoundMark {
                    ack: ack_tx.clone(),
                })
                .is_ok()
            {
                expected += 1;
            }
        }
        drop(ack_tx);
        for _ in 0..expected {
            if ack_rx.recv_timeout(ACK_TIMEOUT).is_err() {
                self.stats.window_mismatches += 1;
                break;
            }
        }
        self.stats.rounds += 1;
    }

    fn publish_report(&mut self, generation: u64, report: &ServerReport) {
        if let Some(handle) = self.workers.get(&report.server) {
            if handle
                .tx
                .send(WorkerMsg::Report {
                    generation,
                    report: *report,
                })
                .is_ok()
            {
                self.sent_reports += 1;
            }
        }
        self.stats.control_reports += 1;
    }

    fn control(&mut self, msg: &ControlMsg) -> Vec<ControlReply> {
        match msg {
            ControlMsg::Query(q) => {
                self.stats.control_queries += 1;
                // Route the query to each in-scope worker with its own ack
                // channel and collect in scope order, so the reply sequence
                // is deterministic regardless of thread interleaving.
                let mut pending = Vec::new();
                for &server in &q.scope {
                    let Some(handle) = self.workers.get(&server) else {
                        continue;
                    };
                    let (ack_tx, ack_rx): (Sender<ControlReply>, Receiver<ControlReply>) =
                        unbounded();
                    if handle
                        .tx
                        .send(WorkerMsg::Query {
                            query: q.clone(),
                            ack: ack_tx,
                        })
                        .is_ok()
                    {
                        self.sent_queries += 1;
                        pending.push(ack_rx);
                    }
                }
                let mut replies = Vec::with_capacity(pending.len());
                for rx in pending {
                    if let Ok(reply) = rx.recv_timeout(ACK_TIMEOUT) {
                        self.recv_replies += 1;
                        replies.push(reply);
                    }
                }
                self.stats.control_replies += replies.len() as u64;
                replies
            }
            ControlMsg::Decision(d) => {
                self.stats.control_decisions += 1;
                for handle in self.workers.values() {
                    if handle
                        .tx
                        .send(WorkerMsg::Decision {
                            decision: d.clone(),
                        })
                        .is_ok()
                    {
                        self.sent_decisions += 1;
                    }
                }
                Vec::new()
            }
            ControlMsg::Reply(_) => Vec::new(),
        }
    }

    fn stats(&self) -> BackendStats {
        let mut s = self.stats;
        s.wall_ns = self.now_ns();
        s
    }

    fn shutdown(&mut self) {
        if self.shut {
            return;
        }
        self.shut = true;
        let servers: Vec<u32> = self.workers.keys().copied().collect();
        for server in servers {
            self.server_down(server);
        }
    }
}

impl Drop for LiveBackend {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The per-server worker: receive, account, ack barriers, answer queries
/// from the report rows it holds (its own server's only, on this carrier).
fn worker_loop(epoch: Instant, rx: Receiver<WorkerMsg>) {
    let mut window = WorkerWindow::default();
    let mut held: BTreeMap<u32, ServerReport> = BTreeMap::new();
    let mut held_generation = 0u64;
    while let Ok(msg) = rx.recv() {
        match msg {
            WorkerMsg::Deliver {
                bytes,
                remote,
                sent_ns,
            } => {
                let _ = (bytes, remote);
                let latency = (epoch.elapsed().as_nanos() as u64).saturating_sub(sent_ns);
                window.deliveries += 1;
                window.channel_ns_total += latency;
                window.channel_ns_max = window.channel_ns_max.max(latency);
                window.channel_samples += 1;
            }
            WorkerMsg::Execute { service_ns } => {
                window.executions += 1;
                window.busy_ns += service_ns;
            }
            WorkerMsg::WindowMark { generation, ack } => {
                let _ = generation;
                let _ = ack.send(window);
                window = WorkerWindow::default();
            }
            WorkerMsg::RoundMark { ack } => {
                let _ = ack.send(0);
            }
            WorkerMsg::Report { generation, report } => {
                if generation != held_generation {
                    held.clear();
                    held_generation = generation;
                }
                held.insert(report.server, report);
                window.reports += 1;
            }
            WorkerMsg::Query { query, ack } => {
                window.queries += 1;
                window.replies += 1;
                let _ = ack.send(answer_query(held_generation, &held, &query));
            }
            WorkerMsg::Decision { decision } => {
                let _ = decision;
                window.decisions += 1;
            }
            WorkerMsg::Shutdown => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deliver(b: &mut LiveBackend, server: u32, n: u64) {
        for i in 0..n {
            b.transmit(Delivery {
                server,
                actor: i,
                bytes: 8,
                remote: false,
            });
        }
    }

    #[test]
    fn window_barrier_verifies_exactly_once() {
        let mut b = LiveBackend::new();
        b.server_up(0, 2);
        b.server_up(1, 2);
        deliver(&mut b, 0, 5);
        deliver(&mut b, 1, 7);
        b.execute(Execution {
            server: 0,
            actor: 0,
            service_ns: 2_000,
        });
        let w = b.window_close(1);
        assert!(w.matched);
        assert_eq!(w.deliveries, 12);
        assert_eq!(w.executions, 1);
        // Counters reset per window.
        let w2 = b.window_close(2);
        assert!(w2.matched);
        assert_eq!(w2.deliveries, 0);
        b.shutdown();
        let s = b.stats();
        assert_eq!(s.window_mismatches, 0);
        assert_eq!(s.deliveries, 12);
        assert_eq!(s.worker_busy_ns, 2_000);
        assert_eq!(s.channel_samples, 12);
    }

    #[test]
    fn server_down_mid_window_still_balances() {
        let mut b = LiveBackend::new();
        b.server_up(0, 2);
        b.server_up(1, 2);
        deliver(&mut b, 1, 4);
        // Server 1 crashes before the window closes; its 4 deliveries must
        // still be confirmed by the barrier via the retired accounting.
        b.server_down(1);
        deliver(&mut b, 0, 3);
        let w = b.window_close(1);
        assert!(w.matched, "retired counts keep the barrier balanced");
        assert_eq!(w.deliveries, 7);
        b.shutdown();
        assert_eq!(b.stats().window_mismatches, 0);
    }

    #[test]
    fn reboot_reopens_a_carrier() {
        let mut b = LiveBackend::new();
        b.server_up(3, 1);
        b.server_down(3);
        b.server_up(3, 1);
        deliver(&mut b, 3, 2);
        let w = b.window_close(1);
        assert!(w.matched);
        assert_eq!(w.deliveries, 2);
        assert_eq!(b.stats().workers_spawned, 2);
        b.shutdown();
    }

    #[test]
    fn rounds_and_clock_advance() {
        let mut b = LiveBackend::new();
        b.server_up(0, 1);
        let t0 = b.monotonic_ns();
        b.round_barrier(1);
        b.round_barrier(2);
        assert!(b.monotonic_ns() >= t0);
        assert_eq!(b.stats().rounds, 2);
        assert_eq!(b.stats().window_mismatches, 0);
        b.shutdown();
        // Idempotent.
        b.shutdown();
    }

    #[test]
    fn transmit_to_unknown_server_never_wedges_the_barrier() {
        let mut b = LiveBackend::new();
        b.server_up(0, 1);
        // No worker for server 9: the send is dropped on the coordinator
        // side and excluded from the coordinator tally, so the barrier
        // still balances.
        b.transmit(Delivery {
            server: 9,
            actor: 0,
            bytes: 1,
            remote: true,
        });
        let w = b.window_close(1);
        assert!(w.matched);
        assert_eq!(w.deliveries, 0);
        assert_eq!(b.stats().deliveries, 1);
        b.shutdown();
    }
}
