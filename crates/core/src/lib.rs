#![warn(missing_docs)]

//! # PLASMA — Programmable Elasticity for Stateful Cloud Applications
//!
//! This crate is the public face of the PLASMA reproduction (EuroSys '20,
//! Sang et al.): a programming framework that complements an actor-based
//! application with a second "level" of programming — declarative
//! *elasticity rules* — and a runtime that profiles actors and acts on the
//! rules by migrating them, pinning them, and growing or shrinking the
//! cluster.
//!
//! The moving parts live in focused crates re-exported here:
//!
//! | crate | role |
//! |---|---|
//! | `plasma-sim` | deterministic discrete-event kernel |
//! | `plasma-cluster` | simulated servers, network, provisioning |
//! | `plasma-actor` | the actor cluster runtime (mailboxes, migration) |
//! | `plasma-epl` | the elasticity programming language |
//! | `plasma-emr` | the elasticity management runtime (LEM/GEM) |
//! | `plasma-trace` | structured tracing and elasticity decision audit |
//! | `plasma-chaos` | deterministic fault injection and recovery runtime |
//!
//! # Quickstart
//!
//! ```
//! use plasma::prelude::*;
//!
//! // 1. Declare the application schema the policy compiles against.
//! let mut schema = ActorSchema::new();
//! schema.actor_type("Worker").func("run");
//!
//! // 2. Write the elasticity policy (the paper's Fig. 3 syntax).
//! let policy = "server.cpu.perc > 80 or server.cpu.perc < 60 \
//!               => balance({Worker}, cpu);";
//!
//! // 3. Build the system: cluster + policy + application actors.
//! let mut app = Plasma::builder()
//!     .seed(42)
//!     .policy(policy, &schema)
//!     .build()
//!     .unwrap();
//! let server = app.runtime_mut().add_server(InstanceType::m1_small());
//!
//! struct Worker;
//! impl ActorLogic for Worker {
//!     fn on_message(&mut self, ctx: &mut ActorCtx<'_>, _msg: &mut Message) {
//!         ctx.work(0.001);
//!         ctx.reply(32);
//!     }
//! }
//! let _worker = app
//!     .runtime_mut()
//!     .spawn_actor("Worker", Box::new(Worker), 1024, server);
//!
//! // 4. Run and inspect.
//! app.run_until(SimTime::from_secs(10));
//! assert_eq!(app.report().dropped_messages, 0);
//! ```

use plasma_actor::{BackendKind, ElasticityController, Runtime, RuntimeConfig};
use plasma_chaos::{FaultPlan, RecoveryPolicy};
use plasma_emr::{EmrConfig, PlasmaEmr};
use plasma_epl::error::Warning;
use plasma_epl::{compile, ActorSchema, CompileError};
use plasma_sim::SimTime;
use plasma_trace::{TraceConfig, Tracer};

pub mod prelude;

/// A PLASMA system: an actor runtime with an attached elasticity policy.
pub struct Plasma {
    runtime: Runtime,
    warnings: Vec<Warning>,
}

impl Plasma {
    /// Starts building a PLASMA system.
    pub fn builder() -> PlasmaBuilder {
        PlasmaBuilder::default()
    }

    /// Returns the underlying actor runtime.
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// Returns the underlying actor runtime mutably (spawn actors, add
    /// servers and clients, migrate, inspect).
    pub fn runtime_mut(&mut self) -> &mut Runtime {
        &mut self.runtime
    }

    /// Returns the conflict warnings the policy compiler emitted.
    pub fn warnings(&self) -> &[Warning] {
        &self.warnings
    }

    /// Returns the tracer (disabled unless [`PlasmaBuilder::tracing`] was
    /// called). Use it to export the trace or run
    /// [`Tracer::explain`](plasma_trace::Tracer::explain) after a run.
    pub fn tracer(&self) -> &Tracer {
        self.runtime.tracer()
    }

    /// Runs the simulation until `end` (or until stopped).
    pub fn run_until(&mut self, end: SimTime) {
        self.runtime.run_until(end);
    }

    /// Returns the run report.
    pub fn report(&self) -> &plasma_actor::RunReport {
        self.runtime.report()
    }

    /// Consumes the system, returning the runtime.
    pub fn into_runtime(self) -> Runtime {
        self.runtime
    }
}

/// Builder for [`Plasma`].
#[derive(Default)]
pub struct PlasmaBuilder {
    runtime_cfg: RuntimeConfig,
    emr_cfg: EmrConfig,
    policy: Option<(String, ActorSchema)>,
    controller: Option<Box<dyn ElasticityController>>,
    tracing: Option<TraceConfig>,
    faults: Option<(FaultPlan, RecoveryPolicy)>,
}

impl PlasmaBuilder {
    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.runtime_cfg.seed = seed;
        self
    }

    /// Replaces the whole runtime configuration.
    pub fn runtime_config(mut self, cfg: RuntimeConfig) -> Self {
        self.runtime_cfg = cfg;
        self
    }

    /// Selects the execution backend carrying deliveries and service time
    /// (simulated event loop by default, OS threads under
    /// [`BackendKind::Live`]). Elasticity decisions are a pure function of
    /// logical state, so both backends produce the same decision sequence
    /// for the same seed.
    pub fn backend(mut self, kind: BackendKind) -> Self {
        self.runtime_cfg.backend = kind;
        self
    }

    /// Replaces the EMR configuration.
    pub fn emr_config(mut self, cfg: EmrConfig) -> Self {
        self.emr_cfg = cfg;
        self
    }

    /// Attaches an EPL policy compiled against `schema`; the EMR controller
    /// executing it is installed at build time.
    pub fn policy(mut self, source: &str, schema: &ActorSchema) -> Self {
        self.policy = Some((source.to_string(), schema.clone()));
        self
    }

    /// Installs a custom controller instead of the EMR (baselines, tests).
    /// Mutually exclusive with [`PlasmaBuilder::policy`]; the controller
    /// wins if both are set.
    pub fn controller(mut self, controller: Box<dyn ElasticityController>) -> Self {
        self.controller = Some(controller);
        self
    }

    /// Enables structured tracing: every runtime, EMR, and provisioning
    /// event is recorded per `cfg` and available through
    /// [`Plasma::tracer`] after (or during) the run.
    pub fn tracing(mut self, cfg: TraceConfig) -> Self {
        self.tracing = Some(cfg);
        self
    }

    /// Installs a deterministic fault plan executed by the runtime's chaos
    /// engine, with `policy` governing detection and recovery. An empty
    /// plan is a no-op: the run is byte-identical to one without chaos.
    pub fn faults(mut self, plan: FaultPlan, policy: RecoveryPolicy) -> Self {
        self.faults = Some((plan, policy));
        self
    }

    /// Builds the system, compiling the policy if one was attached.
    pub fn build(self) -> Result<Plasma, CompileError> {
        let mut runtime = Runtime::new(self.runtime_cfg);
        if let Some(cfg) = self.tracing {
            runtime.set_tracer(Tracer::new(cfg));
        }
        let mut warnings = Vec::new();
        if let Some(controller) = self.controller {
            runtime.set_controller(controller);
        } else if let Some((source, schema)) = self.policy {
            let compiled = compile(&source, &schema)?;
            warnings = compiled.warnings.clone();
            runtime.set_controller(Box::new(PlasmaEmr::new(compiled, self.emr_cfg)));
        }
        if let Some((plan, policy)) = self.faults {
            runtime.install_fault_plan(&plan, policy);
        }
        Ok(Plasma { runtime, warnings })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plasma_actor::logic::ActorCtx;
    use plasma_actor::{ActorLogic, Message};
    use plasma_cluster::InstanceType;

    struct Echo;
    impl ActorLogic for Echo {
        fn on_message(&mut self, ctx: &mut ActorCtx<'_>, _msg: &mut Message) {
            ctx.work(0.001);
            ctx.reply(8);
        }
    }

    fn schema() -> ActorSchema {
        let mut s = ActorSchema::new();
        s.actor_type("Echo").func("ping");
        s
    }

    #[test]
    fn builder_without_policy_runs() {
        let mut app = Plasma::builder().seed(1).build().unwrap();
        let s = app.runtime_mut().add_server(InstanceType::m1_small());
        let echo = app.runtime_mut().spawn_actor("Echo", Box::new(Echo), 64, s);
        app.runtime_mut().inject(echo, "ping", 8, None);
        app.run_until(SimTime::from_secs(1));
        assert_eq!(app.report().dropped_messages, 0);
        assert!(app.warnings().is_empty());
    }

    #[test]
    fn builder_with_policy_installs_emr() {
        let app = Plasma::builder()
            .seed(1)
            .policy(
                "server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Echo}, cpu);",
                &schema(),
            )
            .build()
            .unwrap();
        assert!(app.warnings().is_empty());
    }

    #[test]
    fn builder_surfaces_policy_warnings() {
        let app = Plasma::builder()
            .policy(
                "true => pin(Echo);\nserver.cpu.perc > 80 => balance({Echo}, cpu);",
                &schema(),
            )
            .build()
            .unwrap();
        assert_eq!(app.warnings().len(), 1);
    }

    #[test]
    fn builder_rejects_bad_policy() {
        let result = Plasma::builder()
            .policy("true => explode(x);", &schema())
            .build();
        assert!(matches!(result, Err(CompileError::Parse(_))));
    }
}
