//! One-stop imports for PLASMA applications.
//!
//! ```
//! use plasma::prelude::*;
//! ```

pub use plasma_actor::logic::{ActorCtx, ClientCtx};
pub use plasma_actor::message::Payload;
pub use plasma_actor::{
    ActorId, ActorLogic, ActorTypeId, BackendKind, BackendStats, ClientId, ClientLogic,
    DecisionKind, DecisionRecord, ElasticityController, FnId, Message, NullController, RunReport,
    Runtime, RuntimeConfig,
};
pub use plasma_chaos::{
    ChaosStats, FaultEvent, FaultKind, FaultPlan, LinkDegradation, RecoveryPolicy,
};
pub use plasma_cluster::topology::ClusterLimits;
pub use plasma_cluster::{Cluster, InstanceType, NetworkModel, ResourceKind, ServerId};
pub use plasma_emr::baselines::{FrequencyColocate, HeavyToIdle, OrleansBalance};
pub use plasma_emr::{EmrConfig, PlasmaEmr};
pub use plasma_epl::{compile, ActorSchema, CompileError};
pub use plasma_sim::{DetRng, SimDuration, SimTime};
pub use plasma_trace::{
    explain, render_explanation, results_dir, to_chrome_trace, to_jsonl, write_under, Category,
    CategorySet, Component, EventId, TraceConfig, TraceEvent, TraceEventKind, Tracer,
};

pub use crate::{Plasma, PlasmaBuilder};
