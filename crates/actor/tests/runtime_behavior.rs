//! End-to-end behavioral tests of the actor runtime.

use plasma_actor::logic::{ActorCtx, ClientCtx};
use plasma_actor::message::Payload;
use plasma_actor::runtime::{Runtime, RuntimeConfig};
use plasma_actor::{ActorId, ActorLogic, ClientLogic, ElasticityController, Message};
use plasma_cluster::{InstanceType, ServerId};
use plasma_sim::{SimDuration, SimTime};

/// An actor that burns fixed CPU work and replies to the client.
struct Echo {
    work: f64,
}

impl ActorLogic for Echo {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, _msg: &mut Message) {
        ctx.work(self.work);
        ctx.reply(64);
    }
}

/// An actor that forwards every request to a peer.
struct Forwarder {
    peer: ActorId,
}

impl ActorLogic for Forwarder {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, _msg: &mut Message) {
        ctx.work(0.0005);
        ctx.send(self.peer, "handle", 128);
    }
}

/// A closed-loop client: issues the next request when the reply arrives.
struct ClosedLoop {
    target: ActorId,
    sent: u32,
    max: u32,
}

impl ClientLogic for ClosedLoop {
    fn on_start(&mut self, ctx: &mut ClientCtx<'_>) {
        self.sent += 1;
        ctx.request(self.target, "handle", 256);
    }

    fn on_reply(
        &mut self,
        ctx: &mut ClientCtx<'_>,
        _request: u64,
        _latency: SimDuration,
        _payload: Option<Payload>,
    ) {
        if self.sent < self.max {
            self.sent += 1;
            ctx.request(self.target, "handle", 256);
        }
    }
}

fn small_config() -> RuntimeConfig {
    RuntimeConfig {
        seed: 7,
        ..RuntimeConfig::default()
    }
}

#[test]
fn closed_loop_latency_includes_network_and_service() {
    let mut rt = Runtime::new(small_config());
    let s = rt.add_server(InstanceType::m1_small());
    let echo = rt.spawn_actor("Echo", Box::new(Echo { work: 0.010 }), 1024, s);
    rt.add_client(Box::new(ClosedLoop {
        target: echo,
        sent: 0,
        max: 100,
    }));
    rt.run_until(SimTime::from_secs(30));
    let report = rt.report();
    assert_eq!(report.requests, 100);
    assert_eq!(report.replies, 100);
    // Latency = 2 x ~5ms client hops + 10ms service (+ profiling tax).
    let mean = report.mean_latency_ms();
    assert!(mean > 19.0 && mean < 23.0, "mean latency {mean}");
}

#[test]
fn epr_tax_slows_service_slightly() {
    let run = |epr: bool| {
        let mut cfg = small_config();
        cfg.epr_enabled = epr;
        let mut rt = Runtime::new(cfg);
        let s = rt.add_server(InstanceType::m1_small());
        let echo = rt.spawn_actor("Echo", Box::new(Echo { work: 0.010 }), 1024, s);
        rt.add_client(Box::new(ClosedLoop {
            target: echo,
            sent: 0,
            max: 200,
        }));
        rt.run_until(SimTime::from_secs(60));
        rt.report().mean_latency_ms()
    };
    let with_epr = run(true);
    let without = run(false);
    assert!(with_epr > without, "profiling must cost something");
    let overhead = with_epr / without;
    assert!(
        overhead < 1.03,
        "overhead ratio {overhead} exceeds Table 3 band"
    );
}

#[test]
fn forwarding_chain_reaches_reply() {
    let mut rt = Runtime::new(small_config());
    let s0 = rt.add_server(InstanceType::m1_small());
    let s1 = rt.add_server(InstanceType::m1_small());
    let echo = rt.spawn_actor("Echo", Box::new(Echo { work: 0.001 }), 1024, s1);
    let fwd = rt.spawn_actor("Forwarder", Box::new(Forwarder { peer: echo }), 1024, s0);
    rt.add_client(Box::new(ClosedLoop {
        target: fwd,
        sent: 0,
        max: 50,
    }));
    rt.run_until(SimTime::from_secs(30));
    let report = rt.report();
    assert_eq!(report.replies, 50);
    // 50 client requests enter remotely, 50 Forwarder->Echo hops cross
    // servers; replies to clients are not inter-actor messages.
    assert_eq!(report.remote_messages, 50 + 50);
    assert_eq!(report.local_messages, 0);
}

#[test]
fn colocated_chain_is_local_and_faster() {
    let run = |colocated: bool| {
        let mut rt = Runtime::new(small_config());
        let s0 = rt.add_server(InstanceType::m1_medium());
        let s1 = if colocated {
            s0
        } else {
            rt.add_server(InstanceType::m1_medium())
        };
        let echo = rt.spawn_actor("Echo", Box::new(Echo { work: 0.001 }), 1024, s1);
        let fwd = rt.spawn_actor("Forwarder", Box::new(Forwarder { peer: echo }), 1024, s0);
        rt.add_client(Box::new(ClosedLoop {
            target: fwd,
            sent: 0,
            max: 50,
        }));
        rt.run_until(SimTime::from_secs(30));
        let locality = rt.report().locality();
        (rt.report().mean_latency_ms(), locality)
    };
    let (lat_co, loc_co) = run(true);
    let (lat_remote, loc_remote) = run(false);
    assert!(loc_co > 0.0 && loc_remote == 0.0);
    assert!(
        lat_co < lat_remote,
        "colocated {lat_co} vs remote {lat_remote}"
    );
}

#[test]
fn migration_moves_actor_and_preserves_service() {
    let mut cfg = small_config();
    cfg.min_residency = SimDuration::ZERO;
    let mut rt = Runtime::new(cfg);
    let s0 = rt.add_server(InstanceType::m1_small());
    let s1 = rt.add_server(InstanceType::m1_small());
    let echo = rt.spawn_actor("Echo", Box::new(Echo { work: 0.002 }), 1 << 20, s0);
    rt.add_client(Box::new(ClosedLoop {
        target: echo,
        sent: 0,
        max: 500,
    }));
    rt.run_until(SimTime::from_secs(5));
    assert_eq!(rt.actor_server(echo), s0);
    rt.migrate(echo, s1).expect("migratable");
    rt.run_until(SimTime::from_secs(40));
    assert_eq!(rt.actor_server(echo), s1);
    let report = rt.report();
    assert_eq!(report.migrations.len(), 1);
    assert_eq!(report.migrations[0].src, s0);
    assert_eq!(report.migrations[0].dst, s1);
    assert!(report.migrations[0].transfer_time > SimDuration::ZERO);
    assert_eq!(report.replies, 500, "no request lost across migration");
    assert_eq!(rt.actor_count_on(s0), 0);
    assert_eq!(rt.actor_count_on(s1), 1);
}

#[test]
fn residency_and_pin_block_migration() {
    use plasma_actor::entry::MigrationBlocked;
    let mut rt = Runtime::new(small_config()); // min_residency = 60s default
    let s0 = rt.add_server(InstanceType::m1_small());
    let s1 = rt.add_server(InstanceType::m1_small());
    let echo = rt.spawn_actor("Echo", Box::new(Echo { work: 0.002 }), 1024, s0);
    assert_eq!(rt.migrate(echo, s1), Err(MigrationBlocked::Residency));
    rt.run_until(SimTime::from_secs(61));
    rt.set_pinned(echo, true);
    assert_eq!(rt.migrate(echo, s1), Err(MigrationBlocked::Pinned));
    rt.set_pinned(echo, false);
    assert_eq!(rt.migrate(echo, s0), Err(MigrationBlocked::SameServer));
    assert_eq!(rt.migrate(echo, s1), Ok(()));
    assert_eq!(rt.migrate(echo, s1), Err(MigrationBlocked::InFlight));
}

#[test]
fn profiling_snapshot_reports_usage_and_calls() {
    let mut rt = Runtime::new(small_config());
    let s = rt.add_server(InstanceType::m1_small());
    let echo = rt.spawn_actor("Echo", Box::new(Echo { work: 0.004 }), 2048, s);
    rt.add_client(Box::new(ClosedLoop {
        target: echo,
        sent: 0,
        max: u32::MAX,
    }));
    rt.run_until(SimTime::from_secs(10));
    let snap = rt.snapshot();
    assert_eq!(snap.actors.len(), 1);
    let a = snap.actor(echo).unwrap();
    assert_eq!(a.server, s);
    assert!(a.cpu_share > 0.0, "actor consumed CPU");
    assert!(a.counters.total_received() > 0);
    let srv = snap.server(s).unwrap();
    assert!(srv.usage.cpu() > 0.0);
    assert_eq!(srv.actor_count, 1);
}

#[test]
fn server_boot_delay_applies() {
    struct Watcher;
    impl ElasticityController for Watcher {
        fn on_server_ready(&mut self, rt: &mut Runtime, server: ServerId) {
            rt.record_custom("ready", server.0 as f64);
        }
    }
    let mut rt = Runtime::new(small_config());
    rt.set_controller(Box::new(Watcher));
    let _s0 = rt.add_server(InstanceType::m1_small());
    let s1 = rt.request_server(InstanceType::m1_small()).unwrap();
    assert!(!rt.cluster().server(s1).is_running());
    rt.run_until(SimTime::from_secs(100));
    assert!(rt.cluster().server(s1).is_running());
    let series = rt.report().series("ready").unwrap();
    assert_eq!(series.len(), 1);
    let (at, v) = series.points()[0];
    assert_eq!(v, s1.0 as f64);
    assert_eq!(at, SimTime::ZERO + InstanceType::m1_small().boot_delay);
}

#[test]
fn controller_tick_fires_each_period() {
    struct TickCounter;
    impl ElasticityController for TickCounter {
        fn on_elasticity_tick(&mut self, rt: &mut Runtime) {
            rt.record_custom("tick", 1.0);
        }
    }
    let mut cfg = small_config();
    cfg.elasticity_period = SimDuration::from_secs(10);
    let mut rt = Runtime::new(cfg);
    rt.set_controller(Box::new(TickCounter));
    let _ = rt.add_server(InstanceType::m1_small());
    rt.run_until(SimTime::from_secs(35));
    assert_eq!(rt.report().series("tick").unwrap().len(), 3);
}

#[test]
fn spawned_actor_placement_consults_controller() {
    struct PlaceOnSecond;
    impl ElasticityController for PlaceOnSecond {
        fn place_new_actor(
            &mut self,
            rt: &Runtime,
            _type_id: plasma_actor::ActorTypeId,
            _creator: Option<ServerId>,
        ) -> Option<ServerId> {
            rt.cluster().running_ids().get(1).copied()
        }
    }
    struct Spawner;
    impl ActorLogic for Spawner {
        fn on_message(&mut self, ctx: &mut ActorCtx<'_>, _msg: &mut Message) {
            let child = ctx.spawn("Child", Box::new(Echo { work: 0.001 }), 64);
            ctx.add_ref("children", child);
            ctx.reply(8);
        }
    }
    let mut rt = Runtime::new(small_config());
    rt.set_controller(Box::new(PlaceOnSecond));
    let s0 = rt.add_server(InstanceType::m1_small());
    let s1 = rt.add_server(InstanceType::m1_small());
    let spawner = rt.spawn_actor("Spawner", Box::new(Spawner), 64, s0);
    rt.add_client(Box::new(ClosedLoop {
        target: spawner,
        sent: 0,
        max: 1,
    }));
    rt.run_until(SimTime::from_secs(5));
    let children = rt.actor_refs(spawner, "children");
    assert_eq!(children.len(), 1);
    assert_eq!(rt.actor_server(children[0]), s1);
    assert_eq!(rt.actor_count_on(s1), 1);
}

#[test]
fn stop_ends_run_early() {
    struct Stopper;
    impl ActorLogic for Stopper {
        fn on_message(&mut self, ctx: &mut ActorCtx<'_>, _msg: &mut Message) {
            ctx.stop_simulation();
        }
    }
    let mut rt = Runtime::new(small_config());
    let s = rt.add_server(InstanceType::m1_small());
    let stopper = rt.spawn_actor("Stopper", Box::new(Stopper), 64, s);
    rt.add_client(Box::new(ClosedLoop {
        target: stopper,
        sent: 0,
        max: 10,
    }));
    rt.run_until(SimTime::from_secs(1000));
    assert!(rt.is_stopped());
    assert!(rt.now() < SimTime::from_secs(1));
}

#[test]
fn decommission_requires_empty_server() {
    let mut cfg = small_config();
    cfg.min_residency = SimDuration::ZERO;
    let mut rt = Runtime::new(cfg);
    let s0 = rt.add_server(InstanceType::m1_small());
    let s1 = rt.add_server(InstanceType::m1_small());
    let echo = rt.spawn_actor("Echo", Box::new(Echo { work: 0.001 }), 1024, s1);
    assert_eq!(
        rt.decommission_server(s1),
        Err(plasma_actor::DecommissionError::HasActors),
        "occupied"
    );
    rt.migrate(echo, s0).unwrap();
    assert_eq!(
        rt.decommission_server(s1),
        Err(plasma_actor::DecommissionError::HasActors),
        "outbound migration from s1: actor still registered on s1"
    );
    rt.run_until(SimTime::from_secs(2));
    assert_eq!(rt.actor_server(echo), s0);
    assert_eq!(rt.decommission_server(s1), Ok(()));
    assert!(!rt.cluster().server(s1).is_running());
    assert_eq!(
        rt.decommission_server(s1),
        Err(plasma_actor::DecommissionError::NotRunning)
    );
}

#[test]
fn determinism_same_seed_same_report() {
    let run = |seed: u64| {
        let mut cfg = small_config();
        cfg.seed = seed;
        let mut rt = Runtime::new(cfg);
        let s0 = rt.add_server(InstanceType::m1_small());
        let s1 = rt.add_server(InstanceType::m1_small());
        let echo = rt.spawn_actor("Echo", Box::new(Echo { work: 0.003 }), 1024, s1);
        let fwd = rt.spawn_actor("Forwarder", Box::new(Forwarder { peer: echo }), 512, s0);
        rt.add_client(Box::new(ClosedLoop {
            target: fwd,
            sent: 0,
            max: 200,
        }));
        rt.run_until(SimTime::from_secs(20));
        (
            rt.report().mean_latency_ms(),
            rt.report().remote_messages,
            rt.report().replies,
        )
    };
    assert_eq!(run(11), run(11));
    let (a, _, _) = run(11);
    let (b, _, _) = run(12);
    // Different seeds shift nothing here (deterministic workload), so they
    // should actually agree too; the seed only matters once apps draw RNG.
    assert_eq!(a, b);
}

#[test]
fn orphan_reply_is_counted_not_fatal() {
    struct BadReplier;
    impl ActorLogic for BadReplier {
        fn on_message(&mut self, ctx: &mut ActorCtx<'_>, _msg: &mut Message) {
            ctx.reply(1); // Fine: client correlation present on request.
        }
    }
    struct SelfStarter {
        peer: ActorId,
    }
    impl ActorLogic for SelfStarter {
        fn on_message(&mut self, ctx: &mut ActorCtx<'_>, _msg: &mut Message) {
            // Detached send drops the correlation; peer's reply is orphan.
            ctx.send_detached(self.peer, "go", 8);
        }
    }
    let mut rt = Runtime::new(small_config());
    let s = rt.add_server(InstanceType::m1_small());
    let bad = rt.spawn_actor("Bad", Box::new(BadReplier), 64, s);
    let starter = rt.spawn_actor("Starter", Box::new(SelfStarter { peer: bad }), 64, s);
    rt.add_client(Box::new(ClosedLoop {
        target: starter,
        sent: 0,
        max: 1,
    }));
    rt.run_until(SimTime::from_secs(5));
    assert_eq!(rt.report().orphan_replies, 1);
    assert_eq!(rt.report().replies, 0);
}
