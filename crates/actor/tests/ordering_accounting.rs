//! Message-ordering and resource-accounting guarantees of the simulated
//! runtime.

use plasma_actor::logic::{ActorCtx, ClientCtx};
use plasma_actor::message::Payload;
use plasma_actor::{ActorId, ActorLogic, ClientLogic, Message, Runtime, RuntimeConfig};
use plasma_cluster::{InstanceType, ServerId};
use plasma_sim::{SimDuration, SimTime};

/// Records the sequence numbers it receives, in order.
struct Recorder {
    seen: std::sync::Arc<std::sync::Mutex<Vec<u64>>>,
}

impl ActorLogic for Recorder {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, msg: &mut Message) {
        ctx.work(0.001);
        if let Some(seq) = msg.payload_ref::<u64>() {
            self.seen.lock().unwrap().push(*seq);
        }
        ctx.reply(8);
    }
}

struct SeqClient {
    target: ActorId,
    next: u64,
    max: u64,
}

impl ClientLogic for SeqClient {
    fn on_start(&mut self, ctx: &mut ClientCtx<'_>) {
        ctx.request_with(self.target, "rec", 16, Box::new(self.next));
        self.next += 1;
    }
    fn on_reply(&mut self, ctx: &mut ClientCtx<'_>, _r: u64, _l: SimDuration, _p: Option<Payload>) {
        if self.next < self.max {
            ctx.request_with(self.target, "rec", 16, Box::new(self.next));
            self.next += 1;
        }
    }
}

#[test]
fn per_sender_fifo_without_migration() {
    let seen = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    let mut rt = Runtime::new(RuntimeConfig {
        seed: 1,
        ..RuntimeConfig::default()
    });
    let s = rt.add_server(InstanceType::m1_small());
    let rec = rt.spawn_actor("Recorder", Box::new(Recorder { seen: seen.clone() }), 64, s);
    rt.add_client(Box::new(SeqClient {
        target: rec,
        next: 0,
        max: 200,
    }));
    rt.run_until(SimTime::from_secs(60));
    let seen = seen.lock().unwrap();
    assert_eq!(seen.len(), 200);
    assert!(
        seen.windows(2).all(|w| w[0] < w[1]),
        "closed-loop sequence must arrive in order"
    );
}

#[test]
fn per_sender_fifo_survives_migration() {
    let seen = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    let mut rt = Runtime::new(RuntimeConfig {
        seed: 2,
        min_residency: SimDuration::ZERO,
        ..RuntimeConfig::default()
    });
    let s0 = rt.add_server(InstanceType::m1_small());
    let s1 = rt.add_server(InstanceType::m1_small());
    let rec = rt.spawn_actor(
        "Recorder",
        Box::new(Recorder { seen: seen.clone() }),
        1 << 20,
        s0,
    );
    rt.add_client(Box::new(SeqClient {
        target: rec,
        next: 0,
        max: 300,
    }));
    for round in 0..20u64 {
        rt.run_until(SimTime::from_millis(500 * (round + 1)));
        let dst = if round % 2 == 0 { s1 } else { s0 };
        let _ = rt.migrate(rec, dst);
    }
    rt.run_until(SimTime::from_secs(120));
    let seen = seen.lock().unwrap();
    assert_eq!(seen.len(), 300, "every closed-loop request served");
    assert!(
        seen.windows(2).all(|w| w[0] < w[1]),
        "mailbox travels with the actor, preserving order"
    );
    assert!(rt.report().migrations.len() >= 10);
}

#[test]
fn memory_accounting_follows_migration_and_removal() {
    let mut rt = Runtime::new(RuntimeConfig {
        seed: 3,
        min_residency: SimDuration::ZERO,
        ..RuntimeConfig::default()
    });
    let s0 = rt.add_server(InstanceType::m1_small());
    let s1 = rt.add_server(InstanceType::m1_small());
    let size = 64 << 20;
    let a = rt.spawn_actor(
        "A",
        Box::new(Recorder {
            seen: Default::default(),
        }),
        size,
        s0,
    );
    let mem = |rt: &Runtime, s: ServerId| rt.cluster().server(s).mem_used();
    assert_eq!(mem(&rt, s0), size);
    assert_eq!(mem(&rt, s1), 0);
    rt.migrate(a, s1).unwrap();
    rt.run_until(SimTime::from_secs(20));
    assert_eq!(mem(&rt, s0), 0, "source released the state");
    assert_eq!(mem(&rt, s1), size, "destination holds the state");
    rt.remove_actor(a);
    rt.run_until(SimTime::from_secs(21));
    assert_eq!(mem(&rt, s1), 0, "removal releases the state");
}

#[test]
fn state_size_changes_update_server_memory() {
    struct Grower;
    impl ActorLogic for Grower {
        fn on_message(&mut self, ctx: &mut ActorCtx<'_>, _msg: &mut Message) {
            ctx.set_state_size(10 << 20);
            ctx.reply(8);
        }
    }
    let mut rt = Runtime::new(RuntimeConfig {
        seed: 4,
        ..RuntimeConfig::default()
    });
    let s = rt.add_server(InstanceType::m1_small());
    let g = rt.spawn_actor("G", Box::new(Grower), 1 << 20, s);
    assert_eq!(rt.cluster().server(s).mem_used(), 1 << 20);
    rt.inject(g, "grow", 8, None);
    rt.run_until(SimTime::from_secs(1));
    assert_eq!(rt.cluster().server(s).mem_used(), 10 << 20);
}

#[test]
fn profiling_counters_reset_every_window() {
    struct Echo;
    impl ActorLogic for Echo {
        fn on_message(&mut self, ctx: &mut ActorCtx<'_>, _msg: &mut Message) {
            ctx.work(0.001);
            ctx.reply(8);
        }
    }
    struct Steady {
        target: ActorId,
    }
    impl ClientLogic for Steady {
        fn on_start(&mut self, ctx: &mut ClientCtx<'_>) {
            ctx.set_timer(SimDuration::ZERO, 0);
        }
        fn on_reply(
            &mut self,
            _ctx: &mut ClientCtx<'_>,
            _r: u64,
            _l: SimDuration,
            _p: Option<Payload>,
        ) {
        }
        fn on_timer(&mut self, ctx: &mut ClientCtx<'_>, _t: u64) {
            ctx.request(self.target, "hit", 16);
            ctx.set_timer(SimDuration::from_millis(100), 0);
        }
    }
    let mut rt = Runtime::new(RuntimeConfig {
        seed: 5,
        ..RuntimeConfig::default()
    });
    let s = rt.add_server(InstanceType::m1_small());
    let e = rt.spawn_actor("Echo", Box::new(Echo), 64, s);
    rt.add_client(Box::new(Steady { target: e }));
    rt.run_until(SimTime::from_secs(10));
    // Steady 10 req/s with a 1 s profiling window: each snapshot must hold
    // roughly one window's worth, not the cumulative total.
    let received = rt.snapshot().actor(e).unwrap().counters.total_received();
    assert!(
        (8..=12).contains(&received),
        "window shows ~10 requests, got {received}"
    );
    assert!(rt.report().replies >= 95, "but ~100 were served in total");
}

#[test]
fn network_bytes_accounted_on_both_nics() {
    struct Fwd {
        peer: ActorId,
    }
    impl ActorLogic for Fwd {
        fn on_message(&mut self, ctx: &mut ActorCtx<'_>, msg: &mut Message) {
            if msg.corr.is_some() && msg.fname == ctx.fn_id("in") {
                ctx.send(self.peer, "out", 1_000_000);
            } else {
                ctx.reply(8);
            }
        }
    }
    let mut rt = Runtime::new(RuntimeConfig {
        seed: 6,
        ..RuntimeConfig::default()
    });
    let s0 = rt.add_server(InstanceType::m1_small());
    let s1 = rt.add_server(InstanceType::m1_small());
    // Ids are sequential: sink first, then fwd.
    let sink = rt.spawn_actor("Sink", Box::new(Fwd { peer: ActorId(0) }), 64, s1);
    let fwd = rt.spawn_actor("Fwd", Box::new(Fwd { peer: sink }), 64, s0);
    rt.add_client(Box::new(Steady2 { target: fwd }));
    rt.run_until(SimTime::from_millis(2500));
    // 1 MB/s crossing s0 -> s1: both NICs see ~8 Mbps = 3.2% of 250 Mbps.
    let u0 = rt.snapshot().server(s0).unwrap().usage.net();
    let u1 = rt.snapshot().server(s1).unwrap().usage.net();
    assert!(u0 > 0.02 && u1 > 0.02, "both NICs charged: {u0} {u1}");
}

struct Steady2 {
    target: ActorId,
}
impl ClientLogic for Steady2 {
    fn on_start(&mut self, ctx: &mut ClientCtx<'_>) {
        ctx.set_timer(SimDuration::ZERO, 0);
    }
    fn on_reply(
        &mut self,
        _ctx: &mut ClientCtx<'_>,
        _r: u64,
        _l: SimDuration,
        _p: Option<Payload>,
    ) {
    }
    fn on_timer(&mut self, ctx: &mut ClientCtx<'_>, _t: u64) {
        ctx.request(self.target, "in", 64);
        ctx.set_timer(SimDuration::from_millis(1000), 0);
    }
}
