//! Stress tests of the multi-threaded live cluster: real concurrency, real
//! migration hand-offs, zero lost requests.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use plasma_actor::live::{LiveActor, LiveCluster, LiveCtx};
use plasma_actor::ActorId;

/// Echoes the payload back, counting invocations.
struct Echo {
    hits: Arc<AtomicU64>,
}

impl LiveActor for Echo {
    fn on_message(
        &mut self,
        _ctx: &mut LiveCtx<'_>,
        _fname: &str,
        payload: &Bytes,
    ) -> Option<Bytes> {
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(payload.clone())
    }
}

/// A stateful counter actor: `incr` bumps, `get` returns the count.
struct Counter {
    count: u64,
}

impl LiveActor for Counter {
    fn on_message(
        &mut self,
        _ctx: &mut LiveCtx<'_>,
        fname: &str,
        _payload: &Bytes,
    ) -> Option<Bytes> {
        match fname {
            "incr" => {
                self.count += 1;
                Some(Bytes::copy_from_slice(&self.count.to_le_bytes()))
            }
            "get" => Some(Bytes::copy_from_slice(&self.count.to_le_bytes())),
            _ => None,
        }
    }
}

/// Forwards to a peer, demonstrating actor-to-actor sends across threads.
struct Tell {
    peer: ActorId,
}

impl LiveActor for Tell {
    fn on_message(
        &mut self,
        ctx: &mut LiveCtx<'_>,
        _fname: &str,
        payload: &Bytes,
    ) -> Option<Bytes> {
        ctx.send(self.peer, "note", payload.clone());
        Some(Bytes::from_static(b"sent"))
    }
}

#[test]
fn request_reply_round_trip() {
    let cluster = LiveCluster::start(4);
    let hits = Arc::new(AtomicU64::new(0));
    let echo = cluster.spawn(2, Box::new(Echo { hits: hits.clone() }));
    for i in 0..100u64 {
        let payload = Bytes::copy_from_slice(&i.to_le_bytes());
        let reply = cluster.request(echo, "ping", payload.clone()).unwrap();
        assert_eq!(reply, payload);
    }
    let stats = cluster.shutdown();
    assert_eq!(hits.load(Ordering::Relaxed), 100);
    assert_eq!(stats.dropped, 0);
}

#[test]
fn concurrent_clients_all_served() {
    let cluster = Arc::new(LiveCluster::start(4));
    let hits = Arc::new(AtomicU64::new(0));
    let actors: Vec<ActorId> = (0..8)
        .map(|i| cluster.spawn(i % 4, Box::new(Echo { hits: hits.clone() })))
        .collect();
    let mut clients = Vec::new();
    for t in 0..8usize {
        let cluster = Arc::clone(&cluster);
        let actors = actors.clone();
        clients.push(std::thread::spawn(move || {
            let mut ok = 0u64;
            for i in 0..200u64 {
                let target = actors[(t + i as usize) % actors.len()];
                let payload = Bytes::copy_from_slice(&i.to_le_bytes());
                if cluster.request(target, "ping", payload.clone()) == Some(payload) {
                    ok += 1;
                }
            }
            ok
        }));
    }
    let total: u64 = clients.into_iter().map(|c| c.join().unwrap()).sum();
    assert_eq!(total, 8 * 200);
    let stats = Arc::try_unwrap(cluster).ok().unwrap().shutdown();
    assert_eq!(stats.processed, 8 * 200);
    assert_eq!(stats.dropped, 0);
}

#[test]
fn migration_under_load_loses_nothing_and_keeps_state() {
    let cluster = Arc::new(LiveCluster::start(4));
    let counter = cluster.spawn(0, Box::new(Counter { count: 0 }));
    let total_incrs = 2_000u64;
    let workers = 4u64;
    let mut clients = Vec::new();
    for _ in 0..workers {
        let cluster = Arc::clone(&cluster);
        clients.push(std::thread::spawn(move || {
            let mut ok = 0u64;
            for _ in 0..total_incrs / workers {
                if cluster.request(counter, "incr", Bytes::new()).is_some() {
                    ok += 1;
                }
            }
            ok
        }));
    }
    // Bounce the counter between servers while the increments fly.
    let migrator = {
        let cluster = Arc::clone(&cluster);
        std::thread::spawn(move || {
            for round in 0..40usize {
                cluster.migrate(counter, round % 4);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        })
    };
    let acked: u64 = clients.into_iter().map(|c| c.join().unwrap()).sum();
    migrator.join().unwrap();
    assert_eq!(acked, total_incrs, "every increment acknowledged");
    let final_count = cluster
        .request(counter, "get", Bytes::new())
        .map(|b| u64::from_le_bytes(b[..8].try_into().unwrap()))
        .unwrap();
    assert_eq!(final_count, total_incrs, "state survived every hand-off");
    let stats = Arc::try_unwrap(cluster).ok().unwrap().shutdown();
    assert!(stats.migrations >= 2, "actor really moved");
    assert_eq!(stats.dropped, 0);
}

#[test]
fn actor_to_actor_sends_cross_threads() {
    let cluster = LiveCluster::start(2);
    let hits = Arc::new(AtomicU64::new(0));
    let sink = cluster.spawn(1, Box::new(Echo { hits: hits.clone() }));
    let teller = cluster.spawn(0, Box::new(Tell { peer: sink }));
    for _ in 0..50 {
        assert_eq!(
            cluster.request(teller, "tell", Bytes::from_static(b"x")),
            Some(Bytes::from_static(b"sent"))
        );
    }
    // The forwarded notes are fire-and-forget; drain before shutdown.
    while hits.load(Ordering::Relaxed) < 50 {
        std::thread::yield_now();
    }
    let stats = cluster.shutdown();
    assert_eq!(stats.processed, 100, "50 tells + 50 notes");
}

#[test]
fn unknown_actor_requests_drop_cleanly() {
    let cluster = LiveCluster::start(1);
    let ghost = ActorId(404);
    assert_eq!(cluster.request(ghost, "ping", Bytes::new()), None);
    let stats = cluster.shutdown();
    assert!(stats.dropped >= 1);
}

#[test]
fn directory_tracks_migrations() {
    let cluster = LiveCluster::start(3);
    let a = cluster.spawn(0, Box::new(Counter { count: 0 }));
    assert_eq!(cluster.actor_server(a), Some(0));
    cluster.migrate(a, 2);
    // The directory flips when the source thread performs the hand-off;
    // a request forces the queue to drain.
    let _ = cluster.request(a, "get", Bytes::new());
    assert_eq!(cluster.actor_server(a), Some(2));
    cluster.shutdown();
}

#[test]
fn throughput_rebalance_spreads_hot_actors() {
    let cluster = Arc::new(LiveCluster::start(4));
    let hits = Arc::new(AtomicU64::new(0));
    // Eight actors, all born on server 0.
    let actors: Vec<ActorId> = (0..8)
        .map(|_| cluster.spawn(0, Box::new(Echo { hits: hits.clone() })))
        .collect();
    // Drive steady traffic from four client threads while a balancer
    // thread samples and migrates.
    let stop = Arc::new(AtomicU64::new(0));
    let mut clients = Vec::new();
    for t in 0..4usize {
        let cluster = Arc::clone(&cluster);
        let actors = actors.clone();
        let stop = Arc::clone(&stop);
        clients.push(std::thread::spawn(move || {
            let mut i = t;
            while stop.load(Ordering::Relaxed) == 0 {
                let target = actors[i % actors.len()];
                let _ = cluster.request(target, "ping", Bytes::new());
                i += 1;
            }
        }));
    }
    let balancer = {
        let cluster = Arc::clone(&cluster);
        std::thread::spawn(move || {
            let mut moved = 0;
            for _ in 0..60 {
                if cluster.rebalance_by_throughput() {
                    moved += 1;
                }
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            moved
        })
    };
    let moved = balancer.join().unwrap();
    stop.store(1, Ordering::Relaxed);
    for c in clients {
        c.join().unwrap();
    }
    assert!(moved >= 2, "balancer migrated actors: {moved}");
    // Placement must now span several servers.
    let homes: std::collections::BTreeSet<usize> = actors
        .iter()
        .filter_map(|&a| cluster.actor_server(a))
        .collect();
    assert!(homes.len() >= 3, "actors spread over {homes:?}");
    let stats = Arc::try_unwrap(cluster).ok().unwrap().shutdown();
    assert_eq!(stats.dropped, 0);
}
