//! Application programming interfaces: actor and client logic traits.
//!
//! Applications implement [`ActorLogic`] per actor type and [`ClientLogic`]
//! per workload generator. Logic runs *inside* the simulation: it declares
//! its CPU cost via [`ActorCtx::work`], emits messages via
//! [`ActorCtx::send`], and may maintain real state (the PageRank app, for
//! example, multiplies real rank vectors). Everything observable — service
//! time, network traffic, reference topology — flows through these contexts
//! so the profiling runtime sees it.

use plasma_cluster::ServerId;
use plasma_sim::{DetRng, SimDuration, SimTime};

use crate::ids::{ActorId, ClientId, FnId};
use crate::message::{Correlation, Message, Payload};
use crate::runtime::Runtime;

/// Behavior of one actor type, invoked once per received message.
///
/// The handler may mutate its own state, consume CPU (`ctx.work`), send
/// messages, spawn actors, and manipulate reference properties. Sends and
/// replies take effect when the message's service time elapses, matching a
/// real runtime where output is flushed after the handler returns.
pub trait ActorLogic: Send {
    /// Handles one message.
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, msg: &mut Message);
}

/// Behavior of one external client (workload generator).
pub trait ClientLogic: Send {
    /// Called once when the client is started.
    fn on_start(&mut self, ctx: &mut ClientCtx<'_>);

    /// Called when a reply to `request` arrives; `latency` is end-to-end
    /// and `payload` is whatever the replying actor attached via
    /// [`ActorCtx::reply_with`].
    fn on_reply(
        &mut self,
        ctx: &mut ClientCtx<'_>,
        request: u64,
        latency: SimDuration,
        payload: Option<Payload>,
    );

    /// Called when a timer set via [`ClientCtx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut ClientCtx<'_>, token: u64) {
        let _ = (ctx, token);
    }
}

/// A buffered outgoing message, released at service completion.
pub(crate) struct PendingSend {
    pub to: ActorId,
    pub fname: FnId,
    pub bytes: u64,
    pub corr: Option<Correlation>,
    pub payload: Option<Payload>,
}

/// Execution context handed to [`ActorLogic::on_message`].
pub struct ActorCtx<'a> {
    pub(crate) rt: &'a mut Runtime,
    pub(crate) me: ActorId,
    pub(crate) corr: Option<Correlation>,
    pub(crate) work: f64,
    pub(crate) sends: Vec<PendingSend>,
    pub(crate) replies: Vec<(Correlation, u64, Option<Payload>)>,
}

impl ActorCtx<'_> {
    /// Returns the id of the actor handling the message.
    pub fn me(&self) -> ActorId {
        self.me
    }

    /// Returns the current virtual time.
    pub fn now(&self) -> SimTime {
        self.rt.now()
    }

    /// Returns the server currently hosting this actor.
    pub fn server(&self) -> ServerId {
        self.rt.actor_server(self.me)
    }

    /// Returns the deterministic RNG.
    pub fn rng(&mut self) -> &mut DetRng {
        self.rt.rng()
    }

    /// Interns a function name for comparison against `msg.fname`.
    ///
    /// ```ignore
    /// if msg.fname == ctx.fn_id("open") { ... }
    /// ```
    pub fn fn_id(&mut self, name: &str) -> FnId {
        self.rt.intern_fn(name)
    }

    /// Declares `units` of CPU work for handling this message.
    ///
    /// One unit is one second on a speed-1.0 vCPU; see
    /// [`InstanceType::service_time`](plasma_cluster::InstanceType::service_time).
    pub fn work(&mut self, units: f64) {
        if units.is_finite() && units > 0.0 {
            self.work += units;
        }
    }

    /// Sends a message carrying this message's client correlation (if any),
    /// so the reply can be issued further down the actor chain.
    pub fn send(&mut self, to: ActorId, fname: &str, bytes: u64) {
        let fname = self.rt.intern_fn(fname);
        self.sends.push(PendingSend {
            to,
            fname,
            bytes,
            corr: self.corr,
            payload: None,
        });
    }

    /// Like [`ActorCtx::send`] with an application payload attached.
    pub fn send_with(&mut self, to: ActorId, fname: &str, bytes: u64, payload: Payload) {
        let fname = self.rt.intern_fn(fname);
        self.sends.push(PendingSend {
            to,
            fname,
            bytes,
            corr: self.corr,
            payload: Some(payload),
        });
    }

    /// Sends a message that does *not* carry the client correlation
    /// (background traffic such as state synchronization).
    pub fn send_detached(&mut self, to: ActorId, fname: &str, bytes: u64) {
        let fname = self.rt.intern_fn(fname);
        self.sends.push(PendingSend {
            to,
            fname,
            bytes,
            corr: None,
            payload: None,
        });
    }

    /// Like [`ActorCtx::send_detached`] with a payload.
    pub fn send_detached_with(&mut self, to: ActorId, fname: &str, bytes: u64, payload: Payload) {
        let fname = self.rt.intern_fn(fname);
        self.sends.push(PendingSend {
            to,
            fname,
            bytes,
            corr: None,
            payload: Some(payload),
        });
    }

    /// Replies to the client request this message belongs to.
    ///
    /// No-op (with a diagnostic counter) if the message carries no
    /// correlation.
    pub fn reply(&mut self, bytes: u64) {
        match self.corr {
            Some(corr) => self.replies.push((corr, bytes, None)),
            None => self.rt.count_orphan_reply(),
        }
    }

    /// Like [`ActorCtx::reply`] with an application payload the client
    /// receives in [`ClientLogic::on_reply`].
    pub fn reply_with(&mut self, bytes: u64, payload: Payload) {
        match self.corr {
            Some(corr) => self.replies.push((corr, bytes, Some(payload))),
            None => self.rt.count_orphan_reply(),
        }
    }

    /// Creates a new actor. Placement is decided by the elasticity
    /// controller (the paper's "new actor creation" path, §4.2); without a
    /// controller decision the actor starts on the creator's server.
    pub fn spawn(
        &mut self,
        type_name: &str,
        logic: Box<dyn ActorLogic>,
        state_size: u64,
    ) -> ActorId {
        let creator_server = self.rt.actor_server(self.me);
        self.rt
            .spawn_placed(type_name, logic, state_size, Some(creator_server))
    }

    /// Adds `target` to this actor's reference property `prop`.
    pub fn add_ref(&mut self, prop: &str, target: ActorId) {
        self.rt.actor_add_ref(self.me, prop, target);
    }

    /// Removes `target` from this actor's reference property `prop`.
    pub fn remove_ref(&mut self, prop: &str, target: ActorId) {
        self.rt.actor_remove_ref(self.me, prop, target);
    }

    /// Returns the actors referenced by property `prop`.
    pub fn refs(&self, prop: &str) -> Vec<ActorId> {
        self.rt.actor_refs(self.me, prop)
    }

    /// Updates this actor's serialized-state size (drives `mem` usage and
    /// migration cost).
    pub fn set_state_size(&mut self, bytes: u64) {
        self.rt.set_actor_state_size(self.me, bytes);
    }

    /// Removes an actor (possibly this one); see
    /// [`Runtime::remove_actor`].
    pub fn despawn(&mut self, actor: ActorId) -> bool {
        self.rt.remove_actor(actor)
    }

    /// Records an application-level observation (e.g., a PageRank iteration
    /// time) into the run report.
    pub fn record(&mut self, series: &str, value: f64) {
        self.rt.record_custom(series, value);
    }

    /// Records a named scalar result into the run report.
    pub fn record_scalar(&mut self, name: &str, value: f64) {
        self.rt.record_scalar(name, value);
    }

    /// Requests the whole simulation to stop (batch jobs use this on
    /// convergence).
    pub fn stop_simulation(&mut self) {
        self.rt.stop();
    }
}

/// Execution context handed to [`ClientLogic`] callbacks.
pub struct ClientCtx<'a> {
    pub(crate) rt: &'a mut Runtime,
    pub(crate) me: ClientId,
}

impl ClientCtx<'_> {
    /// Returns this client's id.
    pub fn me(&self) -> ClientId {
        self.me
    }

    /// Returns the current virtual time.
    pub fn now(&self) -> SimTime {
        self.rt.now()
    }

    /// Returns the deterministic RNG.
    pub fn rng(&mut self) -> &mut DetRng {
        self.rt.rng()
    }

    /// Issues a request to `actor`, returning the request id.
    ///
    /// Latency is measured from now until some actor in the processing chain
    /// calls [`ActorCtx::reply`].
    pub fn request(&mut self, actor: ActorId, fname: &str, bytes: u64) -> u64 {
        self.rt.client_request(self.me, actor, fname, bytes, None)
    }

    /// Like [`ClientCtx::request`] with an application payload.
    pub fn request_with(
        &mut self,
        actor: ActorId,
        fname: &str,
        bytes: u64,
        payload: Payload,
    ) -> u64 {
        self.rt
            .client_request(self.me, actor, fname, bytes, Some(payload))
    }

    /// Schedules [`ClientLogic::on_timer`] after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.rt.client_timer(self.me, delay, token);
    }

    /// Records an observation into a free-form report series (e.g. marking
    /// when this client finished its workload).
    pub fn record(&mut self, series: &str, value: f64) {
        self.rt.record_custom(series, value);
    }

    /// Requests the whole simulation to stop.
    pub fn stop_simulation(&mut self) {
        self.rt.stop();
    }
}
