//! Per-actor runtime record: mailbox, location, references, migration state.

use std::collections::{BTreeMap, VecDeque};

use plasma_cluster::ServerId;
use plasma_sim::SimTime;

use crate::ids::{ActorId, ActorTypeId};
use crate::logic::ActorLogic;
use crate::message::Message;
use crate::stats::ActorCounters;

/// Why an actor cannot be migrated right now.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MigrationBlocked {
    /// A `pin` behavior protects the actor.
    Pinned,
    /// The actor has not yet satisfied the placement-stability residency
    /// requirement (§4.3: an actor migrates only after staying on the same
    /// server for at least one elasticity period).
    Residency,
    /// A migration is already in progress.
    InFlight,
    /// The destination equals the current server.
    SameServer,
    /// The destination server is not running.
    DestinationDown,
    /// The actor no longer exists.
    Gone,
}

/// Migration progress of an actor.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MigrationState {
    /// Waiting for the in-flight message service to finish.
    Pending {
        /// Migration target.
        dst: ServerId,
    },
    /// State is being transferred over the network.
    InTransit {
        /// Migration target.
        dst: ServerId,
    },
}

/// The runtime record of a live actor.
pub struct ActorEntry {
    /// The actor's id.
    pub id: ActorId,
    /// The actor's type.
    pub type_id: ActorTypeId,
    /// Current hosting server (updated when a migration completes).
    pub server: ServerId,
    /// Application logic; taken out while a message is being dispatched.
    pub logic: Option<Box<dyn ActorLogic>>,
    /// Serialized-state size in bytes, drives migration and `mem` features.
    pub state_size: u64,
    /// Reference properties (`prop` fields holding actor references).
    pub refs: BTreeMap<String, Vec<ActorId>>,
    /// Queued messages.
    pub mailbox: VecDeque<Message>,
    /// Whether the actor currently occupies a CPU lane.
    pub servicing: bool,
    /// Whether the actor is queued in its server's run queue.
    pub in_runq: bool,
    /// Migration progress, if any.
    pub migration: Option<MigrationState>,
    /// Monotone counter distinguishing migration attempts: each transfer
    /// carries the value at launch, and an arrival whose value no longer
    /// matches is stale (the migration was aborted by a fault in between).
    pub migration_seq: u64,
    /// When the actor arrived on its current server (residency clock).
    pub arrived_at: SimTime,
    /// Whether a `pin` behavior protects the actor from migration.
    pub pinned: bool,
    /// Actor is being removed; reaped when its current service completes.
    pub tombstone: bool,
    /// Profiling counters for the current window.
    pub counters: ActorCounters,
    /// Trace id of the admission decision that caused the pending/in-flight
    /// migration; becomes the parent of the `MigrationStart` event.
    pub migration_trace: Option<plasma_trace::EventId>,
}

impl ActorEntry {
    /// Creates a fresh entry resident on `server`.
    pub fn new(
        id: ActorId,
        type_id: ActorTypeId,
        server: ServerId,
        logic: Box<dyn ActorLogic>,
        state_size: u64,
        now: SimTime,
    ) -> Self {
        ActorEntry {
            id,
            type_id,
            server,
            logic: Some(logic),
            state_size,
            refs: BTreeMap::new(),
            mailbox: VecDeque::new(),
            servicing: false,
            in_runq: false,
            migration: None,
            migration_seq: 0,
            arrived_at: now,
            pinned: false,
            tombstone: false,
            counters: ActorCounters::default(),
            migration_trace: None,
        }
    }

    /// Returns `true` if the actor can be scheduled on a CPU lane.
    pub fn runnable(&self) -> bool {
        !self.mailbox.is_empty()
            && !self.servicing
            && !self.in_runq
            && !matches!(self.migration, Some(MigrationState::InTransit { .. }))
    }

    /// Checks whether a migration to `dst` may start, per the paper's
    /// stability policy.
    pub fn check_migratable(
        &self,
        dst: ServerId,
        now: SimTime,
        min_residency: plasma_sim::SimDuration,
    ) -> Result<(), MigrationBlocked> {
        if self.pinned {
            return Err(MigrationBlocked::Pinned);
        }
        if self.migration.is_some() {
            return Err(MigrationBlocked::InFlight);
        }
        if dst == self.server {
            return Err(MigrationBlocked::SameServer);
        }
        if now.saturating_since(self.arrived_at) < min_residency {
            return Err(MigrationBlocked::Residency);
        }
        Ok(())
    }

    /// Adds an actor reference under a property name.
    pub fn add_ref(&mut self, prop: &str, target: ActorId) {
        let list = self.refs.entry(prop.to_string()).or_default();
        if !list.contains(&target) {
            list.push(target);
        }
    }

    /// Removes an actor reference.
    pub fn remove_ref(&mut self, prop: &str, target: ActorId) {
        if let Some(list) = self.refs.get_mut(prop) {
            list.retain(|&a| a != target);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic::ActorCtx;
    use plasma_sim::SimDuration;

    struct Noop;
    impl ActorLogic for Noop {
        fn on_message(&mut self, _ctx: &mut ActorCtx<'_>, _msg: &mut Message) {}
    }

    fn entry() -> ActorEntry {
        ActorEntry::new(
            ActorId(0),
            ActorTypeId(0),
            ServerId(0),
            Box::new(Noop),
            1024,
            SimTime::ZERO,
        )
    }

    #[test]
    fn residency_blocks_until_elapsed() {
        let e = entry();
        let period = SimDuration::from_secs(60);
        assert_eq!(
            e.check_migratable(ServerId(1), SimTime::from_secs(30), period),
            Err(MigrationBlocked::Residency)
        );
        assert_eq!(
            e.check_migratable(ServerId(1), SimTime::from_secs(60), period),
            Ok(())
        );
    }

    #[test]
    fn pin_blocks() {
        let mut e = entry();
        e.pinned = true;
        assert_eq!(
            e.check_migratable(ServerId(1), SimTime::from_secs(999), SimDuration::ZERO),
            Err(MigrationBlocked::Pinned)
        );
    }

    #[test]
    fn same_server_blocks() {
        let e = entry();
        assert_eq!(
            e.check_migratable(ServerId(0), SimTime::from_secs(999), SimDuration::ZERO),
            Err(MigrationBlocked::SameServer)
        );
    }

    #[test]
    fn in_flight_blocks() {
        let mut e = entry();
        e.migration = Some(MigrationState::Pending { dst: ServerId(1) });
        assert_eq!(
            e.check_migratable(ServerId(2), SimTime::from_secs(999), SimDuration::ZERO),
            Err(MigrationBlocked::InFlight)
        );
    }

    #[test]
    fn refs_dedupe_and_remove() {
        let mut e = entry();
        e.add_ref("files", ActorId(7));
        e.add_ref("files", ActorId(7));
        e.add_ref("files", ActorId(8));
        assert_eq!(e.refs["files"], vec![ActorId(7), ActorId(8)]);
        e.remove_ref("files", ActorId(7));
        assert_eq!(e.refs["files"], vec![ActorId(8)]);
        e.remove_ref("ghost", ActorId(1)); // No-op on unknown property.
    }

    #[test]
    fn runnable_logic() {
        let mut e = entry();
        assert!(!e.runnable(), "empty mailbox");
        e.mailbox.push_back(Message {
            to: ActorId(0),
            fname: crate::ids::FnId(0),
            from: crate::message::CallerKind::Client,
            from_actor: None,
            bytes: 0,
            corr: None,
            payload: None,
            dest_server_at_send: None,
            forwarded: false,
            was_remote: false,
            trace: None,
        });
        assert!(e.runnable());
        e.servicing = true;
        assert!(!e.runnable());
        e.servicing = false;
        e.migration = Some(MigrationState::InTransit { dst: ServerId(1) });
        assert!(!e.runnable(), "in transit");
    }
}
