//! The interface between the actor runtime and an elasticity manager.
//!
//! The EMR (in `plasma-emr`) and all baseline policies implement
//! [`ElasticityController`]. The runtime invokes the controller at every
//! elasticity period, when servers finish booting, and when applications
//! create actors (initial placement, §4.2). The controller acts back on the
//! runtime through its public API: profiling snapshots, migrations,
//! pinning, and provisioning.

use plasma_cluster::ServerId;

use crate::ids::ActorTypeId;
use crate::runtime::Runtime;

/// A control-plane fault delivered to the controller by the chaos runtime.
///
/// The runtime handles data-plane faults (server crashes, partitions,
/// message loss) itself; faults that concern the elasticity manager's own
/// processes are forwarded here, because only the controller knows its
/// internal topology (e.g. how many GEMs it runs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ControlFault {
    /// The GEM at this index crash-stops (§4.3): its servers must be
    /// re-shuffled onto the surviving GEMs.
    GemCrash {
        /// Index of the crashed GEM.
        gem: usize,
    },
}

/// An elasticity manager driven by the runtime's periodic ticks.
///
/// All methods have no-op defaults so simple baselines only override what
/// they need.
pub trait ElasticityController: Send {
    /// Called once per elasticity period (set by
    /// [`RuntimeConfig::elasticity_period`](crate::RuntimeConfig)).
    fn on_elasticity_tick(&mut self, rt: &mut Runtime) {
        let _ = rt;
    }

    /// Called when a deferred control action scheduled through
    /// [`Runtime::schedule_control`] fires. Used by the EMR to model
    /// LEM-GEM round-trip latency.
    fn on_control(&mut self, rt: &mut Runtime, token: u64) {
        let _ = (rt, token);
    }

    /// Picks the initial server for a newly created actor.
    ///
    /// `creator` is the server of the creating actor (or `None` when the
    /// harness spawns directly). Returning `None` falls back to the
    /// creator's server, matching a runtime without placement advice.
    fn place_new_actor(
        &mut self,
        rt: &Runtime,
        type_id: ActorTypeId,
        creator: Option<ServerId>,
    ) -> Option<ServerId> {
        let _ = (rt, type_id, creator);
        None
    }

    /// Called when a provisioned server finishes booting.
    fn on_server_ready(&mut self, rt: &mut Runtime, server: ServerId) {
        let _ = (rt, server);
    }

    /// Called when the chaos runtime injects a fault into the control
    /// plane itself (e.g. a GEM crash). Controllers without internal
    /// failure domains can ignore this.
    fn on_fault(&mut self, rt: &mut Runtime, fault: ControlFault) {
        let _ = (rt, fault);
    }
}

/// A controller that never intervenes: the paper's "no elasticity" setup.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullController;

impl ElasticityController for NullController {}
