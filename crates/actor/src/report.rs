//! Measurement record of one simulation run.
//!
//! Every experiment harness reads its figure data from here: end-to-end
//! latency (global, bucketed, and per-client), per-server CPU and actor
//! count series, migration events, message locality counters, and free-form
//! application series (e.g., PageRank iteration times).

use std::collections::BTreeMap;

use plasma_cluster::ServerId;
use plasma_sim::metrics::{BucketedSeries, Histogram, TimeSeries};
use plasma_sim::{SimDuration, SimTime};

use crate::ids::{ActorId, ClientId};

/// One completed actor migration.
#[derive(Clone, Copy, Debug)]
pub struct MigrationRecord {
    /// When the actor resumed on the destination.
    pub at: SimTime,
    /// The migrated actor.
    pub actor: ActorId,
    /// Source server.
    pub src: ServerId,
    /// Destination server.
    pub dst: ServerId,
    /// How long the transfer took.
    pub transfer_time: SimDuration,
}

/// One elasticity decision the managers actually carried out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecisionKind {
    /// A server was requested (scale-out).
    Grow {
        /// The requested server.
        server: ServerId,
    },
    /// A server was decommissioned (scale-in).
    Shrink {
        /// The decommissioned server.
        server: ServerId,
    },
    /// An actor migration was accepted.
    Migrate {
        /// The migrating actor.
        actor: ActorId,
        /// Source server.
        src: ServerId,
        /// Destination server.
        dst: ServerId,
    },
}

/// One entry of the run's ordered decision sequence.
///
/// The timestamp is informational: the canonical line a decision contributes
/// to [`RunReport::decision_digest`] deliberately excludes it, so the digest
/// compares *what was decided, in what order* — the thing the simulator
/// promises to predict about a live run — while wall-clock and virtual
/// timings stay free to differ.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecisionRecord {
    /// When the decision was made (virtual time).
    pub at: SimTime,
    /// What was decided.
    pub kind: DecisionKind,
}

impl DecisionRecord {
    /// The canonical digest line, timestamp excluded.
    pub fn line(&self) -> String {
        match self.kind {
            DecisionKind::Grow { server } => format!("grow s{}", server.0),
            DecisionKind::Shrink { server } => format!("shrink s{}", server.0),
            DecisionKind::Migrate { actor, src, dst } => {
                format!("migrate a{} s{}->s{}", actor.0, src.0, dst.0)
            }
        }
    }
}

/// Aggregated measurements of one run.
#[derive(Debug)]
pub struct RunReport {
    /// End-to-end request latency distribution (milliseconds).
    pub latency: Histogram,
    /// Mean latency per time bucket (milliseconds) — the paper's latency plots.
    pub latency_series: BucketedSeries,
    /// Per-client mean latency per bucket (Fig. 11b).
    pub client_latency: BTreeMap<ClientId, BucketedSeries>,
    /// Per-server CPU utilization over time (Figs. 7b, 8b).
    pub server_cpu: BTreeMap<ServerId, TimeSeries>,
    /// Per-server resident actor count over time (Figs. 7c, 8c).
    pub server_actors: BTreeMap<ServerId, TimeSeries>,
    /// Completed migrations in order.
    pub migrations: Vec<MigrationRecord>,
    /// Elasticity decisions (grow/shrink/migrate) in decision order.
    pub decisions: Vec<DecisionRecord>,
    /// Messages delivered between actors on the same server.
    pub local_messages: u64,
    /// Messages delivered across servers.
    pub remote_messages: u64,
    /// Messages that paid a forwarding hop because the target migrated
    /// mid-flight.
    pub forwarded_messages: u64,
    /// Messages addressed to unknown actors (should stay 0 in our apps).
    pub dropped_messages: u64,
    /// Replies issued without a client correlation (app bug indicator).
    pub orphan_replies: u64,
    /// Client requests issued.
    pub requests: u64,
    /// Client replies delivered.
    pub replies: u64,
    /// Free-form application series keyed by name.
    pub custom: BTreeMap<String, TimeSeries>,
    /// Free-form scalar results keyed by name.
    pub scalars: BTreeMap<String, f64>,
}

impl RunReport {
    /// Creates an empty report with the given latency bucket width.
    pub fn new(latency_bucket: SimDuration) -> Self {
        RunReport {
            latency: Histogram::new(),
            latency_series: BucketedSeries::new(latency_bucket),
            client_latency: BTreeMap::new(),
            server_cpu: BTreeMap::new(),
            server_actors: BTreeMap::new(),
            migrations: Vec::new(),
            decisions: Vec::new(),
            local_messages: 0,
            remote_messages: 0,
            forwarded_messages: 0,
            dropped_messages: 0,
            orphan_replies: 0,
            requests: 0,
            replies: 0,
            custom: BTreeMap::new(),
            scalars: BTreeMap::new(),
        }
    }

    /// Returns the mean end-to-end latency in milliseconds.
    pub fn mean_latency_ms(&self) -> f64 {
        self.latency.mean()
    }

    /// Returns the named custom series, if recorded.
    pub fn series(&self, name: &str) -> Option<&TimeSeries> {
        self.custom.get(name)
    }

    /// Returns the named scalar, if recorded.
    pub fn scalar(&self, name: &str) -> Option<f64> {
        self.scalars.get(name).copied()
    }

    /// The canonical decision lines, in decision order (timestamps
    /// excluded — see [`DecisionRecord`]).
    pub fn decision_lines(&self) -> Vec<String> {
        self.decisions.iter().map(DecisionRecord::line).collect()
    }

    /// FNV-1a 64 digest of the decision sequence.
    ///
    /// Two runs with the same digest made the same elasticity decisions in
    /// the same order; this is what the sim/live parity tests compare.
    pub fn decision_digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = OFFSET;
        for record in &self.decisions {
            for byte in record.line().bytes().chain(std::iter::once(b'\n')) {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(PRIME);
            }
        }
        hash
    }

    /// Returns the fraction of inter-actor messages that stayed local.
    pub fn locality(&self) -> f64 {
        let total = self.local_messages + self.remote_messages;
        if total == 0 {
            return 0.0;
        }
        self.local_messages as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_sane() {
        let r = RunReport::new(SimDuration::from_secs(1));
        assert_eq!(r.mean_latency_ms(), 0.0);
        assert_eq!(r.locality(), 0.0);
        assert!(r.series("x").is_none());
        assert!(r.scalar("x").is_none());
    }

    #[test]
    fn decision_digest_is_order_sensitive_and_time_insensitive() {
        let grow = |at| DecisionRecord {
            at,
            kind: DecisionKind::Grow {
                server: ServerId(3),
            },
        };
        let migrate = |at| DecisionRecord {
            at,
            kind: DecisionKind::Migrate {
                actor: ActorId(42),
                src: ServerId(0),
                dst: ServerId(2),
            },
        };
        let mut a = RunReport::new(SimDuration::from_secs(1));
        a.decisions = vec![grow(SimTime::from_secs(1)), migrate(SimTime::from_secs(2))];
        let mut b = RunReport::new(SimDuration::from_secs(1));
        // Same decisions at different times: identical digest.
        b.decisions = vec![grow(SimTime::from_secs(5)), migrate(SimTime::from_secs(9))];
        assert_eq!(a.decision_digest(), b.decision_digest());
        assert_eq!(a.decision_lines(), vec!["grow s3", "migrate a42 s0->s2"]);
        // Reordered decisions: different digest.
        b.decisions.reverse();
        assert_ne!(a.decision_digest(), b.decision_digest());
        // Empty sequence digests the FNV offset basis.
        assert_eq!(
            RunReport::new(SimDuration::from_secs(1)).decision_digest(),
            0xcbf2_9ce4_8422_2325
        );
    }

    #[test]
    fn locality_fraction() {
        let mut r = RunReport::new(SimDuration::from_secs(1));
        r.local_messages = 3;
        r.remote_messages = 1;
        assert!((r.locality() - 0.75).abs() < 1e-12);
    }
}
