//! Runtime-side chaos bookkeeping.
//!
//! [`ChaosState`] is created by [`Runtime::install_fault_plan`]
//! (crate::Runtime::install_fault_plan) and exists only while a non-empty
//! fault plan is installed — the fault-free path carries no chaos state at
//! all, which is what keeps it byte-identical to a build without this
//! module. It holds the sorted fault schedule, the recovery policy, the
//! accumulating [`ChaosStats`], and the transient records recovery needs:
//! which servers are crashed but undetected, which actors are orphaned and
//! awaiting respawn, and how often each aborted migration has retried.

use std::collections::{BTreeMap, BTreeSet};

use plasma_chaos::fault::FaultEvent;
use plasma_chaos::{ChaosStats, RecoveryPolicy};
use plasma_cluster::ServerId;
use plasma_sim::SimTime;
use plasma_trace::EventId;

use crate::ids::{ActorId, ActorTypeId};
use crate::logic::ActorLogic;

/// An actor whose hosting server crashed, parked until recovery respawns
/// it. Its state is gone (accounted in [`ChaosStats::state_bytes_lost`]);
/// the logic, references and pin survive because the directory retains
/// them, per the AEON recovery model.
pub(crate) struct OrphanActor {
    /// The actor's identity (its slot is re-filled on respawn).
    pub id: ActorId,
    /// The actor's type.
    pub type_id: ActorTypeId,
    /// Application logic, carried over to the respawned incarnation.
    pub logic: Box<dyn ActorLogic>,
    /// State size the respawned incarnation starts with.
    pub state_size: u64,
    /// Reference properties, preserved by the directory.
    pub refs: BTreeMap<String, Vec<ActorId>>,
    /// Whether a `pin` behavior was active.
    pub pinned: bool,
    /// Migration-attempt counter, preserved so stale in-flight arrivals
    /// from before the crash can never match the new incarnation.
    pub migration_seq: u64,
}

/// A server crash awaiting detection by the heartbeat failure detector.
pub(crate) struct CrashRecord {
    /// When the crash happened.
    pub at: SimTime,
    /// Trace id of the `ServerCrashed` event, parent for detection.
    pub trace: Option<EventId>,
}

/// All mutable chaos state of a runtime with an installed fault plan.
pub(crate) struct ChaosState {
    /// The plan's faults, sorted by injection time.
    pub schedule: Vec<FaultEvent>,
    /// Detection and repair parameters.
    pub policy: RecoveryPolicy,
    /// Accumulated fault / recovery counters, exported as `chaos.*`.
    pub stats: ChaosStats,
    /// Crashed servers the failure detector has not yet declared dead.
    pub crashed: BTreeMap<ServerId, CrashRecord>,
    /// Crashed servers with a scheduled reboot: crash instant plus the
    /// `ServerRestarted` trace id (parent for in-place recovery).
    pub restarting: BTreeMap<ServerId, (SimTime, Option<EventId>)>,
    /// Orphaned actors per crashed server, in crash order.
    pub orphans: BTreeMap<ServerId, Vec<OrphanActor>>,
    /// Ids of all currently-orphaned actors (for message-loss accounting).
    pub orphaned_ids: BTreeSet<ActorId>,
    /// Retry attempts per actor with an aborted migration.
    pub retries: BTreeMap<ActorId, u32>,
    /// End of the currently open migration-abort window.
    pub abort_until: SimTime,
    /// Remaining migrations the open abort window may kill.
    pub abort_budget: u32,
    /// Until when `request_server` fails (provisioner stall).
    pub provisioner_stalled_until: SimTime,
}

impl ChaosState {
    /// Creates chaos state for a sorted schedule and a recovery policy.
    pub fn new(schedule: Vec<FaultEvent>, policy: RecoveryPolicy) -> Self {
        ChaosState {
            schedule,
            policy,
            stats: ChaosStats::default(),
            crashed: BTreeMap::new(),
            restarting: BTreeMap::new(),
            orphans: BTreeMap::new(),
            orphaned_ids: BTreeSet::new(),
            retries: BTreeMap::new(),
            abort_until: SimTime::ZERO,
            abort_budget: 0,
            provisioner_stalled_until: SimTime::ZERO,
        }
    }

    /// Whether an arriving migration should be aborted by the open window.
    pub fn should_abort_migration(&mut self, now: SimTime) -> bool {
        if now <= self.abort_until && self.abort_budget > 0 {
            self.abort_budget -= 1;
            true
        } else {
            false
        }
    }
}
