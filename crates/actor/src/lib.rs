#![warn(missing_docs)]

//! A from-scratch actor *cluster* runtime for PLASMA.
//!
//! The paper builds on AEON, a distributed actor language whose runtime
//! provides: typed actors with mailboxes, location-transparent messaging, a
//! directory, *live actor migration*, and hooks for an external elasticity
//! manager. No mainstream Rust actor framework is distributed (the original
//! motivation for this crate), so this module implements that runtime on top
//! of the simulated cluster from `plasma-cluster`:
//!
//! - [`ids`] — interned actor types, function names, actor and client ids.
//! - [`message`] — messages, caller kinds, client correlation for latency.
//! - [`logic`] — the [`ActorLogic`] / [`ClientLogic`] traits applications
//!   implement, and the contexts they program against.
//! - [`entry`] — per-actor runtime record: mailbox, references, residency.
//! - [`stats`] — the profiling counters the EPR (elasticity profiling
//!   runtime) reads each window.
//! - [`controller`] — the [`ElasticityController`] trait through which the
//!   EMR (or a baseline policy) observes the system and issues migrations.
//! - [`runtime`] — the discrete-event driver tying everything together.
//! - [`report`] — the measurement record every experiment harness consumes.
//!
//! The runtime is deterministic: same seed, same program, same trace.

mod chaos;
pub mod controller;
pub mod entry;
pub mod ids;
pub mod live;
pub mod logic;
pub mod message;
pub mod report;
pub mod runtime;
pub mod stats;

pub use controller::{ControlFault, ElasticityController, NullController};
pub use ids::{ActorId, ActorTypeId, ClientId, FnId};
pub use logic::{ActorCtx, ActorLogic, ClientCtx, ClientLogic};
pub use message::{CallerKind, Message};
pub use plasma_backend::{
    report_scale_votes, BackendKind, BackendStats, ControlDecision, ControlMsg, ControlQuery,
    ControlReply, MigrationOrder, ServerReport,
};
pub use report::{DecisionKind, DecisionRecord, RunReport};
pub use runtime::{DecommissionError, Runtime, RuntimeConfig};
