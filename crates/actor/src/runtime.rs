//! The discrete-event driver: scheduling, delivery, migration, profiling.
//!
//! One [`Runtime`] hosts a cluster, its actors, external clients, and an
//! optional [`ElasticityController`]. The event loop models:
//!
//! - **CPU**: each server has `vcpus` lanes; an actor's message handler
//!   occupies one lane for `work / speed` seconds (round-robin across actors
//!   with queued mail).
//! - **Network**: local vs. remote delivery latency plus wire time, NIC byte
//!   accounting on both ends, and a forwarding hop when a message races a
//!   migration.
//! - **Live migration**: finish the in-flight message, freeze, transfer
//!   state bytes, resume on the destination; the mailbox travels with the
//!   actor and residency/pinning rules gate when a migration may start.
//! - **Profiling (EPR)**: per-window actor counters and server utilization
//!   snapshots, plus an optional per-message profiling tax so the *cost* of
//!   profiling itself is measurable (Table 3).
//! - **Elasticity (EER)**: periodic controller ticks and deferred control
//!   callbacks for modeling LEM/GEM round-trips.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

use plasma_backend::{
    BackendKind, BackendStats, ControlDecision, ControlMsg, ControlQuery, ControlReply, Delivery,
    Execution, ExecutionBackend, ServerReport,
};
use plasma_chaos::fault::FaultKind;
use plasma_chaos::{FaultPlan, RecoveryPolicy};
use plasma_cluster::topology::ClusterLimits;
use plasma_cluster::{Cluster, InstanceType, NetworkModel, ServerId};
use plasma_sim::{DetRng, EventQueue, SimDuration, SimTime};
use plasma_trace::{Component, EventId, TraceEventKind, Tracer};

use crate::chaos::{ChaosState, CrashRecord, OrphanActor};
use crate::controller::{ControlFault, ElasticityController};
use crate::entry::{ActorEntry, MigrationBlocked, MigrationState};
use crate::ids::{ActorId, ActorTypeId, ClientId, FnId, NameRegistry};
use crate::logic::{ActorCtx, ActorLogic, ClientCtx, ClientLogic, PendingSend};
use crate::message::{CallerKind, Correlation, Message, Payload};
use crate::report::{DecisionKind, DecisionRecord, MigrationRecord, RunReport};
use crate::stats::{ActorWindowStats, ProfileSnapshot, ServerWindowStats, SnapshotDelta};

/// Tunable parameters of a simulation run.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Seed for the deterministic RNG.
    pub seed: u64,
    /// Interconnect model.
    pub network: NetworkModel,
    /// Cluster growth limits.
    pub limits: ClusterLimits,
    /// Width of the profiling window (EPR sampling period).
    pub profile_window: SimDuration,
    /// Elasticity period: how often the controller ticks (user-set, §2.2).
    pub elasticity_period: SimDuration,
    /// Minimum time an actor must stay on a server before migrating again.
    /// Defaults to the elasticity period per §4.3.
    pub min_residency: SimDuration,
    /// Whether the profiling runtime is enabled (Table 3 compares on/off).
    pub epr_enabled: bool,
    /// Fixed CPU work added to every message service by profiling.
    pub epr_tax_fixed: f64,
    /// Fractional CPU work added per unit of application work by profiling.
    pub epr_tax_frac: f64,
    /// Bucket width for latency series in the report.
    pub latency_bucket: SimDuration,
    /// Which execution backend carries the run (sim by default). The
    /// logical event schedule is identical either way; see `plasma-backend`.
    pub backend: BackendKind,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        let elasticity_period = SimDuration::from_secs(60);
        RuntimeConfig {
            seed: 0x504C_4153_4D41, // "PLASMA"
            network: NetworkModel::default(),
            limits: ClusterLimits::default(),
            profile_window: SimDuration::from_secs(1),
            elasticity_period,
            min_residency: elasticity_period,
            epr_enabled: true,
            // Calibrated so a saturated chat-room server loses ~0.5-2% of
            // throughput to profiling, matching Table 3's 0.1-2.3% band:
            // ~2us of bookkeeping per message plus 0.4% of handler work.
            epr_tax_fixed: 2e-6,
            epr_tax_frac: 0.004,
            latency_bucket: SimDuration::from_secs(1),
            backend: BackendKind::Sim,
        }
    }
}

/// Buffered output of an in-service message handler.
#[derive(Default)]
struct ServiceEffects {
    sends: Vec<PendingSend>,
    replies: Vec<(Correlation, u64, Option<Payload>)>,
}

struct ClientEntry {
    logic: Option<Box<dyn ClientLogic>>,
}

enum Event {
    DeliverActor(Message),
    DeliverReply {
        client: ClientId,
        request: u64,
        sent_at: SimTime,
        payload: Option<Payload>,
    },
    ServiceDone {
        server: ServerId,
        actor: ActorId,
        /// Crash epoch of the server at dispatch; a crash in between
        /// invalidates the service (the CPU it ran on is gone).
        epoch: u64,
    },
    MigrationArrive {
        actor: ActorId,
        dst: ServerId,
        started: SimTime,
        /// The actor's migration_seq at launch; a mismatch at arrival means
        /// the migration was aborted while the state was on the wire.
        seq: u64,
        trace: Option<EventId>,
    },
    ServerReady(ServerId),
    ClientStart(ClientId),
    ClientTimer {
        client: ClientId,
        token: u64,
    },
    ProfileWindow,
    ElasticityTick,
    Control {
        token: u64,
    },
    /// Inject fault `i` of the installed plan's schedule.
    Fault(usize),
    /// Periodic failure-detector sweep (only scheduled under chaos).
    HeartbeatCheck,
    /// Reboot a crashed server (ServerCrash with `restart_after`).
    ServerRestart(ServerId),
    /// Retry an aborted migration after backoff.
    MigrationRetry {
        actor: ActorId,
        dst: ServerId,
        attempt: u32,
    },
    /// Heal every active partition (Partition with `heal_after`).
    PartitionHeal,
    /// Clear link degradation (LinkDegrade with `heal_after`).
    LinkHeal,
}

/// Why [`Runtime::decommission_server`] refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecommissionError {
    /// Actors are still resident on the server.
    HasActors,
    /// An actor is migrating toward the server.
    InboundMigration,
    /// Stopping it would violate the cluster's `min_servers` floor.
    MinServers,
    /// The server is not running (booting, crashed, or already stopped).
    NotRunning,
}

/// The simulation runtime. See the [module docs](self) for the model.
pub struct Runtime {
    cfg: RuntimeConfig,
    now: SimTime,
    events: EventQueue<Event>,
    cluster: Cluster,
    names: NameRegistry,
    actors: Vec<Option<ActorEntry>>,
    actors_by_server: Vec<BTreeSet<ActorId>>,
    free_lanes: Vec<u32>,
    runq: Vec<VecDeque<ActorId>>,
    in_service: BTreeMap<ActorId, ServiceEffects>,
    clients: Vec<ClientEntry>,
    controller: Option<Box<dyn ElasticityController>>,
    rng: DetRng,
    tracer: Tracer,
    stopped: bool,
    snapshot: Arc<ProfileSnapshot>,
    /// Per-window deltas between consecutive snapshot generations, oldest
    /// first; bounded by `delta_cap`. Consumers compose them via
    /// [`Runtime::delta_since`] to patch retained indexes incrementally.
    deltas: VecDeque<SnapshotDelta>,
    /// History bound: a couple of elasticity periods' worth of windows, so
    /// a round can always bridge back to the previous round's generation.
    delta_cap: usize,
    report: RunReport,
    next_request: u64,
    orphan_replies: u64,
    /// Per-server crash epoch; bumped on crash to cancel stale services.
    server_epoch: Vec<u64>,
    /// Per-server count of migrations currently targeting the server.
    inbound_migrations: Vec<u32>,
    /// Present only while a non-empty fault plan is installed.
    chaos: Option<ChaosState>,
    /// The carrier underneath the logical schedule (sim or live).
    backend: Box<dyn ExecutionBackend>,
    /// Elasticity ticks fired so far (the round counter fed to the
    /// backend's round barrier).
    elasticity_rounds: u64,
}

impl Runtime {
    /// Creates a runtime and schedules the periodic profiling and
    /// elasticity events.
    pub fn new(cfg: RuntimeConfig) -> Self {
        let cluster = Cluster::new(cfg.network.clone(), cfg.limits.clone());
        let mut events = EventQueue::new();
        events.push(SimTime::ZERO + cfg.profile_window, Event::ProfileWindow);
        events.push(SimTime::ZERO + cfg.elasticity_period, Event::ElasticityTick);
        let rng = DetRng::new(cfg.seed);
        let report = RunReport::new(cfg.latency_bucket);
        // The net backend spawns worker processes, so it lives above the
        // backend crate and is routed here rather than through `make`.
        let backend: Box<dyn ExecutionBackend> = match cfg.backend {
            BackendKind::Net => Box::new(
                plasma_net::NetConfig::from_env()
                    .and_then(plasma_net::NetBackend::launch)
                    .unwrap_or_else(|e| panic!("launching net backend workers: {e}")),
            ),
            kind => plasma_backend::make(kind),
        };
        // Enough per-window deltas to span two elasticity rounds (plus
        // slack for skew-injected extra generations); if a configuration
        // outruns this, `delta_since` reports a gap and consumers rebuild.
        let windows_per_round = (cfg.elasticity_period.as_secs_f64()
            / cfg.profile_window.as_secs_f64().max(1e-9))
        .ceil() as usize;
        let delta_cap = (2 * windows_per_round + 4).clamp(8, 1024);
        Runtime {
            cfg,
            now: SimTime::ZERO,
            events,
            cluster,
            names: NameRegistry::new(),
            actors: Vec::new(),
            actors_by_server: Vec::new(),
            free_lanes: Vec::new(),
            runq: Vec::new(),
            in_service: BTreeMap::new(),
            clients: Vec::new(),
            controller: None,
            rng,
            tracer: Tracer::disabled(),
            stopped: false,
            snapshot: Arc::new(ProfileSnapshot::default()),
            deltas: VecDeque::new(),
            delta_cap,
            report,
            next_request: 0,
            orphan_replies: 0,
            server_epoch: Vec::new(),
            inbound_migrations: Vec::new(),
            chaos: None,
            backend,
            elasticity_rounds: 0,
        }
    }

    // ------------------------------------------------------------------
    // Construction-time API (harness side).
    // ------------------------------------------------------------------

    /// Installs the elasticity controller.
    pub fn set_controller(&mut self, controller: Box<dyn ElasticityController>) {
        self.controller = Some(controller);
    }

    /// Installs the tracer runtime events are emitted to; the cluster's
    /// provisioning events feed the same recorder.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.cluster.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// Returns the tracer (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Adds a server that is usable immediately (initial deployment).
    ///
    /// Part of the initial topology, not an elasticity decision: it is
    /// excluded from the decision sequence (unlike
    /// [`Runtime::request_server`]).
    pub fn add_server(&mut self, itype: InstanceType) -> ServerId {
        let id = self.cluster.add_running_server(itype, self.now);
        self.ensure_server_slots(id);
        self.sync_backend_lifecycle();
        id
    }

    /// Requests a new server; it becomes usable after its boot delay and the
    /// controller is notified via
    /// [`ElasticityController::on_server_ready`].
    ///
    /// Fails (returns `None`) while an injected provisioner stall is
    /// active, in addition to the cluster's own growth limits.
    pub fn request_server(&mut self, itype: InstanceType) -> Option<ServerId> {
        if let Some(chaos) = &self.chaos {
            if self.now < chaos.provisioner_stalled_until {
                return None;
            }
        }
        let (id, ready_at) = self.cluster.request_server(itype, self.now)?;
        self.ensure_server_slots(id);
        self.events.push(ready_at, Event::ServerReady(id));
        self.report.decisions.push(DecisionRecord {
            at: self.now,
            kind: DecisionKind::Grow { server: id },
        });
        Some(id)
    }

    /// Stops an empty running server. Fails if actors are resident or
    /// migrating toward it, if the server is not running, or if
    /// `min_servers` would be violated.
    pub fn decommission_server(&mut self, id: ServerId) -> Result<(), DecommissionError> {
        if !self.cluster.server(id).is_running() {
            return Err(DecommissionError::NotRunning);
        }
        if !self.actors_by_server[id.0 as usize].is_empty() {
            return Err(DecommissionError::HasActors);
        }
        if self.inbound_migrations[id.0 as usize] > 0 {
            return Err(DecommissionError::InboundMigration);
        }
        if self.cluster.decommission(id, self.now) {
            self.report.decisions.push(DecisionRecord {
                at: self.now,
                kind: DecisionKind::Shrink { server: id },
            });
            self.sync_backend_lifecycle();
            Ok(())
        } else {
            Err(DecommissionError::MinServers)
        }
    }

    /// Installs a fault plan and recovery policy, arming the chaos runtime.
    ///
    /// Every fault in the plan is scheduled as a first-class simulation
    /// event, and the heartbeat failure detector starts sweeping. An empty
    /// plan is the identity: nothing is scheduled, no chaos state is
    /// created, and the run stays byte-identical to one without this call.
    pub fn install_fault_plan(&mut self, plan: &FaultPlan, policy: RecoveryPolicy) {
        if plan.is_empty() {
            return;
        }
        let schedule = plan.schedule();
        for (i, ev) in schedule.iter().enumerate() {
            self.events.push(ev.at, Event::Fault(i));
        }
        self.events
            .push(self.now + policy.heartbeat_period, Event::HeartbeatCheck);
        self.chaos = Some(ChaosState::new(schedule, policy));
    }

    /// Returns whether servers `a` and `b` can exchange messages (no
    /// active partition severs them). Always `true` fault-free.
    pub fn reachable(&self, a: ServerId, b: ServerId) -> bool {
        !self.cluster.net_faults().severed(a, b)
    }

    /// Creates an actor on an explicit server (initial deployment).
    ///
    /// # Panics
    ///
    /// Panics if `server` is not running.
    pub fn spawn_actor(
        &mut self,
        type_name: &str,
        logic: Box<dyn ActorLogic>,
        state_size: u64,
        server: ServerId,
    ) -> ActorId {
        assert!(
            self.cluster.server(server).is_running(),
            "spawn on non-running {server:?}"
        );
        let type_id = self.names.actor_type(type_name);
        self.insert_actor(type_id, logic, state_size, server)
    }

    /// Creates an actor, asking the controller for placement (the paper's
    /// new-actor-creation path). Falls back to the creator's server, then to
    /// the first running server.
    pub fn spawn_placed(
        &mut self,
        type_name: &str,
        logic: Box<dyn ActorLogic>,
        state_size: u64,
        creator: Option<ServerId>,
    ) -> ActorId {
        let type_id = self.names.actor_type(type_name);
        let mut controller = self.controller.take();
        let choice = controller
            .as_mut()
            .and_then(|c| c.place_new_actor(self, type_id, creator));
        self.controller = controller;
        let fallback = creator.or_else(|| self.cluster.running_ids().first().copied());
        let server = choice
            .filter(|&s| self.cluster.server(s).is_running())
            .or(fallback)
            .expect("no running server to place actor on");
        self.insert_actor(type_id, logic, state_size, server)
    }

    fn insert_actor(
        &mut self,
        type_id: ActorTypeId,
        logic: Box<dyn ActorLogic>,
        state_size: u64,
        server: ServerId,
    ) -> ActorId {
        let id = ActorId(self.actors.len() as u64);
        let entry = ActorEntry::new(id, type_id, server, logic, state_size, self.now);
        self.actors.push(Some(entry));
        self.actors_by_server[server.0 as usize].insert(id);
        self.cluster.server_mut(server).add_mem(state_size);
        self.tracer.emit(self.now, Component::Runtime, None, || {
            TraceEventKind::ActorCreated {
                actor: id.0,
                actor_type: self.names.type_name(type_id).to_string(),
                server: server.0,
            }
        });
        id
    }

    /// Removes an actor from the system (the application-level "this
    /// entity is gone" operation, e.g. a user leaving a service).
    ///
    /// If the actor is mid-service, removal completes when the current
    /// message finishes. Queued and in-flight messages to it are dropped
    /// (counted in the report). Returns `false` if the actor is unknown or
    /// already removed.
    pub fn remove_actor(&mut self, actor: ActorId) -> bool {
        let Some(entry) = self
            .actors
            .get_mut(actor.0 as usize)
            .and_then(|e| e.as_mut())
        else {
            return false;
        };
        if entry.tombstone {
            return false;
        }
        entry.tombstone = true;
        if !entry.servicing {
            self.reap_actor(actor);
        }
        true
    }

    fn reap_actor(&mut self, actor: ActorId) {
        let Some(entry) = self.actors.get_mut(actor.0 as usize).and_then(|e| e.take()) else {
            return;
        };
        let server = entry.server;
        self.actors_by_server[server.0 as usize].remove(&actor);
        // Mid-transit state was already deducted from the source server.
        if !matches!(entry.migration, Some(MigrationState::InTransit { .. })) {
            self.cluster.server_mut(server).remove_mem(entry.state_size);
        }
        if let Some(MigrationState::Pending { dst } | MigrationState::InTransit { dst }) =
            entry.migration
        {
            self.inbound_migrations[dst.0 as usize] -= 1;
        }
        if entry.in_runq {
            self.runq[server.0 as usize].retain(|&a| a != actor);
        }
        self.report.dropped_messages += entry.mailbox.len() as u64;
        self.tracer.emit(self.now, Component::Runtime, None, || {
            TraceEventKind::ActorRemoved {
                actor: actor.0,
                server: server.0,
            }
        });
    }

    /// Registers a client and schedules its `on_start` immediately.
    pub fn add_client(&mut self, logic: Box<dyn ClientLogic>) -> ClientId {
        let id = ClientId(self.clients.len() as u32);
        self.clients.push(ClientEntry { logic: Some(logic) });
        self.events.push(self.now, Event::ClientStart(id));
        id
    }

    // ------------------------------------------------------------------
    // Introspection API (controller and harness side).
    // ------------------------------------------------------------------

    /// Returns the current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Returns the runtime configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.cfg
    }

    /// Overrides the placement-stability residency requirement.
    pub fn set_min_residency(&mut self, d: SimDuration) {
        self.cfg.min_residency = d;
    }

    /// Returns the deterministic RNG.
    pub fn rng(&mut self) -> &mut DetRng {
        &mut self.rng
    }

    /// Returns the cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Returns the name registry.
    pub fn names(&self) -> &NameRegistry {
        &self.names
    }

    /// Returns the name registry mutably (for interning).
    pub fn names_mut(&mut self) -> &mut NameRegistry {
        &mut self.names
    }

    /// Interns a function name.
    pub fn intern_fn(&mut self, name: &str) -> FnId {
        self.names.function(name)
    }

    /// Returns the most recent profiling snapshot.
    pub fn snapshot(&self) -> &ProfileSnapshot {
        &self.snapshot
    }

    /// Returns a shared handle to the most recent profiling snapshot.
    ///
    /// The snapshot is built exactly once per profiling window
    /// ([`ProfileSnapshot::generation`] counts the builds); cloning the
    /// `Arc` lets every LEM/GEM consumer in a decision round read the same
    /// build without copying any stats.
    pub fn snapshot_shared(&self) -> Arc<ProfileSnapshot> {
        Arc::clone(&self.snapshot)
    }

    /// Returns how many profiling snapshots have been built so far
    /// (the generation of the current snapshot).
    pub fn snapshot_builds(&self) -> u64 {
        self.snapshot.generation
    }

    /// Composes the per-window deltas from generation `from` up to the
    /// current snapshot into one [`SnapshotDelta`], or `None` when the
    /// bounded history no longer reaches back that far (or `from` is ahead
    /// of the current generation) — the caller must rebuild from scratch.
    ///
    /// `from == current` yields an empty delta.
    pub fn delta_since(&self, from: u64) -> Option<SnapshotDelta> {
        let current = self.snapshot.generation;
        if from > current {
            return None;
        }
        let mut merged = SnapshotDelta {
            from_generation: from,
            to_generation: from,
            ..SnapshotDelta::default()
        };
        if from == current {
            return Some(merged);
        }
        // History holds consecutive one-generation steps, oldest first.
        let first = self.deltas.front()?.from_generation;
        if from < first {
            return None;
        }
        for step in self.deltas.iter().skip((from - first) as usize) {
            debug_assert_eq!(step.from_generation, merged.to_generation);
            merged.merge(step);
        }
        debug_assert_eq!(merged.to_generation, current);
        Some(merged)
    }

    /// Returns the server currently hosting `actor`.
    ///
    /// # Panics
    ///
    /// Panics if the actor does not exist.
    pub fn actor_server(&self, actor: ActorId) -> ServerId {
        self.entry(actor).server
    }

    /// Returns the type of `actor`.
    pub fn actor_type(&self, actor: ActorId) -> ActorTypeId {
        self.entry(actor).type_id
    }

    /// Returns the ids of actors resident on `server`, in id order.
    pub fn actors_on(&self, server: ServerId) -> Vec<ActorId> {
        self.actors_by_server[server.0 as usize]
            .iter()
            .copied()
            .collect()
    }

    /// Returns the number of actors resident on `server`.
    pub fn actor_count_on(&self, server: ServerId) -> usize {
        self.actors_by_server[server.0 as usize].len()
    }

    /// Returns every live actor id.
    pub fn all_actors(&self) -> Vec<ActorId> {
        self.actors.iter().flatten().map(|e| e.id).collect()
    }

    /// Returns whether `actor` is pinned (false for removed actors).
    pub fn is_pinned(&self, actor: ActorId) -> bool {
        self.try_entry(actor).map(|e| e.pinned).unwrap_or(false)
    }

    /// Pins or unpins an actor (the `pin` behavior). No-op for removed
    /// actors.
    pub fn set_pinned(&mut self, actor: ActorId, pinned: bool) {
        if let Some(e) = self.try_entry_mut(actor) {
            e.pinned = pinned;
        }
    }

    /// Returns the referenced actors of `actor.prop` (empty for removed
    /// actors).
    pub fn actor_refs(&self, actor: ActorId, prop: &str) -> Vec<ActorId> {
        self.try_entry(actor)
            .and_then(|e| e.refs.get(prop).cloned())
            .unwrap_or_default()
    }

    /// Adds a reference `actor.prop += target`. No-op for removed actors.
    pub fn actor_add_ref(&mut self, actor: ActorId, prop: &str, target: ActorId) {
        if let Some(e) = self.try_entry_mut(actor) {
            e.add_ref(prop, target);
        }
    }

    /// Removes a reference. No-op for removed actors.
    pub fn actor_remove_ref(&mut self, actor: ActorId, prop: &str, target: ActorId) {
        if let Some(e) = self.try_entry_mut(actor) {
            e.remove_ref(prop, target);
        }
    }

    /// Updates an actor's state size, adjusting server memory accounting.
    /// No-op for removed actors.
    pub fn set_actor_state_size(&mut self, actor: ActorId, bytes: u64) {
        let Some((server, old)) = self.try_entry(actor).map(|e| (e.server, e.state_size)) else {
            return;
        };
        if let Some(e) = self.try_entry_mut(actor) {
            e.state_size = bytes;
        }
        let s = self.cluster.server_mut(server);
        s.remove_mem(old);
        s.add_mem(bytes);
    }

    /// Returns whether the actor is still alive.
    pub fn actor_alive(&self, actor: ActorId) -> bool {
        self.try_entry(actor).is_some()
    }

    /// Records a point in a free-form application series.
    pub fn record_custom(&mut self, series: &str, value: f64) {
        self.report
            .custom
            .entry(series.to_string())
            .or_default()
            .push(self.now, value);
    }

    /// Records a named scalar result.
    pub fn record_scalar(&mut self, name: &str, value: f64) {
        self.report.scalars.insert(name.to_string(), value);
    }

    pub(crate) fn count_orphan_reply(&mut self) {
        self.orphan_replies += 1;
    }

    /// Requests the event loop to stop at the current instant.
    pub fn stop(&mut self) {
        self.stopped = true;
    }

    /// Returns whether the run was stopped via [`Runtime::stop`].
    pub fn is_stopped(&self) -> bool {
        self.stopped
    }

    // ------------------------------------------------------------------
    // Elasticity actions.
    // ------------------------------------------------------------------

    /// Starts a live migration of `actor` to `dst`.
    ///
    /// Respects pinning, residency, in-flight migrations, and destination
    /// liveness. If the actor is mid-service, the migration starts when the
    /// current message completes.
    pub fn migrate(&mut self, actor: ActorId, dst: ServerId) -> Result<(), MigrationBlocked> {
        self.migrate_traced(actor, dst, None)
    }

    /// [`Runtime::migrate`] with a causal trace parent: the emitted
    /// `MigrationStart` event links back to `parent` (typically the
    /// admission decision that approved the move).
    pub fn migrate_traced(
        &mut self,
        actor: ActorId,
        dst: ServerId,
        parent: Option<EventId>,
    ) -> Result<(), MigrationBlocked> {
        if !self.cluster.server(dst).is_running() {
            return Err(MigrationBlocked::DestinationDown);
        }
        let min_res = self.cfg.min_residency;
        let now = self.now;
        let entry = self.try_entry(actor).ok_or(MigrationBlocked::Gone)?;
        entry.check_migratable(dst, now, min_res)?;
        if !self.reachable(entry.server, dst) {
            // A partition severs source and destination: the state transfer
            // could never complete, so refuse up front.
            return Err(MigrationBlocked::DestinationDown);
        }
        let src = self.entry(actor).server;
        self.report.decisions.push(DecisionRecord {
            at: self.now,
            kind: DecisionKind::Migrate { actor, src, dst },
        });
        self.inbound_migrations[dst.0 as usize] += 1;
        self.entry_mut(actor).migration_trace = parent;
        if self.entry(actor).servicing {
            self.entry_mut(actor).migration = Some(MigrationState::Pending { dst });
        } else {
            self.begin_transit(actor, dst);
        }
        Ok(())
    }

    /// Schedules [`ElasticityController::on_control`] after `delay`,
    /// used by the EMR to model LEM-GEM message latency.
    pub fn schedule_control(&mut self, delay: SimDuration, token: u64) {
        self.events.push(self.now + delay, Event::Control { token });
    }

    /// Returns the one-way control-plane latency from the network model.
    pub fn control_latency(&self) -> SimDuration {
        self.cfg.network.control_latency
    }

    // ------------------------------------------------------------------
    // Client-side internals (called from ClientCtx).
    // ------------------------------------------------------------------

    pub(crate) fn client_request(
        &mut self,
        client: ClientId,
        actor: ActorId,
        fname: &str,
        bytes: u64,
        payload: Option<Payload>,
    ) -> u64 {
        let request = self.next_request;
        self.next_request += 1;
        // Requests to removed actors vanish (no reply), like a connection
        // to a decommissioned endpoint.
        let Some(dest_server) = self.try_entry(actor).map(|e| e.server) else {
            self.report.dropped_messages += 1;
            return request;
        };
        let fname = self.names.function(fname);
        let corr = Correlation {
            client,
            request,
            sent_at: self.now,
        };
        let bps = self.cluster.server(dest_server).instance().net_bps;
        let delay = self.cfg.network.client_delay(bytes, bps);
        let trace = self.tracer.emit(self.now, Component::Runtime, None, || {
            TraceEventKind::MessageSend {
                from_actor: None,
                from_client: Some(client.0),
                to: actor.0,
                func: fname.0,
                bytes,
            }
        });
        let msg = Message {
            to: actor,
            fname,
            from: CallerKind::Client,
            from_actor: None,
            bytes,
            corr: Some(corr),
            payload,
            dest_server_at_send: Some(dest_server),
            forwarded: false,
            was_remote: true,
            trace,
        };
        self.report.requests += 1;
        self.events.push(self.now + delay, Event::DeliverActor(msg));
        request
    }

    /// Injects a message to an actor from outside the cluster, without
    /// client correlation or latency accounting. Useful for bootstrapping
    /// self-driving workloads (e.g. kicking off a batch job) and in tests.
    pub fn inject(&mut self, to: ActorId, fname: &str, bytes: u64, payload: Option<Payload>) {
        let fname = self.names.function(fname);
        let Some(dest_server) = self.try_entry(to).map(|e| e.server) else {
            self.report.dropped_messages += 1;
            return;
        };
        let trace = self.tracer.emit(self.now, Component::Runtime, None, || {
            TraceEventKind::MessageSend {
                from_actor: None,
                from_client: None,
                to: to.0,
                func: fname.0,
                bytes,
            }
        });
        let msg = Message {
            to,
            fname,
            from: CallerKind::Client,
            from_actor: None,
            bytes,
            corr: None,
            payload,
            dest_server_at_send: Some(dest_server),
            forwarded: false,
            was_remote: false,
            trace,
        };
        self.events.push(self.now, Event::DeliverActor(msg));
    }

    pub(crate) fn client_timer(&mut self, client: ClientId, delay: SimDuration, token: u64) {
        self.events
            .push(self.now + delay, Event::ClientTimer { client, token });
    }

    // ------------------------------------------------------------------
    // Event loop.
    // ------------------------------------------------------------------

    /// Runs the simulation until `end` (inclusive) or until stopped.
    pub fn run_until(&mut self, end: SimTime) {
        while !self.stopped {
            let Some(t) = self.events.peek_time() else {
                break;
            };
            if t > end {
                break;
            }
            let (t, event) = self.events.pop().expect("peeked");
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            self.handle(event);
            // Forward any server lifecycle transitions this event caused to
            // the carrier, so worker threads track cluster membership.
            if self.cluster.has_lifecycle_events() {
                self.sync_backend_lifecycle();
            }
        }
        if !self.stopped && self.now < end {
            self.now = end;
        }
        self.finalize_report();
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::DeliverActor(msg) => self.on_deliver_batch(msg),
            Event::DeliverReply {
                client,
                request,
                sent_at,
                payload,
            } => self.on_reply(client, request, sent_at, payload),
            Event::ServiceDone {
                server,
                actor,
                epoch,
            } => self.on_service_done(server, actor, epoch),
            Event::MigrationArrive {
                actor,
                dst,
                started,
                seq,
                trace,
            } => self.on_migration_arrive(actor, dst, started, seq, trace),
            Event::ServerReady(id) => self.on_server_ready(id),
            Event::ClientStart(id) => self.with_client(id, |logic, ctx| logic.on_start(ctx)),
            Event::ClientTimer { client, token } => {
                self.with_client(client, |logic, ctx| logic.on_timer(ctx, token))
            }
            Event::ProfileWindow => self.on_profile_window(),
            Event::ElasticityTick => self.on_elasticity_tick(),
            Event::Control { token } => {
                let mut controller = self.controller.take();
                if let Some(c) = controller.as_mut() {
                    c.on_control(self, token);
                }
                if self.controller.is_none() {
                    self.controller = controller;
                }
            }
            Event::Fault(i) => self.on_fault_event(i),
            Event::HeartbeatCheck => self.on_heartbeat_check(),
            Event::ServerRestart(id) => self.on_server_restart(id),
            Event::MigrationRetry {
                actor,
                dst,
                attempt,
            } => self.on_migration_retry(actor, dst, attempt),
            Event::PartitionHeal => {
                let healed = self.cluster.net_faults_mut().heal_partitions();
                self.tracer.emit(self.now, Component::Chaos, None, || {
                    TraceEventKind::PartitionHealed {
                        healed: healed as u64,
                    }
                });
            }
            Event::LinkHeal => {
                let was_active = self.cluster.net_faults_mut().clear_degradation();
                self.backend.link_delay(0);
                self.tracer.emit(self.now, Component::Chaos, None, || {
                    TraceEventKind::LinksHealed { was_active }
                });
            }
        }
    }

    /// Returns whether `event` is a delivery that will take the plain
    /// enqueue path (live destination, no forwarding hop) on `server` —
    /// i.e. its bookkeeping pushes no events and touches only that
    /// server's queues, so it can join a coalesced same-tick batch.
    fn simple_delivery_to(actors: &[Option<ActorEntry>], event: &Event, server: ServerId) -> bool {
        let Event::DeliverActor(msg) = event else {
            return false;
        };
        let Some(entry) = actors.get(msg.to.0 as usize).and_then(|e| e.as_ref()) else {
            return false;
        };
        entry.server == server && Self::plain_delivery(msg, entry.server)
    }

    /// Returns whether `msg` takes the plain enqueue path when its
    /// destination actor lives on `host`: either the send-time destination
    /// still matches, or the message already took its one forwarding hop —
    /// so delivering it pushes no re-route events.
    fn plain_delivery(msg: &Message, host: ServerId) -> bool {
        msg.forwarded || msg.dest_server_at_send.is_none_or(|s| s == host)
    }

    /// Delivers `msg` and coalesces the run of same-tick deliveries bound
    /// for the same server behind it into a single dispatch pass.
    ///
    /// This is behavior-preserving: a plain delivery's bookkeeping pushes
    /// no events, so deferring `try_dispatch` to the end of the run
    /// schedules the exact same `ServiceDone` events with the exact same
    /// sequence numbers the one-dispatch-per-delivery path would — the run
    /// queue is FIFO and lanes are claimed in delivery order either way.
    /// The batch stops at the first same-tick event that is not a plain
    /// delivery to this server (forwarding hops and orphan drops re-route
    /// or count events, so they keep their positions in the global order).
    fn on_deliver_batch(&mut self, msg: Message) {
        let simple = self
            .actors
            .get(msg.to.0 as usize)
            .and_then(|e| e.as_ref())
            .map(|entry| (entry.server, Self::plain_delivery(&msg, entry.server)));
        let Some((server, true)) = simple else {
            self.on_deliver(msg);
            return;
        };
        let mut queued = self.deliver_enqueue(msg);
        loop {
            let next = {
                let actors = &self.actors;
                self.events
                    .pop_at_if(self.now, |e| Self::simple_delivery_to(actors, e, server))
            };
            match next {
                Some(Event::DeliverActor(m)) => queued |= self.deliver_enqueue(m),
                Some(_) => unreachable!("predicate admits deliveries only"),
                None => break,
            }
        }
        if queued {
            self.try_dispatch(server);
        }
    }

    fn on_deliver(&mut self, mut msg: Message) {
        let Some(entry) = self.actors.get(msg.to.0 as usize).and_then(|e| e.as_ref()) else {
            // Arrivals addressed to an orphaned actor (crashed, not yet
            // respawned) are crash losses, not application bugs.
            if let Some(chaos) = self.chaos.as_mut() {
                if chaos.orphaned_ids.contains(&msg.to) {
                    chaos.stats.messages_lost_crash += 1;
                }
            }
            self.report.dropped_messages += 1;
            return;
        };
        let here = entry.server;
        // The actor migrated while the message was in flight: pay one
        // forwarding hop to its new home, once.
        if msg.dest_server_at_send.is_some_and(|s| s != here) && !msg.forwarded {
            msg.forwarded = true;
            msg.dest_server_at_send = Some(here);
            self.report.forwarded_messages += 1;
            let delay = self.cfg.network.remote_latency;
            self.events.push(self.now + delay, Event::DeliverActor(msg));
            return;
        }
        if self.deliver_enqueue(msg) {
            self.try_dispatch(here);
        }
    }

    /// The plain delivery path: byte accounting, tracing, carriage, and
    /// mailbox/run-queue bookkeeping — everything `on_deliver` does short
    /// of dispatching. Returns whether the destination joined the run
    /// queue. The caller has already ruled out the orphan and forwarding
    /// branches.
    fn deliver_enqueue(&mut self, msg: Message) -> bool {
        let here = self.entry(msg.to).server;
        if msg.was_remote {
            self.cluster.server_mut(here).add_net_bytes(msg.bytes);
            self.report.remote_messages += 1;
        } else {
            self.report.local_messages += 1;
        }
        self.tracer
            .emit(self.now, Component::Runtime, msg.trace, || {
                TraceEventKind::MessageDeliver {
                    to: msg.to.0,
                    server: here.0,
                    func: msg.fname.0,
                    forwarded: msg.forwarded,
                }
            });
        self.backend.transmit(Delivery {
            server: here.0,
            actor: msg.to.0,
            bytes: msg.bytes,
            remote: msg.was_remote,
        });
        let entry = self.entry_mut(msg.to);
        entry.mailbox.push_back(msg);
        let id = entry.id;
        if entry.runnable() {
            entry.in_runq = true;
            self.runq[here.0 as usize].push_back(id);
            true
        } else {
            false
        }
    }

    fn try_dispatch(&mut self, server: ServerId) {
        let sidx = server.0 as usize;
        while self.free_lanes[sidx] > 0 {
            let Some(actor) = self.runq[sidx].pop_front() else {
                break;
            };
            let Some(entry) = self.actors[actor.0 as usize].as_mut() else {
                continue;
            };
            entry.in_runq = false;
            if entry.server != server
                || entry.servicing
                || matches!(entry.migration, Some(MigrationState::InTransit { .. }))
            {
                continue;
            }
            let Some(mut msg) = entry.mailbox.pop_front() else {
                continue;
            };
            entry
                .counters
                .record_call(msg.from, msg.from_actor, msg.fname, msg.bytes);
            entry.servicing = true;
            let me = entry.id;
            let corr = msg.corr;
            let mut logic = entry.logic.take().expect("logic present outside dispatch");
            let mut ctx = ActorCtx {
                rt: self,
                me,
                corr,
                work: 0.0,
                sends: Vec::new(),
                replies: Vec::new(),
            };
            logic.on_message(&mut ctx, &mut msg);
            let ActorCtx {
                work,
                sends,
                replies,
                ..
            } = ctx;
            let tax = if self.cfg.epr_enabled {
                self.cfg.epr_tax_fixed + work * self.cfg.epr_tax_frac
            } else {
                0.0
            };
            let service = self
                .cluster
                .server(server)
                .instance()
                .service_time(work + tax);
            let entry = self.actors[actor.0 as usize]
                .as_mut()
                .expect("entry stable during dispatch");
            entry.logic = Some(logic);
            entry.counters.record_cpu(service);
            self.backend.execute(Execution {
                server: server.0,
                actor: actor.0,
                service_ns: service.as_micros() * 1_000,
            });
            self.cluster.server_mut(server).add_cpu_busy(service);
            self.free_lanes[sidx] -= 1;
            self.in_service
                .insert(actor, ServiceEffects { sends, replies });
            self.events.push(
                self.now + service,
                Event::ServiceDone {
                    server,
                    actor,
                    epoch: self.server_epoch[sidx],
                },
            );
        }
    }

    fn on_service_done(&mut self, server: ServerId, actor: ActorId, epoch: u64) {
        // The server crashed after this service was dispatched: the lane it
        // occupied no longer exists and its effects died with the server.
        if epoch != self.server_epoch[server.0 as usize] {
            return;
        }
        self.free_lanes[server.0 as usize] += 1;
        let effects = self.in_service.remove(&actor).unwrap_or_default();
        let entry = self.entry_mut(actor);
        entry.servicing = false;
        let from_type = entry.type_id;
        // Flush buffered sends from the (still-source) server.
        for send in effects.sends {
            self.do_send(actor, from_type, server, send);
        }
        let mut reply_bytes = 0u64;
        for (corr, bytes, payload) in effects.replies {
            reply_bytes += bytes;
            let bps = self.cluster.server(server).instance().net_bps;
            self.cluster.server_mut(server).add_net_bytes(bytes);
            let delay = self.cfg.network.client_delay(bytes, bps);
            self.events.push(
                self.now + delay,
                Event::DeliverReply {
                    client: corr.client,
                    request: corr.request,
                    sent_at: corr.sent_at,
                    payload,
                },
            );
        }
        let entry = self.entry_mut(actor);
        entry.counters.bytes_sent += reply_bytes;
        if entry.tombstone {
            self.reap_actor(actor);
        } else if let Some(MigrationState::Pending { dst }) = entry.migration {
            self.begin_transit(actor, dst);
        } else if entry.runnable() {
            entry.in_runq = true;
            self.runq[server.0 as usize].push_back(actor);
        }
        self.try_dispatch(server);
    }

    fn do_send(
        &mut self,
        from_actor: ActorId,
        from_type: ActorTypeId,
        from_server: ServerId,
        send: PendingSend,
    ) {
        let Some(dest_entry) = self.actors.get(send.to.0 as usize).and_then(|e| e.as_ref()) else {
            self.report.dropped_messages += 1;
            return;
        };
        let dest_server = dest_entry.server;
        let same = dest_server == from_server;
        let mut bps = self.cluster.server(from_server).instance().net_bps;
        let mut extra = SimDuration::ZERO;
        if !same {
            // Cross-server traffic is subject to injected network faults.
            // All of this is inert fault-free: no partitions, no
            // degradation, and crucially no RNG draw.
            if self.cluster.net_faults().severed(from_server, dest_server) {
                if let Some(chaos) = self.chaos.as_mut() {
                    chaos.stats.messages_lost_partition += 1;
                }
                self.report.dropped_messages += 1;
                return;
            }
            if self.cluster.net_faults().degradation().is_some() {
                let nf = self.cluster.net_faults();
                let drop_per_mille = nf.drop_per_mille() as u64;
                bps *= nf.bandwidth_factor();
                extra = nf.extra_latency();
                if drop_per_mille > 0 && self.rng.below(1000) < drop_per_mille {
                    if let Some(chaos) = self.chaos.as_mut() {
                        chaos.stats.messages_dropped_link += 1;
                    }
                    self.report.dropped_messages += 1;
                    return;
                }
            }
        }
        let delay = self.cfg.network.delivery_delay(same, send.bytes, bps) + extra;
        if !same {
            self.cluster
                .server_mut(from_server)
                .add_net_bytes(send.bytes);
        }
        self.entry_mut(from_actor).counters.bytes_sent += send.bytes;
        let trace = self.tracer.emit(self.now, Component::Runtime, None, || {
            TraceEventKind::MessageSend {
                from_actor: Some(from_actor.0),
                from_client: None,
                to: send.to.0,
                func: send.fname.0,
                bytes: send.bytes,
            }
        });
        let msg = Message {
            to: send.to,
            fname: send.fname,
            from: CallerKind::Actor(from_type),
            from_actor: Some(from_actor),
            bytes: send.bytes,
            corr: send.corr,
            payload: send.payload,
            dest_server_at_send: Some(dest_server),
            forwarded: false,
            was_remote: !same,
            trace,
        };
        self.events.push(self.now + delay, Event::DeliverActor(msg));
    }

    fn begin_transit(&mut self, actor: ActorId, dst: ServerId) {
        let (src, state_size) = {
            let e = self.entry(actor);
            (e.server, e.state_size)
        };
        // Remove from the source run queue eagerly so the flag discipline
        // (queued iff in_runq) holds.
        if self.entry(actor).in_runq {
            self.runq[src.0 as usize].retain(|&a| a != actor);
            self.entry_mut(actor).in_runq = false;
        }
        self.entry_mut(actor).migration = Some(MigrationState::InTransit { dst });
        self.cluster.server_mut(src).remove_mem(state_size);
        self.cluster.server_mut(src).add_net_bytes(state_size);
        let src_bps = self.cluster.server(src).instance().net_bps;
        let dst_bps = self.cluster.server(dst).instance().net_bps;
        let mut bps = src_bps.min(dst_bps);
        let mut extra = SimDuration::ZERO;
        if self.cluster.net_faults().degradation().is_some() {
            let nf = self.cluster.net_faults();
            bps *= nf.bandwidth_factor();
            extra = nf.extra_latency();
        }
        let delay = self.cfg.network.transfer_delay(state_size, bps) + extra;
        let entry = self.entry_mut(actor);
        entry.migration_seq += 1;
        let seq = entry.migration_seq;
        let parent = entry.migration_trace.take();
        let trace = self.tracer.emit(self.now, Component::Runtime, parent, || {
            TraceEventKind::MigrationStart {
                actor: actor.0,
                src: src.0,
                dst: dst.0,
                state_bytes: state_size,
            }
        });
        self.events.push(
            self.now + delay,
            Event::MigrationArrive {
                actor,
                dst,
                started: self.now,
                seq,
                trace,
            },
        );
    }

    fn on_migration_arrive(
        &mut self,
        actor: ActorId,
        dst: ServerId,
        started: SimTime,
        seq: u64,
        trace: Option<EventId>,
    ) {
        // The actor may have been removed — or the migration aborted by a
        // fault — while its state was in transit; a seq mismatch marks the
        // arrival as stale.
        let Some(entry) = self.actors.get(actor.0 as usize).and_then(|e| e.as_ref()) else {
            return;
        };
        if entry.migration_seq != seq {
            return;
        }
        let src = entry.server;
        let state_size = entry.state_size;
        // An open migration-abort window kills the transfer at the finish
        // line: the actor reverts to its source, then retries with backoff.
        let aborted = self
            .chaos
            .as_mut()
            .is_some_and(|c| c.should_abort_migration(self.now));
        if aborted {
            let mut chaos = self.chaos.take().expect("abort implies chaos");
            self.abort_in_transit(&mut chaos, actor, src, dst, "injected", trace);
            self.schedule_migration_retry(&mut chaos, actor, dst);
            self.chaos = Some(chaos);
            return;
        }
        self.inbound_migrations[dst.0 as usize] -= 1;
        if let Some(chaos) = self.chaos.as_mut() {
            chaos.retries.remove(&actor);
        }
        self.actors_by_server[src.0 as usize].remove(&actor);
        self.actors_by_server[dst.0 as usize].insert(actor);
        self.cluster.server_mut(dst).add_mem(state_size);
        self.cluster.server_mut(dst).add_net_bytes(state_size);
        let now = self.now;
        let entry = self.entry_mut(actor);
        entry.server = dst;
        entry.arrived_at = now;
        entry.migration = None;
        self.report.migrations.push(MigrationRecord {
            at: now,
            actor,
            src,
            dst,
            transfer_time: now.saturating_since(started),
        });
        self.tracer.emit(now, Component::Runtime, trace, || {
            TraceEventKind::MigrationComplete {
                actor: actor.0,
                src: src.0,
                dst: dst.0,
                transfer_us: now.saturating_since(started).as_micros(),
            }
        });
        let entry = self.entry_mut(actor);
        if entry.runnable() {
            entry.in_runq = true;
            self.runq[dst.0 as usize].push_back(actor);
            self.try_dispatch(dst);
        }
    }

    fn on_reply(
        &mut self,
        client: ClientId,
        request: u64,
        sent_at: SimTime,
        payload: Option<Payload>,
    ) {
        let latency_ms = self.now.saturating_since(sent_at).as_millis_f64();
        self.report.replies += 1;
        self.report.latency.record(latency_ms);
        self.report.latency_series.record(self.now, latency_ms);
        let bucket = self.cfg.latency_bucket;
        self.report
            .client_latency
            .entry(client)
            .or_insert_with(|| plasma_sim::metrics::BucketedSeries::new(bucket))
            .record(self.now, latency_ms);
        let latency = self.now.saturating_since(sent_at);
        self.with_client(client, |logic, ctx| {
            logic.on_reply(ctx, request, latency, payload)
        });
    }

    fn on_server_ready(&mut self, id: ServerId) {
        self.cluster.mark_running(id, self.now);
        self.free_lanes[id.0 as usize] = self.cluster.server(id).instance().vcpus;
        // A rebooted server recovers its own orphans in place when it comes
        // back before the failure detector reassigned them elsewhere.
        if let Some(mut chaos) = self.chaos.take() {
            if let Some((crashed_at, restart_trace)) = chaos.restarting.remove(&id) {
                if let Some(orphans) = chaos.orphans.remove(&id) {
                    for orphan in orphans {
                        self.respawn_orphan(&mut chaos, orphan, id, id, restart_trace);
                    }
                    chaos
                        .stats
                        .record_unavailability(self.now.saturating_since(crashed_at).as_secs_f64());
                }
            }
            self.chaos = Some(chaos);
        }
        let mut controller = self.controller.take();
        if let Some(c) = controller.as_mut() {
            c.on_server_ready(self, id);
        }
        if self.controller.is_none() {
            self.controller = controller;
        }
    }

    fn on_profile_window(&mut self) {
        self.roll_window(true);
    }

    /// Closes the current profiling window: builds the next
    /// [`ProfileSnapshot`], resets actor counters, and barriers the
    /// execution backend. The periodic chain passes `schedule_next`; a
    /// forced early roll (snapshot-skew fault injection) does not, so the
    /// periodic cadence is preserved and the extra roll just inserts one
    /// additional generation.
    fn roll_window(&mut self, schedule_next: bool) {
        let window = self.cfg.profile_window;
        let mut servers = Vec::new();
        for sid in self.cluster.running_ids() {
            let usage = self.cluster.server_mut(sid).roll_usage(self.now);
            let actor_count = self.actors_by_server[sid.0 as usize].len();
            servers.push(ServerWindowStats {
                server: sid,
                usage,
                actor_count,
            });
            self.report
                .server_cpu
                .entry(sid)
                .or_default()
                .push(self.now, usage.cpu());
            self.report
                .server_actors
                .entry(sid)
                .or_default()
                .push(self.now, actor_count as f64);
        }
        let mut actor_stats = Vec::new();
        if self.cfg.epr_enabled {
            for entry in self.actors.iter_mut().flatten() {
                let server = entry.server;
                let vcpus = self.cluster.server(server).instance().vcpus;
                // Busy time is charged to the dispatch window, so a service
                // spanning a window boundary can overshoot; clamp like the
                // server-side meter does.
                let cpu_share = if window.is_zero() || vcpus == 0 {
                    0.0
                } else {
                    (entry.counters.cpu_busy.as_secs_f64() / (window.as_secs_f64() * vcpus as f64))
                        .min(1.0)
                };
                actor_stats.push(ActorWindowStats {
                    actor: entry.id,
                    type_id: entry.type_id,
                    server,
                    state_size: entry.state_size,
                    pinned: entry.pinned,
                    cpu_share,
                    counters: entry.counters.clone(),
                    refs: entry.refs.clone(),
                });
                entry.counters.reset();
            }
        } else {
            for entry in self.actors.iter_mut().flatten() {
                entry.counters.reset();
            }
        }
        let next = Arc::new(ProfileSnapshot {
            generation: self.snapshot.generation + 1,
            at: self.now,
            window,
            actors: actor_stats,
            servers,
        });
        // Emit the generation delta alongside the snapshot itself, so
        // retained index structures (the EMR's EvalFrame) can patch in
        // place instead of rebuilding per round.
        if self.deltas.len() == self.delta_cap {
            self.deltas.pop_front();
        }
        self.deltas
            .push_back(SnapshotDelta::between(&self.snapshot, &next));
        self.snapshot = next;
        // Publish every running server's LEM report row to the carrier
        // before the barrier closes the window: worker-held rows become
        // byte-exact copies of what the EMR's `EvalFrame` computes from
        // this same snapshot generation, which is what lets QREPLY
        // candidates reproduce the shared-snapshot decision bit-for-bit.
        for sid in self.cluster.running_ids() {
            let report = self.server_report(sid);
            self.backend
                .publish_report(self.snapshot.generation, &report);
        }
        // Barrier the carrier on the freshly built generation; under live
        // this verifies exactly-once carriage of the window's events.
        self.backend.window_close(self.snapshot.generation);
        if schedule_next {
            self.events.push(self.now + window, Event::ProfileWindow);
        }
    }

    fn on_elasticity_tick(&mut self) {
        self.elasticity_rounds += 1;
        self.backend.round_barrier(self.elasticity_rounds);
        let mut controller = self.controller.take();
        if let Some(c) = controller.as_mut() {
            c.on_elasticity_tick(self);
        }
        if self.controller.is_none() {
            self.controller = controller;
        }
        self.events
            .push(self.now + self.cfg.elasticity_period, Event::ElasticityTick);
    }

    // ------------------------------------------------------------------
    // Chaos: fault injection and recovery.
    // ------------------------------------------------------------------

    fn on_fault_event(&mut self, idx: usize) {
        let Some(mut chaos) = self.chaos.take() else {
            return;
        };
        let kind = chaos.schedule[idx].kind.clone();
        chaos.stats.faults_injected += 1;
        let label = kind.label();
        let subject = kind.subject_server();
        let fault_trace = self.tracer.emit(self.now, Component::Chaos, None, || {
            TraceEventKind::FaultInjected {
                fault: label.to_string(),
                server: subject.map(|s| u64::from(s.0)),
            }
        });
        match kind {
            FaultKind::ServerCrash {
                server,
                restart_after,
            } => {
                self.apply_server_crash(&mut chaos, server, restart_after, fault_trace);
            }
            FaultKind::Partition { group, heal_after } => {
                let group_size = group.len() as u64;
                self.cluster.net_faults_mut().start_partition(group);
                self.tracer
                    .emit(self.now, Component::Chaos, fault_trace, || {
                        TraceEventKind::PartitionStarted { group_size }
                    });
                if let Some(d) = heal_after {
                    self.events.push(self.now + d, Event::PartitionHeal);
                }
            }
            FaultKind::HealPartitions => {
                let healed = self.cluster.net_faults_mut().heal_partitions();
                self.tracer
                    .emit(self.now, Component::Chaos, fault_trace, || {
                        TraceEventKind::PartitionHealed {
                            healed: healed as u64,
                        }
                    });
            }
            FaultKind::LinkDegrade {
                degradation,
                heal_after,
            } => {
                self.tracer
                    .emit(self.now, Component::Chaos, fault_trace, || {
                        TraceEventKind::LinkDegraded {
                            extra_latency_us: degradation.extra_latency.as_micros(),
                            bandwidth_pct: (degradation.bandwidth_factor * 100.0) as u32,
                            drop_per_mille: degradation.drop_per_mille,
                        }
                    });
                self.backend
                    .link_delay(degradation.extra_latency.as_micros() * 1_000);
                self.cluster.net_faults_mut().set_degradation(degradation);
                if let Some(d) = heal_after {
                    self.events.push(self.now + d, Event::LinkHeal);
                }
            }
            FaultKind::HealLinks => {
                let was_active = self.cluster.net_faults_mut().clear_degradation();
                self.backend.link_delay(0);
                self.tracer
                    .emit(self.now, Component::Chaos, fault_trace, || {
                        TraceEventKind::LinksHealed { was_active }
                    });
            }
            FaultKind::MigrationAbort { window, max } => {
                chaos.abort_until = self.now + window;
                chaos.abort_budget = max;
            }
            FaultKind::GemCrash { gem } => {
                // Only the controller knows its GEM topology; hand over.
                self.chaos = Some(chaos);
                let mut controller = self.controller.take();
                if let Some(c) = controller.as_mut() {
                    c.on_fault(self, ControlFault::GemCrash { gem });
                }
                if self.controller.is_none() {
                    self.controller = controller;
                }
                return;
            }
            FaultKind::LemCrash { server } => {
                // The monitor process restarts: the profiling window in
                // progress on this server is lost. A LEM on a server that
                // was never provisioned has nothing to lose.
                let ids: Vec<ActorId> = self
                    .actors_by_server
                    .get(server.0 as usize)
                    .map(|set| set.iter().copied().collect())
                    .unwrap_or_default();
                for aid in ids {
                    if let Some(e) = self.try_entry_mut(aid) {
                        e.counters.reset();
                    }
                }
                self.tracer
                    .emit(self.now, Component::Chaos, fault_trace, || {
                        TraceEventKind::LemCrashed { server: server.0 }
                    });
            }
            FaultKind::ProvisionerStall { duration } => {
                let until = self.now + duration;
                chaos.provisioner_stalled_until = until;
                self.tracer
                    .emit(self.now, Component::Chaos, fault_trace, || {
                        TraceEventKind::ProvisionerStalled {
                            until_us: until.as_micros(),
                        }
                    });
            }
            FaultKind::SnapshotSkew => {
                // Roll the profiling window early, off the periodic cadence:
                // any elasticity round currently between planning and apply
                // sees its snapshot generation change under it.
                chaos.stats.snapshot_skews += 1;
                self.roll_window(false);
            }
        }
        self.chaos = Some(chaos);
    }

    /// Crash-stops `server`: every resident actor loses its state and
    /// queued mail, in-flight migrations from or toward it abort, and the
    /// failure detector is left to notice.
    fn apply_server_crash(
        &mut self,
        chaos: &mut ChaosState,
        server: ServerId,
        restart_after: Option<SimDuration>,
        fault_trace: Option<EventId>,
    ) {
        if !self.cluster.crash(server, self.now) {
            return; // Not running: nothing to kill.
        }
        let sidx = server.0 as usize;
        self.server_epoch[sidx] += 1;
        self.free_lanes[sidx] = 0;
        self.runq[sidx].clear();
        chaos.stats.servers_crashed += 1;
        if chaos.stats.first_crash_at_s.is_none() {
            chaos.stats.first_crash_at_s = Some(self.now.as_secs_f64());
        }
        let residents: Vec<ActorId> = self.actors_by_server[sidx].iter().copied().collect();
        let actors_lost = residents.len() as u64;
        let messages_lost: u64 = residents
            .iter()
            .map(|&a| self.entry(a).mailbox.len() as u64)
            .sum();
        chaos.stats.actors_lost += actors_lost;
        chaos.stats.messages_lost_crash += messages_lost;
        let crash_trace = self
            .tracer
            .emit(self.now, Component::Runtime, fault_trace, || {
                TraceEventKind::ServerCrashed {
                    server: server.0,
                    actors_lost,
                    messages_lost,
                }
            });
        for aid in residents {
            let Some(entry) = self.actors[aid.0 as usize].take() else {
                continue;
            };
            self.actors_by_server[sidx].remove(&aid);
            self.in_service.remove(&aid);
            if let Some(MigrationState::Pending { dst } | MigrationState::InTransit { dst }) =
                entry.migration
            {
                self.inbound_migrations[dst.0 as usize] -= 1;
                chaos.stats.migrations_aborted += 1;
                self.tracer
                    .emit(self.now, Component::Runtime, crash_trace, || {
                        TraceEventKind::MigrationAborted {
                            actor: aid.0,
                            src: server.0,
                            dst: dst.0,
                            reason: "source-crashed".to_string(),
                        }
                    });
            }
            // In-transit state was already deducted from this server.
            if !matches!(entry.migration, Some(MigrationState::InTransit { .. })) {
                self.cluster.server_mut(server).remove_mem(entry.state_size);
            }
            chaos.stats.state_bytes_lost += entry.state_size;
            if entry.tombstone {
                continue; // Was being removed anyway; do not resurrect.
            }
            chaos.orphaned_ids.insert(aid);
            chaos.orphans.entry(server).or_default().push(OrphanActor {
                id: aid,
                type_id: entry.type_id,
                logic: entry.logic.expect("logic present outside dispatch"),
                state_size: entry.state_size,
                refs: entry.refs,
                pinned: entry.pinned,
                migration_seq: entry.migration_seq + 1,
            });
        }
        // Abort migrations headed toward the dead server.
        let inbound: Vec<ActorId> = self
            .actors
            .iter()
            .flatten()
            .filter(|e| {
                matches!(
                    e.migration,
                    Some(MigrationState::Pending { dst } | MigrationState::InTransit { dst })
                        if dst == server
                )
            })
            .map(|e| e.id)
            .collect();
        for aid in inbound {
            match self.entry(aid).migration {
                Some(MigrationState::Pending { .. }) => {
                    self.inbound_migrations[sidx] -= 1;
                    let e = self.entry_mut(aid);
                    e.migration = None;
                    let src = e.server;
                    chaos.stats.migrations_aborted += 1;
                    self.tracer
                        .emit(self.now, Component::Runtime, crash_trace, || {
                            TraceEventKind::MigrationAborted {
                                actor: aid.0,
                                src: src.0,
                                dst: server.0,
                                reason: "destination-down".to_string(),
                            }
                        });
                }
                Some(MigrationState::InTransit { .. }) => {
                    let src = self.entry(aid).server;
                    self.abort_in_transit(chaos, aid, src, server, "destination-down", crash_trace);
                }
                None => unreachable!("filtered on migration"),
            }
        }
        chaos.crashed.insert(
            server,
            CrashRecord {
                at: self.now,
                trace: crash_trace,
            },
        );
        if let Some(d) = restart_after {
            self.events.push(self.now + d, Event::ServerRestart(server));
        }
    }

    /// Reverts an in-transit migration: the actor stays on `src` with its
    /// state intact there, and the stale arrival event is invalidated.
    fn abort_in_transit(
        &mut self,
        chaos: &mut ChaosState,
        actor: ActorId,
        src: ServerId,
        dst: ServerId,
        reason: &'static str,
        parent: Option<EventId>,
    ) {
        self.inbound_migrations[dst.0 as usize] -= 1;
        let entry = self.entry_mut(actor);
        entry.migration = None;
        entry.migration_seq += 1;
        let state_size = entry.state_size;
        self.cluster.server_mut(src).add_mem(state_size);
        chaos.stats.migrations_aborted += 1;
        self.tracer.emit(self.now, Component::Runtime, parent, || {
            TraceEventKind::MigrationAborted {
                actor: actor.0,
                src: src.0,
                dst: dst.0,
                reason: reason.to_string(),
            }
        });
        let entry = self.entry_mut(actor);
        if entry.runnable() {
            entry.in_runq = true;
            self.runq[src.0 as usize].push_back(actor);
            self.try_dispatch(src);
        }
    }

    /// Arms one retry of an aborted migration, with exponential backoff,
    /// until the policy's attempt limit is exhausted.
    fn schedule_migration_retry(&mut self, chaos: &mut ChaosState, actor: ActorId, dst: ServerId) {
        let attempt = chaos.retries.entry(actor).or_insert(0);
        *attempt += 1;
        let attempt = *attempt;
        if attempt > chaos.policy.migration_retry_limit {
            return;
        }
        let delay = chaos.policy.backoff_for(attempt);
        self.events.push(
            self.now + delay,
            Event::MigrationRetry {
                actor,
                dst,
                attempt,
            },
        );
    }

    fn on_migration_retry(&mut self, actor: ActorId, dst: ServerId, attempt: u32) {
        let Some(chaos) = self.chaos.as_mut() else {
            return;
        };
        chaos.stats.migration_retries += 1;
        let retry_trace = self.tracer.emit(self.now, Component::Runtime, None, || {
            TraceEventKind::MigrationRetry {
                actor: actor.0,
                dst: dst.0,
                attempt,
            }
        });
        // A refusal (actor gone, destination down or unreachable, pinned
        // in the meantime) ends the retry chain; the controller re-plans.
        let _ = self.migrate_traced(actor, dst, retry_trace);
    }

    /// The heartbeat failure detector: declares silent-for-too-long
    /// servers dead and respawns their orphans on the survivors.
    fn on_heartbeat_check(&mut self) {
        let Some(mut chaos) = self.chaos.take() else {
            return;
        };
        let timeout = chaos.policy.heartbeat_timeout;
        let due: Vec<ServerId> = chaos
            .crashed
            .iter()
            .filter(|(_, rec)| self.now.saturating_since(rec.at) >= timeout)
            .map(|(&s, _)| s)
            .collect();
        for server in due {
            let running = self.cluster.running_ids();
            if running.is_empty() && chaos.policy.respawn {
                break; // Nowhere to respawn; retry next sweep.
            }
            let rec = chaos.crashed.remove(&server).expect("collected above");
            let latency = self.now.saturating_since(rec.at);
            chaos.stats.record_detection(latency.as_secs_f64());
            let dead_trace = self.tracer.emit(self.now, Component::Gem, rec.trace, || {
                TraceEventKind::ServerDeclaredDead {
                    server: server.0,
                    detect_latency_us: latency.as_micros(),
                }
            });
            if chaos.policy.respawn {
                if let Some(orphans) = chaos.orphans.remove(&server) {
                    for (k, orphan) in orphans.into_iter().enumerate() {
                        let dst = running[k % running.len()];
                        self.respawn_orphan(&mut chaos, orphan, server, dst, dead_trace);
                    }
                    chaos.stats.record_unavailability(latency.as_secs_f64());
                }
            }
        }
        self.events.push(
            self.now + chaos.policy.heartbeat_period,
            Event::HeartbeatCheck,
        );
        self.chaos = Some(chaos);
    }

    fn on_server_restart(&mut self, id: ServerId) {
        let Some(mut chaos) = self.chaos.take() else {
            return;
        };
        if let Some(ready_at) = self.cluster.restart(id, self.now) {
            chaos.stats.servers_restarted += 1;
            let rec = chaos.crashed.remove(&id);
            let crashed_at = rec.as_ref().map(|r| r.at);
            let parent = rec.and_then(|r| r.trace);
            let restart_trace = self.tracer.emit(self.now, Component::Chaos, parent, || {
                TraceEventKind::ServerRestarted {
                    server: id.0,
                    ready_at_us: ready_at.as_micros(),
                }
            });
            // If the failure detector already reassigned the orphans, the
            // server just comes back empty; otherwise it recovers them in
            // place once it is ready.
            if chaos.orphans.contains_key(&id) {
                chaos
                    .restarting
                    .insert(id, (crashed_at.unwrap_or(self.now), restart_trace));
            }
            self.events.push(ready_at, Event::ServerReady(id));
        }
        self.chaos = Some(chaos);
    }

    /// Re-inserts an orphaned actor on `dst` with fresh (lost) state; the
    /// directory preserved its identity, references and pin.
    fn respawn_orphan(
        &mut self,
        chaos: &mut ChaosState,
        orphan: OrphanActor,
        src: ServerId,
        dst: ServerId,
        parent: Option<EventId>,
    ) {
        let id = orphan.id;
        let state_size = orphan.state_size;
        let mut entry =
            ActorEntry::new(id, orphan.type_id, dst, orphan.logic, state_size, self.now);
        entry.refs = orphan.refs;
        entry.pinned = orphan.pinned;
        entry.migration_seq = orphan.migration_seq;
        self.actors[id.0 as usize] = Some(entry);
        self.actors_by_server[dst.0 as usize].insert(id);
        self.cluster.server_mut(dst).add_mem(state_size);
        chaos.orphaned_ids.remove(&id);
        chaos.stats.actors_recovered += 1;
        self.tracer.emit(self.now, Component::Runtime, parent, || {
            TraceEventKind::ActorRecovered {
                actor: id.0,
                src: src.0,
                dst: dst.0,
                state_bytes_lost: state_size,
            }
        });
    }

    fn with_client(
        &mut self,
        id: ClientId,
        f: impl FnOnce(&mut Box<dyn ClientLogic>, &mut ClientCtx<'_>),
    ) {
        let Some(mut logic) = self
            .clients
            .get_mut(id.0 as usize)
            .and_then(|c| c.logic.take())
        else {
            return;
        };
        let mut ctx = ClientCtx { rt: self, me: id };
        f(&mut logic, &mut ctx);
        self.clients[id.0 as usize].logic = Some(logic);
    }

    /// Drains the cluster's lifecycle journal into the execution backend,
    /// opening and closing per-server carriers as servers come and go.
    fn sync_backend_lifecycle(&mut self) {
        if !self.cluster.has_lifecycle_events() {
            return;
        }
        for ev in self.cluster.drain_lifecycle() {
            if ev.up {
                self.backend.server_up(ev.server.0, ev.vcpus);
                // A server booted mid-window has no usage row in the
                // current snapshot; publish the zero-usage row EvalFrame
                // computes for it so a query between boot and the next
                // window roll sees the same candidates either way.
                let report = self.server_report(ev.server);
                self.backend
                    .publish_report(self.snapshot.generation, &report);
            } else {
                self.backend.server_down(ev.server.0);
            }
        }
    }

    /// Builds the LEM report row for `sid` against the current snapshot —
    /// the byte-exact mirror of the EMR's `ServerMeta` derivation (usage
    /// from the snapshot row, zeros for servers booted after it; capacity
    /// from the instance type). f64 fields travel as raw bit patterns so
    /// the wire cannot perturb them.
    fn server_report(&self, sid: ServerId) -> ServerReport {
        let (cpu, mem, net, actor_count) = match self.snapshot.server(sid) {
            Some(s) => (s.usage.cpu(), s.usage.mem(), s.usage.net(), s.actor_count),
            None => (0.0, 0.0, 0.0, 0),
        };
        let inst = self.cluster.server(sid).instance();
        ServerReport {
            server: sid.0,
            vcpus: inst.vcpus,
            actor_count: actor_count as u64,
            mem_bytes: inst.mem_bytes,
            total_speed_bits: inst.total_speed().to_bits(),
            net_bps_bits: inst.net_bps.to_bits(),
            cpu_bits: cpu.to_bits(),
            mem_bits: mem.to_bits(),
            net_bits: net.to_bits(),
        }
    }

    /// Sends a GEM policy query over the control carriage and returns the
    /// per-carrier replies. Lifecycle events are synced first so the
    /// carrier and the logical cluster agree on which servers are up.
    pub fn control_query(&mut self, query: ControlQuery) -> Vec<ControlReply> {
        self.sync_backend_lifecycle();
        self.backend.control(&ControlMsg::Query(query))
    }

    /// Broadcasts a GEM decision over the control carriage (audit/metrics
    /// traffic: workers count it, nothing feeds back).
    pub fn control_decision(&mut self, decision: ControlDecision) {
        self.backend.control(&ControlMsg::Decision(decision));
    }

    fn ensure_server_slots(&mut self, id: ServerId) {
        let idx = id.0 as usize;
        if idx >= self.actors_by_server.len() {
            self.actors_by_server.resize_with(idx + 1, BTreeSet::new);
            self.runq.resize_with(idx + 1, VecDeque::new);
            self.free_lanes.resize(idx + 1, 0);
            self.server_epoch.resize(idx + 1, 0);
            self.inbound_migrations.resize(idx + 1, 0);
        }
        self.free_lanes[idx] = self.cluster.server(id).instance().vcpus;
    }

    fn finalize_report(&mut self) {
        self.report.orphan_replies = self.orphan_replies;
        // Chaos scalars exist only when a fault plan is installed, so
        // fault-free reports stay byte-identical.
        if let Some(s) = self.chaos.as_ref().map(|c| c.stats) {
            let scalars = &mut self.report.scalars;
            let mut put = |k: &str, v: f64| {
                scalars.insert(format!("chaos.{k}"), v);
            };
            put("faults_injected", s.faults_injected as f64);
            put("servers_crashed", s.servers_crashed as f64);
            put("servers_restarted", s.servers_restarted as f64);
            put("actors_lost", s.actors_lost as f64);
            put("actors_recovered", s.actors_recovered as f64);
            put("state_bytes_lost", s.state_bytes_lost as f64);
            put("messages_lost_crash", s.messages_lost_crash as f64);
            put("messages_lost_partition", s.messages_lost_partition as f64);
            put("messages_dropped_link", s.messages_dropped_link as f64);
            put("migrations_aborted", s.migrations_aborted as f64);
            put("migration_retries", s.migration_retries as f64);
            put("snapshot_skews", s.snapshot_skews as f64);
            put("detections", s.detections as f64);
            put("detect_latency_mean_s", s.detect_latency_mean_s());
            put("detect_latency_max_s", s.detect_latency_max_s);
            put("unavailability_sum_s", s.unavailability_sum_s);
            put("unavailability_max_s", s.unavailability_max_s);
            if let Some(t) = s.first_crash_at_s {
                put("first_crash_at_s", t);
            }
        }
        // Backend scalars exist only for live/net runs, so sim reports
        // stay byte-identical to builds predating the backend layer. All
        // wall-clock values here are measurement side-channels (excluded
        // from decision digests and benchmark baselines).
        if self.backend.kind() != BackendKind::Sim {
            let s = self.backend.stats();
            let scalars = &mut self.report.scalars;
            let mut put = |k: &str, v: f64| {
                scalars.insert(format!("backend.{k}"), v);
            };
            put("deliveries", s.deliveries as f64);
            put("executions", s.executions as f64);
            put("windows_closed", s.windows_closed as f64);
            put("window_mismatches", s.window_mismatches as f64);
            put("rounds", s.rounds as f64);
            put("workers_spawned", s.workers_spawned as f64);
            put("wall_ms", s.wall_ns as f64 / 1e6);
            put("worker_busy_ms", s.worker_busy_ns as f64 / 1e6);
            put("channel_latency_us_mean", s.channel_latency_us_mean());
            put("channel_latency_us_max", s.channel_ns_max as f64 / 1e3);
            put("control_reports", s.control_reports as f64);
            put("control_queries", s.control_queries as f64);
            put("control_replies", s.control_replies as f64);
            put("control_decisions", s.control_decisions as f64);
            put("control_wire_bytes", s.control_wire_bytes as f64);
            if self.backend.kind() == BackendKind::Net {
                put("frames_sent", s.frames_sent as f64);
                put("frames_received", s.frames_received as f64);
                put("wire_bytes_sent", s.wire_bytes_sent as f64);
                put("wire_bytes_received", s.wire_bytes_received as f64);
                put("max_inflight_frames", s.max_inflight_frames as f64);
            }
        }
    }

    /// Returns the run report.
    pub fn report(&self) -> &RunReport {
        &self.report
    }

    /// Which execution backend carries this run.
    pub fn backend_kind(&self) -> BackendKind {
        self.backend.kind()
    }

    /// Nanoseconds on the backend's monotonic clock: identically 0 under
    /// sim (virtual time lives in the event queue), real wall clock under
    /// live. Measurement only — never feed this back into scheduling.
    pub fn monotonic_ns(&self) -> u64 {
        self.backend.monotonic_ns()
    }

    /// Snapshot of the backend's cumulative carriage counters.
    pub fn backend_stats(&self) -> BackendStats {
        self.backend.stats()
    }

    /// Consumes the runtime, returning the report plus the cluster for cost
    /// queries.
    pub fn into_report(self) -> (RunReport, Cluster) {
        (self.report, self.cluster)
    }

    fn entry(&self, actor: ActorId) -> &ActorEntry {
        self.actors[actor.0 as usize]
            .as_ref()
            .expect("actor exists")
    }

    fn try_entry(&self, actor: ActorId) -> Option<&ActorEntry> {
        self.actors.get(actor.0 as usize).and_then(|e| e.as_ref())
    }

    fn try_entry_mut(&mut self, actor: ActorId) -> Option<&mut ActorEntry> {
        self.actors
            .get_mut(actor.0 as usize)
            .and_then(|e| e.as_mut())
    }

    fn entry_mut(&mut self, actor: ActorId) -> &mut ActorEntry {
        self.actors[actor.0 as usize]
            .as_mut()
            .expect("actor exists")
    }
}
