//! Identifiers and name-interning registries.
//!
//! Actor type names and function names appear both in application code and
//! in EPL rules; interning them to dense ids makes profiling counters cheap
//! (`(CallerKind, FnId)` map keys) and rule binding exact.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of an actor instance.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ActorId(pub u64);

/// Identifier of an actor *type* (`aname` in the paper's grammar).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ActorTypeId(pub u32);

/// Identifier of an interned function name (`fname`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FnId(pub u32);

/// Identifier of an external client.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClientId(pub u32);

impl fmt::Debug for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl fmt::Debug for ActorTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Debug for FnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl fmt::Debug for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Bidirectional interner from strings to dense `u32`-backed ids.
#[derive(Debug, Default, Clone)]
struct Interner {
    by_name: BTreeMap<String, u32>,
    names: Vec<String>,
}

impl Interner {
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        id
    }

    fn get(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    fn name(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    fn len(&self) -> usize {
        self.names.len()
    }
}

/// Registry of actor type names and function names for one application.
///
/// # Examples
///
/// ```
/// use plasma_actor::ids::NameRegistry;
///
/// let mut reg = NameRegistry::new();
/// let folder = reg.actor_type("Folder");
/// assert_eq!(reg.actor_type("Folder"), folder);
/// assert_eq!(reg.type_name(folder), "Folder");
/// assert_eq!(reg.lookup_type("File"), None);
/// ```
#[derive(Debug, Default, Clone)]
pub struct NameRegistry {
    types: Interner,
    fns: Interner,
}

impl NameRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        NameRegistry::default()
    }

    /// Interns an actor type name.
    pub fn actor_type(&mut self, name: &str) -> ActorTypeId {
        ActorTypeId(self.types.intern(name))
    }

    /// Looks up an actor type without interning.
    pub fn lookup_type(&self, name: &str) -> Option<ActorTypeId> {
        self.types.get(name).map(ActorTypeId)
    }

    /// Returns the name of a type id.
    pub fn type_name(&self, id: ActorTypeId) -> &str {
        self.types.name(id.0)
    }

    /// Returns the number of registered types.
    pub fn type_count(&self) -> usize {
        self.types.len()
    }

    /// Returns every registered type id, in registration order.
    pub fn all_types(&self) -> impl Iterator<Item = ActorTypeId> {
        (0..self.types.len() as u32).map(ActorTypeId)
    }

    /// Interns a function name.
    pub fn function(&mut self, name: &str) -> FnId {
        FnId(self.fns.intern(name))
    }

    /// Looks up a function name without interning.
    pub fn lookup_function(&self, name: &str) -> Option<FnId> {
        self.fns.get(name).map(FnId)
    }

    /// Returns the name of a function id.
    pub fn function_name(&self, id: FnId) -> &str {
        self.fns.name(id.0)
    }

    /// Returns every registered function id, in registration order.
    pub fn all_functions(&self) -> impl Iterator<Item = FnId> {
        (0..self.fns.len() as u32).map(FnId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut reg = NameRegistry::new();
        let a = reg.actor_type("Worker");
        let b = reg.actor_type("Table");
        let a2 = reg.actor_type("Worker");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(reg.type_name(a), "Worker");
        assert_eq!(reg.type_name(b), "Table");
        assert_eq!(reg.type_count(), 2);
    }

    #[test]
    fn lookup_does_not_intern() {
        let reg = NameRegistry::new();
        assert_eq!(reg.lookup_type("Ghost"), None);
        assert_eq!(reg.lookup_function("ghost"), None);
    }

    #[test]
    fn functions_and_types_are_separate_namespaces() {
        let mut reg = NameRegistry::new();
        let t = reg.actor_type("open");
        let f = reg.function("open");
        assert_eq!(reg.type_name(t), "open");
        assert_eq!(reg.function_name(f), "open");
    }

    #[test]
    fn all_types_enumerates_in_order() {
        let mut reg = NameRegistry::new();
        let a = reg.actor_type("A");
        let b = reg.actor_type("B");
        let ids: Vec<ActorTypeId> = reg.all_types().collect();
        assert_eq!(ids, vec![a, b]);
    }
}
