//! A *live* (multi-threaded) mini cluster runtime.
//!
//! The discrete-event [`runtime`](crate::runtime) is where the paper's
//! experiments run, because it is deterministic and models physical costs.
//! This module is its real-concurrency counterpart: each server is an OS
//! thread with a crossbeam channel as its message queue, actor placement
//! lives in a shared [`parking_lot`] directory, payloads are [`bytes::Bytes`],
//! and **live actor migration** works exactly like the simulated protocol —
//! ownership moves between threads while in-flight messages are forwarded
//! through the directory, so no request is ever lost.
//!
//! It exists to demonstrate that the runtime architecture (directory,
//! mailbox ownership, forwarding, migration hand-off) is implementable over
//! real threads with the same API shape, and it backs the stress tests in
//! `tests/live_cluster.rs`.
//!
//! # Examples
//!
//! ```
//! use bytes::Bytes;
//! use plasma_actor::live::{LiveActor, LiveCluster, LiveCtx};
//!
//! struct Echo;
//! impl LiveActor for Echo {
//!     fn on_message(&mut self, _ctx: &mut LiveCtx<'_>, _fname: &str, payload: &Bytes)
//!         -> Option<Bytes>
//!     {
//!         Some(payload.clone())
//!     }
//! }
//!
//! let cluster = LiveCluster::start(2);
//! let echo = cluster.spawn(0, Box::new(Echo));
//! let reply = cluster.request(echo, "ping", Bytes::from_static(b"hi")).unwrap();
//! assert_eq!(&reply[..], b"hi");
//! cluster.shutdown();
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::RwLock;

use crate::ids::ActorId;

/// Behavior of an actor in the live cluster.
///
/// Returning `Some(bytes)` replies to the requester (when the message was a
/// [`LiveCluster::request`]).
pub trait LiveActor: Send {
    /// Handles one message.
    fn on_message(&mut self, ctx: &mut LiveCtx<'_>, fname: &str, payload: &Bytes) -> Option<Bytes>;
}

/// Context handed to [`LiveActor::on_message`].
pub struct LiveCtx<'a> {
    me: ActorId,
    server: usize,
    router: &'a Router,
}

impl LiveCtx<'_> {
    /// Returns the handling actor's id.
    pub fn me(&self) -> ActorId {
        self.me
    }

    /// Returns the index of the server thread running this handler.
    pub fn server(&self) -> usize {
        self.server
    }

    /// Sends a fire-and-forget message to another actor.
    pub fn send(&self, to: ActorId, fname: &str, payload: Bytes) {
        self.router.route(Envelope {
            to,
            fname: fname.to_string(),
            payload,
            reply: None,
            hops: 0,
        });
    }
}

/// A message traveling between server threads.
struct Envelope {
    to: ActorId,
    fname: String,
    payload: Bytes,
    reply: Option<Sender<Bytes>>,
    hops: u32,
}

/// Control and data messages a server thread processes.
enum ServerMsg {
    Deliver(Envelope),
    /// Install an actor cell (spawn or migration arrival).
    Install(ActorId, Box<dyn LiveActor>),
    /// Hand the actor off to another server.
    Migrate(ActorId, usize),
    /// Report and reset the per-actor message counts of this window.
    Sample(Sender<HashMap<ActorId, u64>>),
    Shutdown,
}

/// Shared routing state: the actor directory plus every server's inbox.
struct Router {
    directory: RwLock<HashMap<ActorId, usize>>,
    inboxes: Vec<Sender<ServerMsg>>,
    dropped: AtomicU64,
    forwarded: AtomicU64,
}

impl Router {
    /// Routes an envelope to its target's current server; envelopes whose
    /// target is unknown (or that bounced too often) are dropped.
    fn route(&self, mut env: Envelope) {
        if env.hops > 16 {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if env.hops > 0 {
            self.forwarded.fetch_add(1, Ordering::Relaxed);
        }
        env.hops += 1;
        let server = { self.directory.read().get(&env.to).copied() };
        match server {
            Some(s) => {
                if self.inboxes[s].send(ServerMsg::Deliver(env)).is_err() {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
            None => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Per-server statistics returned by [`LiveCluster::shutdown`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerStats {
    /// Messages dispatched to local actors.
    pub processed: u64,
    /// Actors received via migration.
    pub migrations_in: u64,
}

/// Cluster-wide statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct LiveStats {
    /// Per-server counters.
    pub processed: u64,
    /// Total messages that paid at least one forwarding hop.
    pub forwarded: u64,
    /// Messages dropped (unknown actor or shutdown race).
    pub dropped: u64,
    /// Total migrations completed.
    pub migrations: u64,
}

/// A running multi-threaded cluster.
pub struct LiveCluster {
    router: Arc<Router>,
    handles: Vec<JoinHandle<ServerStats>>,
    next_actor: AtomicU64,
}

impl LiveCluster {
    /// Starts `servers` server threads.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`.
    pub fn start(servers: usize) -> Self {
        assert!(servers > 0, "need at least one server");
        let mut inboxes = Vec::with_capacity(servers);
        let mut receivers: Vec<Receiver<ServerMsg>> = Vec::with_capacity(servers);
        for _ in 0..servers {
            let (tx, rx) = unbounded();
            inboxes.push(tx);
            receivers.push(rx);
        }
        let router = Arc::new(Router {
            directory: RwLock::new(HashMap::new()),
            inboxes,
            dropped: AtomicU64::new(0),
            forwarded: AtomicU64::new(0),
        });
        let handles = receivers
            .into_iter()
            .enumerate()
            .map(|(index, rx)| {
                let router = Arc::clone(&router);
                std::thread::Builder::new()
                    .name(format!("plasma-live-{index}"))
                    .spawn(move || server_loop(index, rx, &router))
                    .expect("spawn server thread")
            })
            .collect();
        LiveCluster {
            router,
            handles,
            next_actor: AtomicU64::new(0),
        }
    }

    /// Returns the number of server threads.
    pub fn servers(&self) -> usize {
        self.router.inboxes.len()
    }

    /// Spawns an actor on server `server` and returns its id.
    pub fn spawn(&self, server: usize, logic: Box<dyn LiveActor>) -> ActorId {
        let id = ActorId(self.next_actor.fetch_add(1, Ordering::Relaxed));
        self.router.directory.write().insert(id, server);
        self.router.inboxes[server]
            .send(ServerMsg::Install(id, logic))
            .expect("server alive");
        id
    }

    /// Returns the server currently owning `actor` (per the directory).
    pub fn actor_server(&self, actor: ActorId) -> Option<usize> {
        self.router.directory.read().get(&actor).copied()
    }

    /// Requests a live migration of `actor` to server `dst`.
    ///
    /// The hand-off is asynchronous; messages racing the move are forwarded
    /// through the directory.
    pub fn migrate(&self, actor: ActorId, dst: usize) {
        let src = match self.actor_server(actor) {
            Some(s) => s,
            None => return,
        };
        if src == dst {
            return;
        }
        let _ = self.router.inboxes[src].send(ServerMsg::Migrate(actor, dst));
    }

    /// Sends a fire-and-forget message.
    pub fn send(&self, to: ActorId, fname: &str, payload: Bytes) {
        self.router.route(Envelope {
            to,
            fname: fname.to_string(),
            payload,
            reply: None,
            hops: 0,
        });
    }

    /// Sends a request and waits up to 5 seconds for the reply.
    ///
    /// Returns `None` on timeout, if the actor does not reply, or if it
    /// does not exist.
    pub fn request(&self, to: ActorId, fname: &str, payload: Bytes) -> Option<Bytes> {
        let (tx, rx) = bounded(1);
        self.router.route(Envelope {
            to,
            fname: fname.to_string(),
            payload,
            reply: Some(tx),
            hops: 0,
        });
        rx.recv_timeout(Duration::from_secs(5)).ok()
    }

    /// Samples (and resets) per-actor processed-message counts on every
    /// server: the live analogue of the EPR's profiling window.
    pub fn sample_counts(&self) -> Vec<HashMap<ActorId, u64>> {
        let mut receivers = Vec::with_capacity(self.router.inboxes.len());
        for tx in &self.router.inboxes {
            let (stx, srx) = bounded(1);
            if tx.send(ServerMsg::Sample(stx)).is_ok() {
                receivers.push(Some(srx));
            } else {
                receivers.push(None);
            }
        }
        receivers
            .into_iter()
            .map(|rx| {
                rx.and_then(|rx| rx.recv_timeout(Duration::from_secs(5)).ok())
                    .unwrap_or_default()
            })
            .collect()
    }

    /// One round of throughput-driven rebalancing: samples the profiling
    /// counters and migrates the busiest actor of the busiest server to
    /// the least-busy server - a live-threaded miniature of the EMR's
    /// `balance` behavior. Returns whether a migration was requested.
    pub fn rebalance_by_throughput(&self) -> bool {
        let samples = self.sample_counts();
        let loads: Vec<u64> = samples.iter().map(|m| m.values().sum()).collect();
        let (busiest, &max) = match loads.iter().enumerate().max_by_key(|&(_, &l)| l) {
            Some(x) => x,
            None => return false,
        };
        let (idlest, &min) = match loads.iter().enumerate().min_by_key(|&(_, &l)| l) {
            Some(x) => x,
            None => return false,
        };
        if busiest == idlest || max == 0 || max - min <= max / 4 {
            return false;
        }
        // Move the heaviest actor that keeps the ordering (at most half
        // the gap), mirroring the simulated planner's no-oscillation rule.
        let gap = max - min;
        let candidate = samples[busiest]
            .iter()
            .filter(|&(_, &count)| count <= gap / 2)
            .max_by_key(|&(_, &count)| count)
            .map(|(&id, _)| id);
        match candidate {
            Some(actor) => {
                self.migrate(actor, idlest);
                true
            }
            None => false,
        }
    }

    /// Stops every server thread and returns aggregate statistics.
    pub fn shutdown(self) -> LiveStats {
        for tx in &self.router.inboxes {
            let _ = tx.send(ServerMsg::Shutdown);
        }
        let mut stats = LiveStats {
            forwarded: self.router.forwarded.load(Ordering::Relaxed),
            dropped: self.router.dropped.load(Ordering::Relaxed),
            ..LiveStats::default()
        };
        for handle in self.handles {
            if let Ok(s) = handle.join() {
                stats.processed += s.processed;
                stats.migrations += s.migrations_in;
            }
        }
        stats
    }
}

/// The body of one server thread.
fn server_loop(index: usize, rx: Receiver<ServerMsg>, router: &Router) -> ServerStats {
    let mut cells: HashMap<ActorId, Box<dyn LiveActor>> = HashMap::new();
    // Messages for actors announced (directory points here) but whose cell
    // has not arrived yet - drained on Install.
    let mut pending: HashMap<ActorId, Vec<Envelope>> = HashMap::new();
    let mut stats = ServerStats::default();
    // Per-actor message counts for the current profiling window.
    let mut window: HashMap<ActorId, u64> = HashMap::new();

    let dispatch = |cell: &mut Box<dyn LiveActor>,
                    env: Envelope,
                    stats: &mut ServerStats,
                    window: &mut HashMap<ActorId, u64>| {
        let mut ctx = LiveCtx {
            me: env.to,
            server: index,
            router,
        };
        *window.entry(env.to).or_insert(0) += 1;
        let reply = cell.on_message(&mut ctx, &env.fname, &env.payload);
        stats.processed += 1;
        if let (Some(tx), Some(bytes)) = (env.reply, reply) {
            let _ = tx.send(bytes);
        }
    };

    while let Ok(msg) = rx.recv() {
        match msg {
            ServerMsg::Deliver(env) => {
                if let Some(cell) = cells.get_mut(&env.to) {
                    dispatch(cell, env, &mut stats, &mut window);
                } else if router.directory.read().get(&env.to) == Some(&index) {
                    // The cell is still in transit to this server: stash.
                    pending.entry(env.to).or_default().push(env);
                } else {
                    // The actor moved (or died): forward via the directory.
                    router.route(env);
                }
            }
            ServerMsg::Install(id, logic) => {
                stats.migrations_in += 1;
                cells.insert(id, logic);
                if let Some(backlog) = pending.remove(&id) {
                    let cell = cells.get_mut(&id).expect("just inserted");
                    for env in backlog {
                        dispatch(cell, env, &mut stats, &mut window);
                    }
                }
            }
            ServerMsg::Sample(reply) => {
                let _ = reply.send(std::mem::take(&mut window));
            }
            ServerMsg::Migrate(id, dst) => {
                if let Some(cell) = cells.remove(&id) {
                    // Flip the directory first so new senders target `dst`;
                    // anything already queued here gets forwarded by the
                    // Deliver arm above.
                    router.directory.write().insert(id, dst);
                    let _ = router.inboxes[dst].send(ServerMsg::Install(id, cell));
                }
            }
            ServerMsg::Shutdown => break,
        }
    }
    stats
}
