//! Messages, caller classification, and client correlation.

use std::any::Any;
use std::fmt;

use plasma_cluster::ServerId;

use crate::ids::{ActorId, ActorTypeId, ClientId, FnId};

/// Who sent a message: an external client or an actor of some type.
///
/// This is the `cllr` production in the paper's grammar; interaction
/// features are keyed by `(CallerKind, FnId)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum CallerKind {
    /// An external client.
    Client,
    /// An actor of the given type.
    Actor(ActorTypeId),
}

/// Links a message chain back to the client request that started it, so the
/// runtime can measure end-to-end latency no matter how many actors the
/// request traverses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Correlation {
    /// The client that issued the original request.
    pub client: ClientId,
    /// The client's request sequence number.
    pub request: u64,
    /// When the client sent the request.
    pub sent_at: plasma_sim::SimTime,
}

/// An application payload: any sendable value, downcast by the receiver.
pub type Payload = Box<dyn Any + Send>;

/// A message in flight or queued in a mailbox.
pub struct Message {
    /// Destination actor.
    pub to: ActorId,
    /// The invoked function.
    pub fname: FnId,
    /// Sender classification for profiling.
    pub from: CallerKind,
    /// Sending actor instance, when the sender is an actor.
    pub from_actor: Option<ActorId>,
    /// Payload size in bytes (drives network cost and `size` statistics).
    pub bytes: u64,
    /// Client correlation, carried along forwarded chains.
    pub corr: Option<Correlation>,
    /// Application data.
    pub payload: Option<Payload>,
    /// Destination server observed at send time; a mismatch at delivery
    /// means the actor migrated mid-flight and the message pays one
    /// forwarding hop.
    pub(crate) dest_server_at_send: Option<ServerId>,
    /// Whether this message already paid its forwarding hop.
    pub(crate) forwarded: bool,
    /// Whether the message crossed servers (for NIC accounting on delivery).
    pub(crate) was_remote: bool,
    /// Trace id of the `MessageSend` event, linked to by the delivery event.
    pub(crate) trace: Option<plasma_trace::EventId>,
}

impl Message {
    /// Downcasts the payload to a concrete type.
    ///
    /// Returns `None` if there is no payload or the type does not match.
    pub fn payload_ref<T: 'static>(&self) -> Option<&T> {
        self.payload.as_ref()?.downcast_ref::<T>()
    }

    /// Takes the payload out, downcast to a concrete type.
    ///
    /// Returns `None` (leaving the payload in place) on type mismatch.
    pub fn take_payload<T: 'static>(&mut self) -> Option<Box<T>> {
        if self.payload.as_ref()?.is::<T>() {
            self.payload.take()?.downcast::<T>().ok()
        } else {
            None
        }
    }
}

impl fmt::Debug for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Message")
            .field("to", &self.to)
            .field("fname", &self.fname)
            .field("from", &self.from)
            .field("bytes", &self.bytes)
            .field("corr", &self.corr)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(payload: Option<Payload>) -> Message {
        Message {
            to: ActorId(1),
            fname: FnId(0),
            from: CallerKind::Client,
            from_actor: None,
            bytes: 128,
            corr: None,
            payload,
            dest_server_at_send: None,
            forwarded: false,
            was_remote: false,
            trace: None,
        }
    }

    #[test]
    fn payload_downcast() {
        let m = msg(Some(Box::new(42u32)));
        assert_eq!(m.payload_ref::<u32>(), Some(&42));
        assert_eq!(m.payload_ref::<String>(), None);
    }

    #[test]
    fn take_payload_moves_on_match_only() {
        let mut m = msg(Some(Box::new("hello".to_string())));
        assert!(m.take_payload::<u32>().is_none());
        assert!(m.payload.is_some(), "mismatch must not consume");
        let s = m.take_payload::<String>().unwrap();
        assert_eq!(*s, "hello");
        assert!(m.payload.is_none());
    }

    #[test]
    fn caller_kind_ordering_is_stable() {
        let mut kinds = vec![
            CallerKind::Actor(ActorTypeId(1)),
            CallerKind::Client,
            CallerKind::Actor(ActorTypeId(0)),
        ];
        kinds.sort();
        assert_eq!(
            kinds,
            vec![
                CallerKind::Client,
                CallerKind::Actor(ActorTypeId(0)),
                CallerKind::Actor(ActorTypeId(1)),
            ]
        );
    }
}
