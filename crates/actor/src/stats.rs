//! Profiling counters — what the EPR collects each window.
//!
//! The paper's EPR "tracks information on all messages (e.g., type, size,
//! number) and the times for actors to process them" (§5.2). The runtime
//! accumulates these raw counters per actor; every profiling window they are
//! snapshotted into [`ActorWindowStats`]/[`ServerWindowStats`] and reset.
//! The EMR evaluates EPL conditions against those snapshots.

use std::collections::BTreeMap;

use plasma_cluster::{ResourceUsage, ServerId};
use plasma_sim::{SimDuration, SimTime};

use crate::ids::{ActorId, ActorTypeId, FnId};
use crate::message::CallerKind;

/// Per-`(caller, function)` message counters.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CallStat {
    /// Number of messages received.
    pub count: u64,
    /// Total payload bytes received.
    pub bytes: u64,
}

/// Key of a received-call counter.
///
/// Tracking the concrete `caller` instance (not just its type) is what lets
/// pairwise interaction rules such as
/// `VideoStream(v).call(UserInfo(u).track).count > 0 => colocate(v, u)` bind
/// *which* caller talks to *which* callee.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct CallKey {
    /// Caller classification (client or actor type).
    pub caller_kind: CallerKind,
    /// Concrete calling actor, when the caller is an actor.
    pub caller: Option<ActorId>,
    /// The invoked function.
    pub fname: FnId,
}

/// Counters an actor accumulates during one profiling window.
#[derive(Clone, Debug, Default)]
pub struct ActorCounters {
    /// CPU time this actor consumed.
    pub cpu_busy: SimDuration,
    /// Messages received, keyed by caller and function.
    pub calls: BTreeMap<CallKey, CallStat>,
    /// Bytes sent by this actor.
    pub bytes_sent: u64,
}

impl ActorCounters {
    /// Records a received message.
    pub fn record_call(
        &mut self,
        from: CallerKind,
        caller: Option<ActorId>,
        fname: FnId,
        bytes: u64,
    ) {
        let key = CallKey {
            caller_kind: from,
            caller,
            fname,
        };
        let stat = self.calls.entry(key).or_default();
        stat.count += 1;
        stat.bytes += bytes;
    }

    /// Sums counters over every caller instance of `kind` invoking `fname`.
    pub fn calls_from_kind(&self, kind: CallerKind, fname: FnId) -> CallStat {
        let mut total = CallStat::default();
        for (key, stat) in &self.calls {
            if key.caller_kind == kind && key.fname == fname {
                total.count += stat.count;
                total.bytes += stat.bytes;
            }
        }
        total
    }

    /// Returns the counter for one concrete caller instance and function.
    pub fn calls_from_actor(&self, caller: ActorId, fname: FnId) -> CallStat {
        self.calls
            .iter()
            .find(|(k, _)| k.caller == Some(caller) && k.fname == fname)
            .map(|(_, s)| *s)
            .unwrap_or_default()
    }

    /// Records CPU time consumed by one message service.
    pub fn record_cpu(&mut self, d: SimDuration) {
        self.cpu_busy += d;
    }

    /// Returns the total messages received in this window.
    pub fn total_received(&self) -> u64 {
        self.calls.values().map(|s| s.count).sum()
    }

    /// Resets all counters for the next window.
    pub fn reset(&mut self) {
        self.cpu_busy = SimDuration::ZERO;
        self.calls.clear();
        self.bytes_sent = 0;
    }
}

/// Snapshot of one actor's activity over the last profiling window.
#[derive(Clone, Debug)]
pub struct ActorWindowStats {
    /// The actor.
    pub actor: ActorId,
    /// Its type.
    pub type_id: ActorTypeId,
    /// The server hosting it at snapshot time.
    pub server: ServerId,
    /// State size in bytes (for `mem` features and migration cost).
    pub state_size: u64,
    /// Whether a `pin` behavior currently protects it.
    pub pinned: bool,
    /// CPU share of the hosting server consumed by this actor, in `[0, 1]`.
    pub cpu_share: f64,
    /// Raw counters for the window.
    pub counters: ActorCounters,
    /// Reference fields: property name to referenced actors.
    pub refs: BTreeMap<String, Vec<ActorId>>,
}

/// Snapshot of one server's utilization over the last profiling window.
#[derive(Clone, Copy, Debug)]
pub struct ServerWindowStats {
    /// The server.
    pub server: ServerId,
    /// Utilization fractions for CPU/mem/net.
    pub usage: ResourceUsage,
    /// Number of actors resident at snapshot time.
    pub actor_count: usize,
}

/// A complete profiling snapshot: what every LEM ships to its GEM.
#[derive(Clone, Debug, Default)]
pub struct ProfileSnapshot {
    /// Build counter, bumped once per profiling window. Two handles with
    /// equal generations refer to the same build; the EMR uses this to
    /// count reuse, and tests pin "one build per window" against it.
    pub generation: u64,
    /// When the window closed.
    pub at: SimTime,
    /// Length of the window.
    pub window: SimDuration,
    /// Per-actor stats, ordered by actor id.
    pub actors: Vec<ActorWindowStats>,
    /// Per-server stats, ordered by server id.
    pub servers: Vec<ServerWindowStats>,
}

impl ProfileSnapshot {
    /// Returns the stats of actors hosted on `server`.
    pub fn actors_on(&self, server: ServerId) -> impl Iterator<Item = &ActorWindowStats> {
        self.actors.iter().filter(move |a| a.server == server)
    }

    /// Returns the stats for one server, if present.
    pub fn server(&self, server: ServerId) -> Option<&ServerWindowStats> {
        self.servers.iter().find(|s| s.server == server)
    }

    /// Returns the stats for one actor, if present.
    pub fn actor(&self, actor: ActorId) -> Option<&ActorWindowStats> {
        self.actors.iter().find(|a| a.actor == actor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let mut c = ActorCounters::default();
        c.record_call(CallerKind::Client, None, FnId(0), 100);
        c.record_call(CallerKind::Client, None, FnId(0), 50);
        c.record_call(
            CallerKind::Actor(ActorTypeId(2)),
            Some(ActorId(9)),
            FnId(1),
            10,
        );
        c.record_cpu(SimDuration::from_millis(3));
        assert_eq!(c.total_received(), 3);
        let stat = c.calls_from_kind(CallerKind::Client, FnId(0));
        assert_eq!(
            stat,
            CallStat {
                count: 2,
                bytes: 150
            }
        );
        c.reset();
        assert_eq!(c.total_received(), 0);
        assert_eq!(c.cpu_busy, SimDuration::ZERO);
    }

    #[test]
    fn per_instance_and_kind_aggregation() {
        let mut c = ActorCounters::default();
        let t = ActorTypeId(1);
        c.record_call(CallerKind::Actor(t), Some(ActorId(1)), FnId(0), 10);
        c.record_call(CallerKind::Actor(t), Some(ActorId(1)), FnId(0), 10);
        c.record_call(CallerKind::Actor(t), Some(ActorId(2)), FnId(0), 10);
        assert_eq!(c.calls_from_actor(ActorId(1), FnId(0)).count, 2);
        assert_eq!(c.calls_from_actor(ActorId(2), FnId(0)).count, 1);
        assert_eq!(c.calls_from_actor(ActorId(3), FnId(0)).count, 0);
        assert_eq!(c.calls_from_kind(CallerKind::Actor(t), FnId(0)).count, 3);
    }

    #[test]
    fn snapshot_filters() {
        let snap = ProfileSnapshot {
            generation: 1,
            at: SimTime::from_secs(10),
            window: SimDuration::from_secs(1),
            actors: vec![
                ActorWindowStats {
                    actor: ActorId(1),
                    type_id: ActorTypeId(0),
                    server: ServerId(0),
                    state_size: 10,
                    pinned: false,
                    cpu_share: 0.5,
                    counters: ActorCounters::default(),
                    refs: BTreeMap::new(),
                },
                ActorWindowStats {
                    actor: ActorId(2),
                    type_id: ActorTypeId(0),
                    server: ServerId(1),
                    state_size: 10,
                    pinned: true,
                    cpu_share: 0.1,
                    counters: ActorCounters::default(),
                    refs: BTreeMap::new(),
                },
            ],
            servers: vec![ServerWindowStats {
                server: ServerId(0),
                usage: ResourceUsage::new(0.9, 0.1, 0.2),
                actor_count: 1,
            }],
        };
        assert_eq!(snap.actors_on(ServerId(0)).count(), 1);
        assert_eq!(snap.actors_on(ServerId(1)).count(), 1);
        assert!(snap.server(ServerId(0)).is_some());
        assert!(snap.server(ServerId(9)).is_none());
        assert!(snap.actor(ActorId(2)).unwrap().pinned);
    }
}
