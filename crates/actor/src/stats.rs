//! Profiling counters — what the EPR collects each window.
//!
//! The paper's EPR "tracks information on all messages (e.g., type, size,
//! number) and the times for actors to process them" (§5.2). The runtime
//! accumulates these raw counters per actor; every profiling window they are
//! snapshotted into [`ActorWindowStats`]/[`ServerWindowStats`] and reset.
//! The EMR evaluates EPL conditions against those snapshots.

use std::collections::BTreeMap;

use plasma_cluster::{ResourceUsage, ServerId};
use plasma_sim::{SimDuration, SimTime};

use crate::ids::{ActorId, ActorTypeId, FnId};
use crate::message::CallerKind;

/// Per-`(caller, function)` message counters.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CallStat {
    /// Number of messages received.
    pub count: u64,
    /// Total payload bytes received.
    pub bytes: u64,
}

/// Key of a received-call counter.
///
/// Tracking the concrete `caller` instance (not just its type) is what lets
/// pairwise interaction rules such as
/// `VideoStream(v).call(UserInfo(u).track).count > 0 => colocate(v, u)` bind
/// *which* caller talks to *which* callee.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct CallKey {
    /// Caller classification (client or actor type).
    pub caller_kind: CallerKind,
    /// Concrete calling actor, when the caller is an actor.
    pub caller: Option<ActorId>,
    /// The invoked function.
    pub fname: FnId,
}

/// Counters an actor accumulates during one profiling window.
#[derive(Clone, Debug, Default)]
pub struct ActorCounters {
    /// CPU time this actor consumed.
    pub cpu_busy: SimDuration,
    /// Messages received, keyed by caller and function.
    pub calls: BTreeMap<CallKey, CallStat>,
    /// Bytes sent by this actor.
    pub bytes_sent: u64,
}

impl ActorCounters {
    /// Records a received message.
    pub fn record_call(
        &mut self,
        from: CallerKind,
        caller: Option<ActorId>,
        fname: FnId,
        bytes: u64,
    ) {
        let key = CallKey {
            caller_kind: from,
            caller,
            fname,
        };
        let stat = self.calls.entry(key).or_default();
        stat.count += 1;
        stat.bytes += bytes;
    }

    /// Sums counters over every caller instance of `kind` invoking `fname`.
    pub fn calls_from_kind(&self, kind: CallerKind, fname: FnId) -> CallStat {
        let mut total = CallStat::default();
        for (key, stat) in &self.calls {
            if key.caller_kind == kind && key.fname == fname {
                total.count += stat.count;
                total.bytes += stat.bytes;
            }
        }
        total
    }

    /// Returns the counter for one concrete caller instance and function.
    pub fn calls_from_actor(&self, caller: ActorId, fname: FnId) -> CallStat {
        self.calls
            .iter()
            .find(|(k, _)| k.caller == Some(caller) && k.fname == fname)
            .map(|(_, s)| *s)
            .unwrap_or_default()
    }

    /// Records CPU time consumed by one message service.
    pub fn record_cpu(&mut self, d: SimDuration) {
        self.cpu_busy += d;
    }

    /// Returns the total messages received in this window.
    pub fn total_received(&self) -> u64 {
        self.calls.values().map(|s| s.count).sum()
    }

    /// Resets all counters for the next window.
    pub fn reset(&mut self) {
        self.cpu_busy = SimDuration::ZERO;
        self.calls.clear();
        self.bytes_sent = 0;
    }
}

/// Snapshot of one actor's activity over the last profiling window.
#[derive(Clone, Debug)]
pub struct ActorWindowStats {
    /// The actor.
    pub actor: ActorId,
    /// Its type.
    pub type_id: ActorTypeId,
    /// The server hosting it at snapshot time.
    pub server: ServerId,
    /// State size in bytes (for `mem` features and migration cost).
    pub state_size: u64,
    /// Whether a `pin` behavior currently protects it.
    pub pinned: bool,
    /// CPU share of the hosting server consumed by this actor, in `[0, 1]`.
    pub cpu_share: f64,
    /// Raw counters for the window.
    pub counters: ActorCounters,
    /// Reference fields: property name to referenced actors.
    pub refs: BTreeMap<String, Vec<ActorId>>,
}

/// Snapshot of one server's utilization over the last profiling window.
#[derive(Clone, Copy, Debug)]
pub struct ServerWindowStats {
    /// The server.
    pub server: ServerId,
    /// Utilization fractions for CPU/mem/net.
    pub usage: ResourceUsage,
    /// Number of actors resident at snapshot time.
    pub actor_count: usize,
}

/// A complete profiling snapshot: what every LEM ships to its GEM.
#[derive(Clone, Debug, Default)]
pub struct ProfileSnapshot {
    /// Build counter, bumped once per profiling window. Two handles with
    /// equal generations refer to the same build; the EMR uses this to
    /// count reuse, and tests pin "one build per window" against it.
    pub generation: u64,
    /// When the window closed.
    pub at: SimTime,
    /// Length of the window.
    pub window: SimDuration,
    /// Per-actor stats, ordered by actor id.
    pub actors: Vec<ActorWindowStats>,
    /// Per-server stats, ordered by server id.
    pub servers: Vec<ServerWindowStats>,
}

impl ProfileSnapshot {
    /// Returns the stats of actors hosted on `server`.
    pub fn actors_on(&self, server: ServerId) -> impl Iterator<Item = &ActorWindowStats> {
        self.actors.iter().filter(move |a| a.server == server)
    }

    /// Returns the stats for one server, if present.
    pub fn server(&self, server: ServerId) -> Option<&ServerWindowStats> {
        self.servers.iter().find(|s| s.server == server)
    }

    /// Returns the stats for one actor, if present.
    pub fn actor(&self, actor: ActorId) -> Option<&ActorWindowStats> {
        self.actors.iter().find(|a| a.actor == actor)
    }
}

/// Churn threshold for reporting an actor's `cpu_share` as changed between
/// two generations.
///
/// This must stay `0.0` as long as consumers patch cpu-sorted indexes from
/// deltas: the EMR's `partition_point` threshold pruning relies on the
/// retained order being *exactly* the order a full re-sort of the current
/// generation would produce, so every bitwise change has to be reported. A
/// nonzero epsilon would trade that exactness for smaller deltas.
pub const CPU_DELTA_EPSILON: f64 = 0.0;

/// What changed between two consecutive profiling snapshots.
///
/// Emitted by the runtime alongside every generation bump, derived from the
/// slab-backed actor rows and the per-window server lists (which mirror the
/// cluster lifecycle journal: a server enters when it starts running and
/// leaves when it stops, crashes, or is decommissioned). Consumers use
/// deltas to patch retained indexes in place instead of rebuilding them —
/// only `server`, `type_id`, and `cpu_share` feed indexes, so those are the
/// only per-actor stats diffed; everything else is read straight from the
/// current snapshot.
///
/// All id vectors are sorted and deduplicated. After [`merge`], an id may
/// appear in more than one category (e.g. added in one window and removed a
/// few windows later); consumers must classify a touched actor by its state
/// in the two endpoint generations, not by category.
///
/// [`merge`]: SnapshotDelta::merge
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SnapshotDelta {
    /// Generation this delta starts from.
    pub from_generation: u64,
    /// Generation this delta produces (`from + 1` until merged).
    pub to_generation: u64,
    /// Actors present in `to` but not in `from`.
    pub added: Vec<ActorId>,
    /// Actors present in `from` but not in `to`.
    pub removed: Vec<ActorId>,
    /// Actors present in both whose hosting server changed.
    pub moved: Vec<ActorId>,
    /// Actors present in both whose `cpu_share` changed beyond
    /// [`CPU_DELTA_EPSILON`].
    pub stat_changed: Vec<ActorId>,
    /// Servers reporting in `to` but not in `from` (booted).
    pub servers_added: Vec<ServerId>,
    /// Servers reporting in `from` but not in `to` (decommissioned or
    /// crashed).
    pub servers_removed: Vec<ServerId>,
}

impl SnapshotDelta {
    /// Diffs two consecutive snapshots; both actor and server lists are
    /// id-ordered, so this is a single merge walk.
    pub fn between(from: &ProfileSnapshot, to: &ProfileSnapshot) -> Self {
        let mut delta = SnapshotDelta {
            from_generation: from.generation,
            to_generation: to.generation,
            ..SnapshotDelta::default()
        };
        let (mut i, mut j) = (0, 0);
        while i < from.actors.len() || j < to.actors.len() {
            let old = from.actors.get(i);
            let new = to.actors.get(j);
            match (old, new) {
                (Some(o), Some(n)) if o.actor == n.actor => {
                    if o.server != n.server {
                        delta.moved.push(o.actor);
                    }
                    if (o.cpu_share - n.cpu_share).abs() > CPU_DELTA_EPSILON {
                        delta.stat_changed.push(o.actor);
                    }
                    i += 1;
                    j += 1;
                }
                (Some(o), Some(n)) if o.actor < n.actor => {
                    delta.removed.push(o.actor);
                    i += 1;
                }
                (Some(_), Some(n)) => {
                    delta.added.push(n.actor);
                    j += 1;
                }
                (Some(o), None) => {
                    delta.removed.push(o.actor);
                    i += 1;
                }
                (None, Some(n)) => {
                    delta.added.push(n.actor);
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        let old_servers: Vec<ServerId> = from.servers.iter().map(|s| s.server).collect();
        let new_servers: Vec<ServerId> = to.servers.iter().map(|s| s.server).collect();
        for s in &new_servers {
            if !old_servers.contains(s) {
                delta.servers_added.push(*s);
            }
        }
        for s in &old_servers {
            if !new_servers.contains(s) {
                delta.servers_removed.push(*s);
            }
        }
        delta
    }

    /// Returns whether nothing changed between the two generations.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty()
            && self.removed.is_empty()
            && self.moved.is_empty()
            && self.stat_changed.is_empty()
            && self.servers_added.is_empty()
            && self.servers_removed.is_empty()
    }

    /// Returns whether the reporting server set changed at all.
    pub fn scope_changed(&self) -> bool {
        !self.servers_added.is_empty() || !self.servers_removed.is_empty()
    }

    /// Folds a later consecutive delta into this one, producing a delta
    /// spanning `self.from_generation .. later.to_generation`.
    ///
    /// Category vectors become unions (sorted, deduplicated); see the type
    /// docs for why categories may overlap after merging.
    pub fn merge(&mut self, later: &SnapshotDelta) {
        debug_assert_eq!(
            self.to_generation, later.from_generation,
            "merged deltas must be consecutive"
        );
        self.to_generation = later.to_generation;
        fn union<T: Ord + Copy>(dst: &mut Vec<T>, src: &[T]) {
            dst.extend_from_slice(src);
            dst.sort_unstable();
            dst.dedup();
        }
        union(&mut self.added, &later.added);
        union(&mut self.removed, &later.removed);
        union(&mut self.moved, &later.moved);
        union(&mut self.stat_changed, &later.stat_changed);
        union(&mut self.servers_added, &later.servers_added);
        union(&mut self.servers_removed, &later.servers_removed);
    }

    /// Every actor id this delta touches, sorted and deduplicated.
    pub fn touched_actors(&self) -> Vec<ActorId> {
        let mut all = Vec::with_capacity(
            self.added.len() + self.removed.len() + self.moved.len() + self.stat_changed.len(),
        );
        all.extend_from_slice(&self.added);
        all.extend_from_slice(&self.removed);
        all.extend_from_slice(&self.moved);
        all.extend_from_slice(&self.stat_changed);
        all.sort_unstable();
        all.dedup();
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let mut c = ActorCounters::default();
        c.record_call(CallerKind::Client, None, FnId(0), 100);
        c.record_call(CallerKind::Client, None, FnId(0), 50);
        c.record_call(
            CallerKind::Actor(ActorTypeId(2)),
            Some(ActorId(9)),
            FnId(1),
            10,
        );
        c.record_cpu(SimDuration::from_millis(3));
        assert_eq!(c.total_received(), 3);
        let stat = c.calls_from_kind(CallerKind::Client, FnId(0));
        assert_eq!(
            stat,
            CallStat {
                count: 2,
                bytes: 150
            }
        );
        c.reset();
        assert_eq!(c.total_received(), 0);
        assert_eq!(c.cpu_busy, SimDuration::ZERO);
    }

    #[test]
    fn per_instance_and_kind_aggregation() {
        let mut c = ActorCounters::default();
        let t = ActorTypeId(1);
        c.record_call(CallerKind::Actor(t), Some(ActorId(1)), FnId(0), 10);
        c.record_call(CallerKind::Actor(t), Some(ActorId(1)), FnId(0), 10);
        c.record_call(CallerKind::Actor(t), Some(ActorId(2)), FnId(0), 10);
        assert_eq!(c.calls_from_actor(ActorId(1), FnId(0)).count, 2);
        assert_eq!(c.calls_from_actor(ActorId(2), FnId(0)).count, 1);
        assert_eq!(c.calls_from_actor(ActorId(3), FnId(0)).count, 0);
        assert_eq!(c.calls_from_kind(CallerKind::Actor(t), FnId(0)).count, 3);
    }

    #[test]
    fn snapshot_filters() {
        let snap = ProfileSnapshot {
            generation: 1,
            at: SimTime::from_secs(10),
            window: SimDuration::from_secs(1),
            actors: vec![
                ActorWindowStats {
                    actor: ActorId(1),
                    type_id: ActorTypeId(0),
                    server: ServerId(0),
                    state_size: 10,
                    pinned: false,
                    cpu_share: 0.5,
                    counters: ActorCounters::default(),
                    refs: BTreeMap::new(),
                },
                ActorWindowStats {
                    actor: ActorId(2),
                    type_id: ActorTypeId(0),
                    server: ServerId(1),
                    state_size: 10,
                    pinned: true,
                    cpu_share: 0.1,
                    counters: ActorCounters::default(),
                    refs: BTreeMap::new(),
                },
            ],
            servers: vec![ServerWindowStats {
                server: ServerId(0),
                usage: ResourceUsage::new(0.9, 0.1, 0.2),
                actor_count: 1,
            }],
        };
        assert_eq!(snap.actors_on(ServerId(0)).count(), 1);
        assert_eq!(snap.actors_on(ServerId(1)).count(), 1);
        assert!(snap.server(ServerId(0)).is_some());
        assert!(snap.server(ServerId(9)).is_none());
        assert!(snap.actor(ActorId(2)).unwrap().pinned);
    }

    /// Minimal snapshot: actors given as `(id, server, cpu_share)` rows
    /// (already id-ordered), servers as bare ids.
    fn snap_of(generation: u64, actors: &[(u64, u32, f64)], servers: &[u32]) -> ProfileSnapshot {
        ProfileSnapshot {
            generation,
            at: SimTime::from_secs(generation),
            window: SimDuration::from_secs(1),
            actors: actors
                .iter()
                .map(|&(id, srv, cpu)| ActorWindowStats {
                    actor: ActorId(id),
                    type_id: ActorTypeId(0),
                    server: ServerId(srv),
                    state_size: 1,
                    pinned: false,
                    cpu_share: cpu,
                    counters: ActorCounters::default(),
                    refs: BTreeMap::new(),
                })
                .collect(),
            servers: servers
                .iter()
                .map(|&s| ServerWindowStats {
                    server: ServerId(s),
                    usage: ResourceUsage::new(0.5, 0.5, 0.5),
                    actor_count: 0,
                })
                .collect(),
        }
    }

    #[test]
    fn delta_between_classifies_every_category() {
        let a = snap_of(1, &[(1, 0, 0.2), (2, 0, 0.3), (3, 1, 0.4)], &[0, 1]);
        let b = snap_of(2, &[(2, 1, 0.3), (3, 1, 0.9), (5, 0, 0.1)], &[0, 2]);
        let d = SnapshotDelta::between(&a, &b);
        assert_eq!(d.from_generation, 1);
        assert_eq!(d.to_generation, 2);
        assert_eq!(d.added, vec![ActorId(5)]);
        assert_eq!(d.removed, vec![ActorId(1)]);
        assert_eq!(d.moved, vec![ActorId(2)]);
        assert_eq!(d.stat_changed, vec![ActorId(3)]);
        assert_eq!(d.servers_added, vec![ServerId(2)]);
        assert_eq!(d.servers_removed, vec![ServerId(1)]);
        assert!(d.scope_changed());
        assert!(!d.is_empty());
        assert_eq!(
            d.touched_actors(),
            vec![ActorId(1), ActorId(2), ActorId(3), ActorId(5)]
        );
    }

    #[test]
    fn delta_between_identical_snapshots_is_empty() {
        let a = snap_of(1, &[(1, 0, 0.2), (2, 1, 0.3)], &[0, 1]);
        let mut b = a.clone();
        b.generation = 2;
        let d = SnapshotDelta::between(&a, &b);
        assert!(d.is_empty());
        assert!(!d.scope_changed());
        assert!(d.touched_actors().is_empty());
    }

    #[test]
    fn delta_reports_every_bitwise_cpu_change() {
        // CPU_DELTA_EPSILON must stay 0.0: retained cpu-sorted indexes are
        // patched from deltas, so even the smallest drift must be listed.
        let a = snap_of(1, &[(1, 0, 0.2)], &[0]);
        let b = snap_of(2, &[(1, 0, 0.2 + f64::EPSILON)], &[0]);
        assert_eq!(
            SnapshotDelta::between(&a, &b).stat_changed,
            vec![ActorId(1)]
        );
    }

    #[test]
    fn merge_spans_generations_and_unions_categories() {
        let a = snap_of(1, &[(1, 0, 0.2), (2, 0, 0.3)], &[0]);
        // Window 2: actor 3 appears, actor 1's cpu changes.
        let b = snap_of(2, &[(1, 0, 0.5), (2, 0, 0.3), (3, 0, 0.1)], &[0]);
        // Window 3: actor 3 disappears again, actor 2 moves.
        let c = snap_of(3, &[(1, 0, 0.5), (2, 1, 0.3)], &[0, 1]);
        let mut d = SnapshotDelta::between(&a, &b);
        d.merge(&SnapshotDelta::between(&b, &c));
        assert_eq!(d.from_generation, 1);
        assert_eq!(d.to_generation, 3);
        // Actor 3 is listed as both added and removed: the merged delta
        // records categories, consumers classify by endpoint presence.
        assert_eq!(d.added, vec![ActorId(3)]);
        assert_eq!(d.removed, vec![ActorId(3)]);
        assert_eq!(d.moved, vec![ActorId(2)]);
        assert_eq!(d.stat_changed, vec![ActorId(1)]);
        assert_eq!(d.servers_added, vec![ServerId(1)]);
        // touched_actors dedups across categories.
        assert_eq!(d.touched_actors(), vec![ActorId(1), ActorId(2), ActorId(3)]);
        // The merged span must classify like a direct endpoint diff for
        // actors present in exactly one endpoint.
        let direct = SnapshotDelta::between(&a, &c);
        assert_eq!(direct.added, Vec::<ActorId>::new());
        assert_eq!(direct.moved, d.moved);
        assert_eq!(direct.stat_changed, d.stat_changed);
    }
}
