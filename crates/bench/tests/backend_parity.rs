//! Backend-parity gate: the live (OS-thread) execution backend must replay
//! the sim backend's elasticity behavior exactly.
//!
//! Elasticity decisions are a pure function of logical runtime state; the
//! execution backend only *carries* deliveries and service time. Under that
//! contract a same-seed scenario run must serialize to byte-identical BENCH
//! JSON under both backends, and in particular the decision-sequence digest
//! (grow/shrink/migrate, in order, timestamps excluded) must match. These
//! tests pin that property on §5 scenarios at smoke scale; the CI
//! `backend-parity` job runs the same check through the `plasma-eval
//! parity` subcommand.

use plasma_actor::BackendKind;
use plasma_apps::common::EvalScale;
use plasma_bench::eval::run_scenario_on;

/// §5 scenarios whose smoke presets produce a nonzero decision sequence —
/// the interesting ones, where a carriage bug could actually reorder or
/// drop a grow/shrink/migrate.
const DECIDING: &[&str] = &["pagerank", "estore", "media", "estore-chaos"];

fn digest_of(name: &str, backend: BackendKind) -> (f64, f64, String) {
    let mut r = run_scenario_on(name, EvalScale::Smoke, None, backend).expect("known scenario");
    let decisions = r.metric("decisions_total").expect("metric present").value;
    let digest = r.metric("decision_digest").expect("metric present").value;
    // Backend-clock nanosecond counters (`*_ns`) are identically 0 under
    // sim and host-dependent under live, and `backend_*` transport counters
    // describe the carrier itself; `control_*` reply/byte tallies are
    // carrier-shaped too (one reply per query under sim, one per worker
    // under live). Zero all three so the byte comparison only sees
    // deterministic metrics — the same normalization the `plasma-eval
    // parity` subcommand applies.
    for (metric, v) in &mut r.metrics {
        if metric.ends_with("_ns")
            || metric.starts_with("backend_")
            || metric.starts_with("control_")
        {
            v.value = 0.0;
        }
    }
    (decisions, digest, r.to_pretty_string())
}

#[test]
fn live_replays_sims_decision_sequence() {
    for name in DECIDING {
        let (sim_n, sim_digest, sim_text) = digest_of(name, BackendKind::Sim);
        let (live_n, live_digest, live_text) = digest_of(name, BackendKind::Live);
        assert!(sim_n > 0.0, "`{name}` smoke preset must decide something");
        assert_eq!(sim_n, live_n, "`{name}`: decision counts diverged");
        assert_eq!(
            sim_digest, live_digest,
            "`{name}`: decision sequences diverged"
        );
        assert_eq!(
            sim_text, live_text,
            "`{name}`: BENCH output diverged between backends"
        );
    }
}

#[test]
fn live_runs_are_deterministic_across_repeats() {
    // Same seed, two live runs: the decision digest (and the whole BENCH
    // serialization, which excludes wall-clock latencies by construction)
    // must be byte-identical even though thread interleavings differ.
    for name in ["estore", "media"] {
        let (_, digest_a, text_a) = digest_of(name, BackendKind::Live);
        let (_, digest_b, text_b) = digest_of(name, BackendKind::Live);
        assert_eq!(digest_a, digest_b, "`{name}`: live digest not stable");
        assert_eq!(text_a, text_b, "`{name}`: live BENCH bytes not stable");
    }
}

#[test]
fn parity_holds_on_quiet_scenarios_too() {
    // Scenarios that happen not to migrate at smoke scale still must agree
    // byte-for-byte (the digest of an empty sequence is the FNV offset).
    for name in ["chatroom", "halo"] {
        let (_, sim_digest, sim_text) = digest_of(name, BackendKind::Sim);
        let (_, live_digest, live_text) = digest_of(name, BackendKind::Live);
        assert_eq!(sim_digest, live_digest);
        assert_eq!(sim_text, live_text, "`{name}`: BENCH output diverged");
    }
}

#[test]
fn full_scale_eval_engine_matches_checked_in_baseline() {
    // Satellite of the backend PR: the `full` eval-engine scale is promoted
    // to a checked-in baseline. It has no runtime, so it is cheap enough to
    // pin byte-for-byte in the suite as well as in CI.
    let r = run_scenario_on("eval-engine", EvalScale::Full, None, BackendKind::Sim).unwrap();
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../baselines/full/BENCH_eval-engine.json");
    let baseline = std::fs::read_to_string(path).expect("baselines/full checked in");
    assert_eq!(
        r.to_pretty_string(),
        baseline,
        "full-scale eval-engine diverged from baselines/full"
    );
}
