//! Abstract counterexamples are real: bands the model checker flags as
//! oscillating actually ping-pong the simulated cluster.
//!
//! The verifier's scaling model says a `balance` band `(upper, lower)` with
//! `upper·n < lower·(n+1)` admits a load that grows an `n`-server cluster
//! and immediately shrinks it back. This property test samples such bands,
//! confirms the verifier produces an oscillation finding, then replays the
//! counterexample's load point in the full simulator (EMR + GEMs + actor
//! runtime, auto-scale on) and checks the cluster both scales out *and*
//! scales back in under constant offered load — the concrete grow→shrink
//! cycle the abstract trace promised.

use plasma_actor::logic::{ActorCtx, ClientCtx};
use plasma_actor::message::Payload;
use plasma_actor::{ActorId, ActorLogic, ClientLogic, Message, Runtime, RuntimeConfig};
use plasma_cluster::topology::ClusterLimits;
use plasma_cluster::InstanceType;
use plasma_emr::{EmrConfig, PlasmaEmr};
use plasma_epl::verify::{verify, Property, VerifyConfig};
use plasma_epl::{compile, ActorSchema};
use plasma_sim::{SimDuration, SimTime};
use proptest::prelude::*;

/// Burns a fixed CPU share per request and replies.
struct Burner {
    work: f64,
}

impl ActorLogic for Burner {
    fn on_message(&mut self, ctx: &mut ActorCtx<'_>, _msg: &mut Message) {
        ctx.work(self.work);
        ctx.reply(32);
    }
}

/// Open-loop client: one request every `period`.
struct Pulse {
    target: ActorId,
    period: SimDuration,
}

impl ClientLogic for Pulse {
    fn on_start(&mut self, ctx: &mut ClientCtx<'_>) {
        ctx.set_timer(SimDuration::ZERO, 0);
    }
    fn on_reply(
        &mut self,
        _ctx: &mut ClientCtx<'_>,
        _request: u64,
        _latency: SimDuration,
        _payload: Option<Payload>,
    ) {
    }
    fn on_timer(&mut self, ctx: &mut ClientCtx<'_>, _token: u64) {
        ctx.request(self.target, "run", 64);
        ctx.set_timer(self.period, 0);
    }
}

fn worker_schema() -> ActorSchema {
    let mut s = ActorSchema::new();
    s.actor_type("Worker").func("run");
    s
}

/// Number of equal-weight workers. Divisible by 2 and 3 so both the two-
/// and the three-server configuration can reach the uniform spread the
/// abstract model reasons about.
const WORKERS: usize = 12;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Sampled bands violate `upper·2 ≥ lower·3`, so a two-server cluster
    /// oscillates. The margin (`3·lower - 2·upper ≥ 12` percent) keeps the
    /// replay's load point comfortably inside the grow *and* shrink regions
    /// despite discrete actors and measurement jitter.
    #[test]
    fn abstract_oscillation_replays_in_sim(
        upper in 70u32..81,
        lower_pick in 0u32..100,
    ) {
        // Place lower inside [ceil((2·upper + 12) / 3), upper - 1].
        let lo_min = (2 * upper + 12).div_ceil(3);
        let lo_max = upper - 1;
        let lower = lo_min + lower_pick % (lo_max - lo_min + 1);

        let policy_src = format!(
            "server.cpu.perc > {upper} or server.cpu.perc < {lower} => \
             balance({{Worker}}, cpu);"
        );
        let policy = compile(&policy_src, &worker_schema()).unwrap();

        // Abstract side: the verifier must flag the band.
        let config = VerifyConfig {
            min_servers: 2,
            max_servers: 4,
            ..VerifyConfig::default()
        };
        let verdict = verify(&policy, &config);
        let finding = verdict
            .of(Property::Oscillation)
            .next()
            .expect("verifier flags 2U < 3L band");
        prop_assert!(finding.gating());

        // Concrete side: replay the counterexample's load point. Any total
        // load W with 2·upper < W < 3·lower grows 2 servers and shrinks 3;
        // take the midpoint and split it over WORKERS equal actors.
        let w_total = (2 * upper + 3 * lower) as f64 / 2.0; // percent
        let per_worker = w_total / 100.0 / WORKERS as f64; // fraction
        let period = SimDuration::from_millis(100);
        let work = per_worker * period.as_secs_f64();

        let emr = PlasmaEmr::new(
            compile(&policy_src, &worker_schema()).unwrap(),
            EmrConfig {
                auto_scale: true,
                scale_instance: InstanceType::m1_small(),
                scale_in_step: 1,
                ..EmrConfig::default()
            },
        );
        let mut rt = Runtime::new(RuntimeConfig {
            seed: (upper * 100 + lower) as u64,
            limits: ClusterLimits {
                max_servers: 4,
                min_servers: 2,
            },
            elasticity_period: SimDuration::from_secs(30),
            min_residency: SimDuration::from_secs(30),
            ..RuntimeConfig::default()
        });
        rt.set_controller(Box::new(emr));
        let s0 = rt.add_server(InstanceType::m1_small());
        let s1 = rt.add_server(InstanceType::m1_small());
        for i in 0..WORKERS {
            let home = if i % 2 == 0 { s0 } else { s1 };
            let a = rt.spawn_actor("Worker", Box::new(Burner { work }), 1 << 10, home);
            rt.add_client(Box::new(Pulse { target: a, period }));
        }
        rt.run_until(SimTime::from_secs(900));

        let report = rt.report();
        let outs = report.scalar("emr.scale_outs").unwrap_or(0.0);
        let ins = report.scalar("emr.scale_ins").unwrap_or(0.0);
        prop_assert!(
            outs >= 1.0 && ins >= 1.0,
            "band {upper}/{lower} at load {w_total}%: expected a grow and a \
             shrink under constant load, got scale_outs={outs} scale_ins={ins}"
        );
    }
}
