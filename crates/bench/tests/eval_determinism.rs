//! Determinism and end-to-end gate tests for the plasma-eval harness.
//!
//! The CI regression gate depends on two same-seed runs of a scenario
//! serializing to byte-identical JSON; these tests pin that property on the
//! fast scenarios and exercise the run -> serialize -> parse -> compare
//! path the `plasma-eval` binary is built from.

use std::path::PathBuf;
use std::str::FromStr;

use plasma_apps::common::EvalScale;
use plasma_bench::eval::{compare, run_scenario, CompareOptions, ScenarioResult};

fn baseline_dir(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../baselines")
        .join(name)
}

#[test]
fn same_seed_runs_serialize_byte_identically() {
    for name in ["chatroom", "estore"] {
        let a = run_scenario(name, EvalScale::Smoke, None).unwrap();
        let b = run_scenario(name, EvalScale::Smoke, None).unwrap();
        assert_eq!(
            a.to_pretty_string(),
            b.to_pretty_string(),
            "scenario `{name}` is not byte-deterministic"
        );
    }
}

#[test]
fn different_seeds_change_the_seed_stamp() {
    let a = run_scenario("chatroom", EvalScale::Smoke, Some(1)).unwrap();
    let b = run_scenario("chatroom", EvalScale::Smoke, Some(2)).unwrap();
    assert_eq!(a.seed, 1);
    assert_eq!(b.seed, 2);
    assert_ne!(a.to_pretty_string(), b.to_pretty_string());
}

#[test]
fn run_round_trips_and_self_compares_clean() {
    let result = run_scenario("estore", EvalScale::Smoke, None).unwrap();
    let parsed = ScenarioResult::from_str(&result.to_pretty_string()).unwrap();
    assert_eq!(parsed, result);
    let report = compare(
        std::slice::from_ref(&result),
        std::slice::from_ref(&parsed),
        CompareOptions::default(),
    );
    assert!(
        report.passed(),
        "self-comparison must pass:\n{}",
        report.render(0.10)
    );
}

#[test]
fn chaos_scenarios_serialize_byte_identically() {
    for name in ["chatroom-chaos", "estore-chaos", "halo-chaos"] {
        let a = run_scenario(name, EvalScale::Smoke, None).unwrap();
        let b = run_scenario(name, EvalScale::Smoke, None).unwrap();
        assert_eq!(
            a.to_pretty_string(),
            b.to_pretty_string(),
            "scenario `{name}` is not byte-deterministic"
        );
    }
}

/// The empty fault plan is the identity: the fault-free scenarios must
/// reproduce the checked-in baselines byte for byte even though their
/// configs now carry (empty) chaos knobs.
#[test]
fn fault_free_scenarios_match_checked_in_baselines() {
    let dir = baseline_dir("smoke");
    for name in ["chatroom", "estore"] {
        let current = run_scenario(name, EvalScale::Smoke, None)
            .unwrap()
            .to_pretty_string();
        let baseline = std::fs::read_to_string(dir.join(format!("BENCH_{name}.json")))
            .expect("baseline file exists");
        assert_eq!(
            current, baseline,
            "fault-free `{name}` diverged from baselines/smoke"
        );
    }
}

/// The chaos scenarios must reproduce their checked-in baselines byte for
/// byte — the property the `chaos-smoke` CI gate builds on.
#[test]
fn chaos_scenarios_match_checked_in_baselines() {
    let dir = baseline_dir("smoke-chaos");
    for name in ["chatroom-chaos", "estore-chaos", "halo-chaos"] {
        let current = run_scenario(name, EvalScale::Smoke, None)
            .unwrap()
            .to_pretty_string();
        let baseline = std::fs::read_to_string(dir.join(format!("BENCH_{name}.json")))
            .expect("baseline file exists");
        assert_eq!(
            current, baseline,
            "chaos scenario `{name}` diverged from baselines/smoke-chaos"
        );
    }
}

#[test]
fn chatroom_chaos_recovers_everything_it_breaks() {
    let r = run_scenario("chatroom-chaos", EvalScale::Smoke, None).unwrap();
    let metric = |name: &str| r.metric(name).unwrap().value;
    assert_eq!(metric("servers_crashed"), 2.0);
    assert_eq!(metric("servers_restarted"), 1.0);
    assert!(metric("actors_lost") > 0.0);
    assert_eq!(metric("recovered_fraction"), 1.0, "no actor stays orphaned");
    assert!(metric("detections") >= 1.0, "heartbeat sweep fired");
    assert!(metric("time_to_detect_s_max") > 0.0);
    assert!(metric("unavailability_s_max") > 0.0);
    assert!(
        metric("replies") > 0.0,
        "traffic kept flowing through faults"
    );
}

#[test]
fn estore_chaos_exercises_abort_and_retry() {
    let r = run_scenario("estore-chaos", EvalScale::Smoke, None).unwrap();
    let metric = |name: &str| r.metric(name).unwrap().value;
    assert!(
        metric("migrations_aborted") > 0.0,
        "abort window caught transfers"
    );
    assert!(
        metric("migration_retries") > 0.0,
        "retry-with-backoff engaged"
    );
    assert!(
        metric("messages_lost") > 0.0,
        "degraded links dropped traffic"
    );
    assert!(
        metric("migrations_completed") > 0.0,
        "retries eventually landed"
    );
}

#[test]
fn halo_chaos_partitions_and_kills_a_gem() {
    let r = run_scenario("halo-chaos", EvalScale::Smoke, None).unwrap();
    let metric = |name: &str| r.metric(name).unwrap().value;
    assert_eq!(metric("faults_injected"), 2.0);
    assert!(
        metric("messages_lost") > 0.0,
        "partition severed live traffic"
    );
    assert_eq!(metric("servers_crashed"), 0.0, "partition is not a crash");
    assert!(
        metric("throughput_rps") > 0.0,
        "service survives the GEM loss"
    );
}
