//! Determinism and end-to-end gate tests for the plasma-eval harness.
//!
//! The CI regression gate depends on two same-seed runs of a scenario
//! serializing to byte-identical JSON; these tests pin that property on the
//! fast scenarios and exercise the run -> serialize -> parse -> compare
//! path the `plasma-eval` binary is built from.

use std::str::FromStr;

use plasma_apps::common::EvalScale;
use plasma_bench::eval::{compare, run_scenario, CompareOptions, ScenarioResult};

#[test]
fn same_seed_runs_serialize_byte_identically() {
    for name in ["chatroom", "estore"] {
        let a = run_scenario(name, EvalScale::Smoke, None).unwrap();
        let b = run_scenario(name, EvalScale::Smoke, None).unwrap();
        assert_eq!(
            a.to_pretty_string(),
            b.to_pretty_string(),
            "scenario `{name}` is not byte-deterministic"
        );
    }
}

#[test]
fn different_seeds_change_the_seed_stamp() {
    let a = run_scenario("chatroom", EvalScale::Smoke, Some(1)).unwrap();
    let b = run_scenario("chatroom", EvalScale::Smoke, Some(2)).unwrap();
    assert_eq!(a.seed, 1);
    assert_eq!(b.seed, 2);
    assert_ne!(a.to_pretty_string(), b.to_pretty_string());
}

#[test]
fn run_round_trips_and_self_compares_clean() {
    let result = run_scenario("estore", EvalScale::Smoke, None).unwrap();
    let parsed = ScenarioResult::from_str(&result.to_pretty_string()).unwrap();
    assert_eq!(parsed, result);
    let report = compare(
        std::slice::from_ref(&result),
        std::slice::from_ref(&parsed),
        CompareOptions::default(),
    );
    assert!(
        report.passed(),
        "self-comparison must pass:\n{}",
        report.render(0.10)
    );
}
