//! Shared output helpers for the reproduction harnesses.
//!
//! Every `benches/figN_*.rs` target prints the rows/series its paper figure
//! reports and also dumps machine-readable JSON under
//! `target/plasma-results/`, which `EXPERIMENTS.md` is written from.

use std::fs;
use std::path::PathBuf;

pub mod eval;

/// Prints a banner naming the experiment.
pub fn banner(id: &str, claim: &str) {
    println!("================================================================");
    println!("{id}");
    println!("paper claim: {claim}");
    println!("================================================================");
}

/// Prints a `(time, value)` series with a label, decimated to at most
/// `max_rows` rows.
pub fn print_series(label: &str, series: &[(f64, f64)], max_rows: usize) {
    println!("-- {label} --");
    if series.is_empty() {
        println!("   (empty)");
        return;
    }
    let step = (series.len() / max_rows.max(1)).max(1);
    for (i, &(t, v)) in series.iter().enumerate() {
        if i % step == 0 || i + 1 == series.len() {
            println!("   t={t:>8.1}s  {v:>10.3}");
        }
    }
}

/// Returns the directory JSON results are written to
/// (`<workspace>/target/plasma-results`, independent of the bench's CWD).
pub fn results_dir() -> PathBuf {
    let dir = match std::env::var("CARGO_TARGET_DIR") {
        Ok(t) => PathBuf::from(t),
        Err(_) => PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
            .join("target"),
    }
    .join("plasma-results");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Writes a JSON value under `target/plasma-results/<name>.json`.
pub fn write_json(name: &str, value: &serde_json::Value) {
    let path = results_dir().join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(text) => {
            if let Err(e) = fs::write(&path, text) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("[results written to {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

/// Mean of a slice (0 when empty).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_handles_empty_and_values() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
    }

    #[test]
    fn results_dir_exists_after_call() {
        let dir = results_dir();
        assert!(dir.ends_with("plasma-results"));
        assert!(dir.exists());
    }
}
