//! `plasma-eval`: CLI over the deterministic paper-evaluation harness.
//!
//! ```text
//! plasma-eval run all [--scale smoke|full] [--seed N] [--out DIR] [--backend sim|live]
//! plasma-eval run <scenario>... [--scale smoke|full] [--seed N] [--out DIR] [--backend sim|live]
//! plasma-eval parity all|<scenario>... [--scale smoke|full] [--seed N]
//! plasma-eval compare <baseline-dir-or-file> [current-dir-or-file] [--threshold F]
//! plasma-eval list
//! ```
//!
//! Exit codes: 0 success / comparison passed, 1 comparison or parity
//! failed (regression, missing scenario, identity mismatch, or backend
//! divergence), 2 usage or I/O error.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::str::FromStr;

use plasma_actor::BackendKind;
use plasma_apps::common::EvalScale;
use plasma_bench::eval::{
    compare, render_summary, run_scenario_on, CompareOptions, ScenarioResult, SCENARIOS,
};

const USAGE: &str = "\
plasma-eval: deterministic PLASMA paper-evaluation harness

USAGE:
  plasma-eval run all|<scenario>... [--scale smoke|full] [--seed N] [--out DIR] [--backend sim|live]
  plasma-eval parity all|<scenario>... [--scale smoke|full] [--seed N]
  plasma-eval compare <baseline> [current] [--threshold F]
  plasma-eval list

`run` writes one BENCH_<scenario>.json per scenario (default: repo root)
and prints a human summary; `--backend live` carries the run on OS threads
instead of the simulated event loop (results must not change). `parity`
runs each scenario under both backends and exits 1 unless the serialized
results are byte-identical (the `eval-engine` scenario has no runtime and
is skipped). `compare` diffs two result sets — each side a directory
holding BENCH_*.json files or a single file — and exits 1 when a gated
metric regresses past the threshold (default 0.10); with `current` omitted
it compares against the repo root. `list` prints the registry.";

fn fail(msg: &str) -> ExitCode {
    eprintln!("plasma-eval: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

/// The workspace root, used as the default output / current-results dir.
fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}

/// Loads results from a `BENCH_*.json` file or a directory of them.
fn load_results(path: &Path) -> Result<Vec<ScenarioResult>, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    if path.is_dir() {
        let entries =
            fs::read_dir(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        for entry in entries.flatten() {
            let p = entry.path();
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.starts_with("BENCH_") && name.ends_with(".json") {
                files.push(p);
            }
        }
        files.sort();
        if files.is_empty() {
            return Err(format!("no BENCH_*.json files in {}", path.display()));
        }
    } else if path.is_file() {
        files.push(path.to_path_buf());
    } else {
        return Err(format!("{} does not exist", path.display()));
    }
    let mut results = Vec::new();
    for f in files {
        let text =
            fs::read_to_string(&f).map_err(|e| format!("cannot read {}: {e}", f.display()))?;
        let r = ScenarioResult::from_str(&text).map_err(|e| format!("{}: {e}", f.display()))?;
        results.push(r);
    }
    Ok(results)
}

/// Expands `all`, validates every name, and returns the vetted list.
fn resolve_names(mut names: Vec<String>) -> Result<Vec<String>, String> {
    if names.iter().any(|n| n == "all") {
        names = SCENARIOS.iter().map(|s| s.name.to_string()).collect();
    }
    for name in &names {
        if plasma_bench::eval::spec(name).is_none() {
            return Err(format!(
                "unknown scenario `{name}` (try `plasma-eval list`)"
            ));
        }
    }
    Ok(names)
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut names: Vec<String> = Vec::new();
    let mut scale = EvalScale::Full;
    let mut seed: Option<u64> = None;
    let mut backend = BackendKind::Sim;
    let mut out_dir = repo_root();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => match it.next().map(|s| EvalScale::parse(s)) {
                Some(Some(s)) => scale = s,
                _ => return fail("--scale expects `smoke` or `full`"),
            },
            "--seed" => match it.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(s) => seed = Some(s),
                None => return fail("--seed expects an integer"),
            },
            "--backend" => match it.next().map(|s| BackendKind::parse(s)) {
                Some(Some(b)) => backend = b,
                _ => return fail("--backend expects `sim` or `live`"),
            },
            "--out" => match it.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => return fail("--out expects a directory"),
            },
            other if other.starts_with("--") => {
                return fail(&format!("unknown flag `{other}`"));
            }
            name => names.push(name.to_string()),
        }
    }
    if names.is_empty() {
        return fail("`run` expects `all` or one or more scenario names");
    }
    let names = match resolve_names(names) {
        Ok(n) => n,
        Err(e) => return fail(&e),
    };
    if let Err(e) = fs::create_dir_all(&out_dir) {
        return fail(&format!("cannot create {}: {e}", out_dir.display()));
    }
    for name in &names {
        eprintln!(
            "[plasma-eval] running {name} (scale={}, backend={})...",
            scale.name(),
            backend.name()
        );
        let result = run_scenario_on(name, scale, seed, backend).expect("scenario name vetted");
        let path = out_dir.join(result.file_name());
        if let Err(e) = fs::write(&path, result.to_pretty_string()) {
            eprintln!("plasma-eval: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        print!("{}", render_summary(&result));
        println!("  -> {}", path.display());
    }
    ExitCode::SUCCESS
}

fn cmd_parity(args: &[String]) -> ExitCode {
    let mut names: Vec<String> = Vec::new();
    let mut scale = EvalScale::Smoke;
    let mut seed: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => match it.next().map(|s| EvalScale::parse(s)) {
                Some(Some(s)) => scale = s,
                _ => return fail("--scale expects `smoke` or `full`"),
            },
            "--seed" => match it.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(s) => seed = Some(s),
                None => return fail("--seed expects an integer"),
            },
            other if other.starts_with("--") => {
                return fail(&format!("unknown flag `{other}`"));
            }
            name => names.push(name.to_string()),
        }
    }
    if names.is_empty() {
        return fail("`parity` expects `all` or one or more scenario names");
    }
    let names = match resolve_names(names) {
        Ok(n) => n,
        Err(e) => return fail(&e),
    };
    let mut divergences = 0usize;
    for name in &names {
        if name == "eval-engine" {
            // No runtime, no carrier: nothing to compare.
            println!("  - {name:<16} skipped (no runtime)");
            continue;
        }
        eprintln!("[plasma-eval] parity {name} (scale={})...", scale.name());
        let mut sim = run_scenario_on(name, scale, seed, BackendKind::Sim).expect("name vetted");
        let mut live = run_scenario_on(name, scale, seed, BackendKind::Live).expect("name vetted");
        // Backend-clock nanosecond counters (`*_ns`) are identically 0
        // under sim and host-dependent under live; zero them on both sides
        // so the byte comparison only sees deterministic metrics.
        for r in [&mut sim, &mut live] {
            for (metric, v) in &mut r.metrics {
                if metric.ends_with("_ns") {
                    v.value = 0.0;
                }
            }
        }
        let sim_text = sim.to_pretty_string();
        let live_text = live.to_pretty_string();
        let digest = sim
            .metric("decision_digest")
            .map(|m| m.value as u64)
            .unwrap_or(0);
        if sim_text == live_text {
            println!(
                "  = {name:<16} parity ok ({} decisions, digest {digest:08x})",
                sim.metric("decisions_total")
                    .map(|m| m.value)
                    .unwrap_or(0.0)
            );
        } else {
            divergences += 1;
            println!("  ! {name:<16} DIVERGED");
            for (metric, s) in &sim.metrics {
                let l = live.metric(metric).map(|m| m.value);
                if l != Some(s.value) {
                    println!(
                        "      {metric}: sim {} vs live {}",
                        s.value,
                        l.map(|v| v.to_string()).unwrap_or_else(|| "-".into())
                    );
                }
            }
        }
    }
    if divergences == 0 {
        println!("parity: all scenarios agree across backends");
        ExitCode::SUCCESS
    } else {
        println!("parity: {divergences} scenario(s) diverged");
        ExitCode::from(1)
    }
}

fn cmd_compare(args: &[String]) -> ExitCode {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut opts = CompareOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => match it.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(t) if t >= 0.0 => opts.threshold = t,
                _ => return fail("--threshold expects a non-negative number"),
            },
            other if other.starts_with("--") => {
                return fail(&format!("unknown flag `{other}`"));
            }
            p => paths.push(PathBuf::from(p)),
        }
    }
    let (baseline_path, current_path) = match paths.len() {
        1 => (paths[0].clone(), repo_root()),
        2 => (paths[0].clone(), paths[1].clone()),
        _ => return fail("`compare` expects <baseline> [current]"),
    };
    let baseline = match load_results(&baseline_path) {
        Ok(r) => r,
        Err(e) => return fail(&format!("baseline: {e}")),
    };
    let current = match load_results(&current_path) {
        Ok(r) => r,
        Err(e) => return fail(&format!("current: {e}")),
    };
    let report = compare(&baseline, &current, opts);
    print!("{}", report.render(opts.threshold));
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn cmd_list() -> ExitCode {
    println!("scenarios (run order):");
    for s in SCENARIOS {
        println!("  {:<10} §{:<4} {}", s.name, s.paper_section, s.summary);
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("parity") => cmd_parity(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("list") => cmd_list(),
        Some("--help" | "-h" | "help") => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => fail(&format!("unknown subcommand `{other}`")),
        None => fail("missing subcommand"),
    }
}
