//! `plasma-eval`: CLI over the deterministic paper-evaluation harness.
//!
//! ```text
//! plasma-eval run all [--scale smoke|full] [--seed N] [--out DIR] [--backend sim|live|net]
//! plasma-eval run <scenario>... [--scale smoke|full] [--seed N] [--out DIR] [--backend sim|live|net]
//! plasma-eval parity all|<scenario>... [--scale smoke|full] [--seed N] [--backends sim,live,net]
//! plasma-eval compare <baseline-dir-or-file> [current-dir-or-file] [--threshold F]
//! plasma-eval verify <file.epl>... [--schema FILE] [--json] [--allow-uncompilable]
//! plasma-eval list
//! ```
//!
//! Exit codes: 0 success / comparison passed, 1 comparison or parity
//! failed (regression, missing scenario, identity mismatch, backend
//! divergence, or a gating verifier finding), 2 usage or I/O error.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::str::FromStr;

use plasma_actor::BackendKind;
use plasma_apps::common::EvalScale;
use plasma_bench::eval::{
    compare, render_summary, run_scenario_on, CompareOptions, ScenarioResult, SCENARIOS,
};
use plasma_epl::verify::{verify, Verdict, VerifyConfig};

const USAGE: &str = "\
plasma-eval: deterministic PLASMA paper-evaluation harness

USAGE:
  plasma-eval run all|<scenario>... [--scale smoke|full] [--seed N] [--out DIR] [--backend sim|live|net]
  plasma-eval parity all|<scenario>... [--scale smoke|full] [--seed N] [--backends sim,live,net]
  plasma-eval compare <baseline> [current] [--threshold F]
  plasma-eval verify <file.epl>... [--schema FILE] [--min-servers N] [--max-servers N]
                    [--quanta N] [--thrash-window K] [--allow-uncompilable] [--json]
  plasma-eval list

`run` writes one BENCH_<scenario>.json per scenario (default: repo root)
and prints a human summary; `--backend live` carries the run on OS threads
instead of the simulated event loop, `--backend net` on plasma-server
worker processes over localhost TCP (results must not change either way).
`parity` runs each scenario under every backend listed in `--backends`
(default sim,live,net — the first is the reference) and exits 1 unless the
normalized serialized results are byte-identical (the `eval-engine`
scenario has no runtime and is skipped). `compare` diffs two result sets — each side a directory
holding BENCH_*.json files or a single file — and exits 1 when a gated
metric regresses past the threshold (default 0.10); with `current` omitted
it compares against the repo root. `verify` model-checks each policy
against an abstract cluster (oscillation, migration thrash, same-round
conflicts, vacuous rules) and exits 1 when any gating finding appears,
printing a round-by-round counterexample; without `--schema` the actor
schema is inferred from the policy text, and `--allow-uncompilable` skips
files that do not parse or bind instead of failing. `list` prints the
registry.";

fn fail(msg: &str) -> ExitCode {
    eprintln!("plasma-eval: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

/// The workspace root, used as the default output / current-results dir.
fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}

/// Loads results from a `BENCH_*.json` file or a directory of them.
fn load_results(path: &Path) -> Result<Vec<ScenarioResult>, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    if path.is_dir() {
        let entries =
            fs::read_dir(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        for entry in entries.flatten() {
            let p = entry.path();
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.starts_with("BENCH_") && name.ends_with(".json") {
                files.push(p);
            }
        }
        files.sort();
        if files.is_empty() {
            return Err(format!("no BENCH_*.json files in {}", path.display()));
        }
    } else if path.is_file() {
        files.push(path.to_path_buf());
    } else {
        return Err(format!("{} does not exist", path.display()));
    }
    let mut results = Vec::new();
    for f in files {
        let text =
            fs::read_to_string(&f).map_err(|e| format!("cannot read {}: {e}", f.display()))?;
        let r = ScenarioResult::from_str(&text).map_err(|e| format!("{}: {e}", f.display()))?;
        results.push(r);
    }
    Ok(results)
}

/// Expands `all`, validates every name, and returns the vetted list.
fn resolve_names(mut names: Vec<String>) -> Result<Vec<String>, String> {
    if names.iter().any(|n| n == "all") {
        names = SCENARIOS.iter().map(|s| s.name.to_string()).collect();
    }
    for name in &names {
        if plasma_bench::eval::spec(name).is_none() {
            return Err(format!(
                "unknown scenario `{name}` (try `plasma-eval list`)"
            ));
        }
    }
    Ok(names)
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut names: Vec<String> = Vec::new();
    let mut scale = EvalScale::Full;
    let mut seed: Option<u64> = None;
    let mut backend = BackendKind::Sim;
    let mut out_dir = repo_root();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => match it.next().map(|s| EvalScale::parse(s)) {
                Some(Some(s)) => scale = s,
                _ => return fail("--scale expects `smoke` or `full`"),
            },
            "--seed" => match it.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(s) => seed = Some(s),
                None => return fail("--seed expects an integer"),
            },
            "--backend" => match it.next().map(|s| BackendKind::parse(s)) {
                Some(Some(b)) => backend = b,
                _ => return fail("--backend expects `sim`, `live`, or `net`"),
            },
            "--out" => match it.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => return fail("--out expects a directory"),
            },
            other if other.starts_with("--") => {
                return fail(&format!("unknown flag `{other}`"));
            }
            name => names.push(name.to_string()),
        }
    }
    if names.is_empty() {
        return fail("`run` expects `all` or one or more scenario names");
    }
    let names = match resolve_names(names) {
        Ok(n) => n,
        Err(e) => return fail(&e),
    };
    if let Err(e) = fs::create_dir_all(&out_dir) {
        return fail(&format!("cannot create {}: {e}", out_dir.display()));
    }
    for name in &names {
        eprintln!(
            "[plasma-eval] running {name} (scale={}, backend={})...",
            scale.name(),
            backend.name()
        );
        let result = run_scenario_on(name, scale, seed, backend).expect("scenario name vetted");
        let path = out_dir.join(result.file_name());
        if let Err(e) = fs::write(&path, result.to_pretty_string()) {
            eprintln!("plasma-eval: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        print!("{}", render_summary(&result));
        println!("  -> {}", path.display());
    }
    ExitCode::SUCCESS
}

/// Zeroes carrier-dependent metrics so the byte comparison only sees
/// deterministic values: `*_ns` backend-clock counters are identically 0
/// under sim and host-dependent under live, `backend_*` transport
/// counters describe the carrier itself (frames, wire bytes, injected
/// delay), and `control_*` counters depend on how the carrier partitions
/// the control plane (reply counts per query, wire footprint) — all of
/// which legitimately differ per medium.
fn normalize_for_parity(r: &mut ScenarioResult) {
    for (metric, v) in &mut r.metrics {
        if metric.ends_with("_ns")
            || metric.starts_with("backend_")
            || metric.starts_with("control_")
        {
            v.value = 0.0;
        }
    }
}

fn cmd_parity(args: &[String]) -> ExitCode {
    let mut names: Vec<String> = Vec::new();
    let mut scale = EvalScale::Smoke;
    let mut seed: Option<u64> = None;
    let mut backends = vec![BackendKind::Sim, BackendKind::Live, BackendKind::Net];
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => match it.next().map(|s| EvalScale::parse(s)) {
                Some(Some(s)) => scale = s,
                _ => return fail("--scale expects `smoke` or `full`"),
            },
            "--seed" => match it.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(s) => seed = Some(s),
                None => return fail("--seed expects an integer"),
            },
            "--backends" => {
                match it.next() {
                    Some(list) => {
                        let parsed: Option<Vec<BackendKind>> =
                            list.split(',').map(BackendKind::parse).collect();
                        match parsed {
                            Some(b) if b.len() >= 2 => backends = b,
                            _ => return fail(
                                "--backends expects two or more of sim,live,net (comma-separated)",
                            ),
                        }
                    }
                    None => return fail("--backends expects a comma-separated list"),
                }
            }
            other if other.starts_with("--") => {
                return fail(&format!("unknown flag `{other}`"));
            }
            name => names.push(name.to_string()),
        }
    }
    if names.is_empty() {
        return fail("`parity` expects `all` or one or more scenario names");
    }
    let names = match resolve_names(names) {
        Ok(n) => n,
        Err(e) => return fail(&e),
    };
    let mut divergences = 0usize;
    // First backend listed is the reference the others are diffed against.
    let reference = backends[0];
    for name in &names {
        if name == "eval-engine" {
            // No runtime, no carrier: nothing to compare.
            println!("  - {name:<16} skipped (no runtime)");
            continue;
        }
        let backend_names: Vec<&str> = backends.iter().map(|b| b.name()).collect();
        eprintln!(
            "[plasma-eval] parity {name} (scale={}, backends={})...",
            scale.name(),
            backend_names.join(",")
        );
        let mut results = Vec::with_capacity(backends.len());
        for &b in &backends {
            let mut r = run_scenario_on(name, scale, seed, b).expect("name vetted");
            normalize_for_parity(&mut r);
            results.push(r);
        }
        let ref_text = results[0].to_pretty_string();
        let digest = results[0]
            .metric("decision_digest")
            .map(|m| m.value as u64)
            .unwrap_or(0);
        let mut diverged = false;
        for (i, r) in results.iter().enumerate().skip(1) {
            if r.to_pretty_string() != ref_text {
                diverged = true;
                println!(
                    "  ! {name:<16} DIVERGED ({} vs {})",
                    reference.name(),
                    backends[i].name()
                );
                for (metric, s) in &results[0].metrics {
                    let other = r.metric(metric).map(|m| m.value);
                    if other != Some(s.value) {
                        println!(
                            "      {metric}: {} {} vs {} {}",
                            reference.name(),
                            s.value,
                            backends[i].name(),
                            other.map(|v| v.to_string()).unwrap_or_else(|| "-".into())
                        );
                    }
                }
            }
        }
        if diverged {
            divergences += 1;
        } else {
            println!(
                "  = {name:<16} parity ok across {} ({} decisions, digest {digest:08x})",
                backend_names.join("/"),
                results[0]
                    .metric("decisions_total")
                    .map(|m| m.value)
                    .unwrap_or(0.0)
            );
        }
    }
    if divergences == 0 {
        println!("parity: all scenarios agree across backends");
        ExitCode::SUCCESS
    } else {
        println!("parity: {divergences} scenario(s) diverged");
        ExitCode::from(1)
    }
}

fn cmd_compare(args: &[String]) -> ExitCode {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut opts = CompareOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => match it.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(t) if t >= 0.0 => opts.threshold = t,
                _ => return fail("--threshold expects a non-negative number"),
            },
            other if other.starts_with("--") => {
                return fail(&format!("unknown flag `{other}`"));
            }
            p => paths.push(PathBuf::from(p)),
        }
    }
    let (baseline_path, current_path) = match paths.len() {
        1 => (paths[0].clone(), repo_root()),
        2 => (paths[0].clone(), paths[1].clone()),
        _ => return fail("`compare` expects <baseline> [current]"),
    };
    let baseline = match load_results(&baseline_path) {
        Ok(r) => r,
        Err(e) => return fail(&format!("baseline: {e}")),
    };
    let current = match load_results(&current_path) {
        Ok(r) => r,
        Err(e) => return fail(&format!("current: {e}")),
    };
    let report = compare(&baseline, &current, opts);
    print!("{}", report.render(opts.threshold));
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Infers an actor schema from the policy text itself: every named type
/// the rules mention is declared, `in ref(owner.prop)` declares `prop` on
/// the owner's type, and `caller.call(callee.fname)` declares `fname` on
/// the callee's type. Good enough to compile standalone policies that ship
/// without their application (`--schema` overrides it).
fn infer_schema(policy: &plasma_epl::ast::Policy) -> plasma_epl::ActorSchema {
    use plasma_epl::ast::{AType, ActorRef, Caller, Cond, Feature};

    let mut schema = plasma_epl::ActorSchema::new();
    for rule in &policy.rules {
        // Variable declarations (`Session(s)`) can appear anywhere in the
        // rule; collect them first so `s.players` resolves.
        let mut vars: Vec<(&str, &AType)> = Vec::new();
        let mut refs: Vec<&ActorRef> = Vec::new();
        collect_cond_refs(&rule.cond, &mut refs);
        for b in &rule.behaviors {
            collect_behavior_refs(b, &mut refs);
        }
        for r in &refs {
            if let ActorRef::Decl(t, name) = r {
                vars.push((name.as_str(), t));
            }
        }
        let type_of = |r: &ActorRef| -> Option<AType> {
            match r {
                ActorRef::Decl(t, _) | ActorRef::Type(t) => Some(t.clone()),
                ActorRef::Var(v) => vars
                    .iter()
                    .find(|(name, _)| name == v)
                    .map(|(_, t)| (*t).clone()),
            }
        };
        let mut declare = |t: Option<AType>| {
            if let Some(AType::Named(name)) = t {
                schema.actor_type(&name);
            }
        };
        for r in &refs {
            declare(type_of(r));
        }
        for b in &rule.behaviors {
            if let plasma_epl::ast::Behavior::Balance { types, .. } = b {
                for t in types {
                    declare(Some(t.clone()));
                }
            }
        }
        // Second pass: members (props and funcs) hang off resolved types.
        visit_conds(&rule.cond, &mut |c: &Cond| match c {
            Cond::InRef { owner, prop, .. } => {
                if let Some(AType::Named(name)) = type_of(owner) {
                    schema.actor_type(&name).prop(prop);
                }
            }
            Cond::Compare {
                feat:
                    Feature::Call {
                        caller,
                        callee,
                        fname,
                    },
                ..
            } => {
                if let Some(AType::Named(name)) = type_of(callee) {
                    schema.actor_type(&name).func(fname);
                }
                if let Caller::Actor(a) = caller {
                    if let Some(AType::Named(name)) = type_of(a) {
                        schema.actor_type(&name);
                    }
                }
            }
            _ => {}
        });
    }
    schema
}

fn visit_conds(cond: &plasma_epl::ast::Cond, f: &mut impl FnMut(&plasma_epl::ast::Cond)) {
    use plasma_epl::ast::Cond;
    f(cond);
    if let Cond::And(a, b) | Cond::Or(a, b) = cond {
        visit_conds(a, f);
        visit_conds(b, f);
    }
}

fn collect_cond_refs<'a>(
    cond: &'a plasma_epl::ast::Cond,
    out: &mut Vec<&'a plasma_epl::ast::ActorRef>,
) {
    use plasma_epl::ast::{Caller, Cond, Feature};
    match cond {
        Cond::True => {}
        Cond::And(a, b) | Cond::Or(a, b) => {
            collect_cond_refs(a, out);
            collect_cond_refs(b, out);
        }
        Cond::Compare { feat, .. } => match feat {
            Feature::ServerRes(_) => {}
            Feature::ActorRes(r, _) => out.push(r),
            Feature::Call { caller, callee, .. } => {
                out.push(callee);
                if let Caller::Actor(a) = caller {
                    out.push(a);
                }
            }
        },
        Cond::InRef { member, owner, .. } => {
            out.push(member);
            out.push(owner);
        }
    }
}

fn collect_behavior_refs<'a>(
    b: &'a plasma_epl::ast::Behavior,
    out: &mut Vec<&'a plasma_epl::ast::ActorRef>,
) {
    use plasma_epl::ast::Behavior;
    match b {
        Behavior::Balance { .. } => {}
        Behavior::Reserve { actor, .. } | Behavior::Pin(actor) => out.push(actor),
        Behavior::Colocate(a, b) | Behavior::Separate(a, b) => {
            out.push(a);
            out.push(b);
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn cmd_verify(args: &[String]) -> ExitCode {
    let mut files: Vec<PathBuf> = Vec::new();
    let mut schema_path: Option<PathBuf> = None;
    let mut config = VerifyConfig::default();
    let mut allow_uncompilable = false;
    let mut json = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--schema" => match it.next() {
                Some(p) => schema_path = Some(PathBuf::from(p)),
                None => return fail("--schema expects a file"),
            },
            "--min-servers" => match it.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => config.min_servers = n,
                _ => return fail("--min-servers expects a positive integer"),
            },
            "--max-servers" => match it.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => config.max_servers = n,
                _ => return fail("--max-servers expects a positive integer"),
            },
            "--quanta" => match it.next().and_then(|s| s.parse::<u32>().ok()) {
                Some(n) if n >= 2 => config.quanta = n,
                _ => return fail("--quanta expects an integer ≥ 2"),
            },
            "--thrash-window" => match it.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => config.thrash_window = n,
                _ => return fail("--thrash-window expects a positive integer"),
            },
            "--allow-uncompilable" => allow_uncompilable = true,
            "--json" => json = true,
            other if other.starts_with("--") => {
                return fail(&format!("unknown flag `{other}`"));
            }
            p => files.push(PathBuf::from(p)),
        }
    }
    if files.is_empty() {
        return fail("`verify` expects one or more .epl files");
    }
    if config.min_servers > config.max_servers {
        return fail("--min-servers must not exceed --max-servers");
    }
    let schema_override = match &schema_path {
        None => None,
        Some(p) => match fs::read_to_string(p) {
            Err(e) => return fail(&format!("cannot read {}: {e}", p.display())),
            Ok(text) => match plasma_epl::schema_text::parse_schema(&text) {
                Ok(s) => Some(s),
                Err(e) => return fail(&format!("{}: {e}", p.display())),
            },
        },
    };

    let mut gating = 0usize;
    let mut json_entries: Vec<String> = Vec::new();
    for file in &files {
        let display = file.display();
        let src = match fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => return fail(&format!("cannot read {display}: {e}")),
        };
        let parsed = plasma_epl::parser::parse_policy(&src);
        let compiled = parsed
            .map_err(plasma_epl::CompileError::Parse)
            .and_then(|ast| {
                let schema = schema_override
                    .clone()
                    .unwrap_or_else(|| infer_schema(&ast));
                plasma_epl::compile(&src, &schema)
            });
        let policy = match compiled {
            Ok(p) => p,
            Err(e) => {
                if allow_uncompilable {
                    if json {
                        json_entries.push(format!(
                            "  {{\"file\": \"{}\", \"compiles\": false, \"error\": \"{}\"}}",
                            json_escape(&display.to_string()),
                            json_escape(&e.to_string())
                        ));
                    } else {
                        println!("{display}: skipped (does not compile: {e})");
                    }
                    continue;
                }
                return fail(&format!("{display}: {e}"));
            }
        };
        let verdict = verify(&policy, &config);
        if verdict.gating() {
            gating += 1;
        }
        if json {
            json_entries.push(render_verdict_json(&display.to_string(), &verdict));
        } else {
            if verdict.gating() {
                println!("{display}: FAIL");
            } else if verdict.findings.is_empty() {
                println!("{display}: ok ({} states)", verdict.states_explored);
            } else {
                println!(
                    "{display}: ok with notes ({} states)",
                    verdict.states_explored
                );
            }
            for finding in &verdict.findings {
                for line in finding.to_string().lines() {
                    println!("  {line}");
                }
            }
            for note in &verdict.notes {
                println!("  note: {note}");
            }
        }
    }
    if json {
        println!("[");
        println!("{}", json_entries.join(",\n"));
        println!("]");
    } else if gating > 0 {
        println!(
            "verify: {gating} of {} file(s) have gating findings",
            files.len()
        );
    } else {
        println!("verify: all {} file(s) pass", files.len());
    }
    if gating > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn render_verdict_json(file: &str, verdict: &Verdict) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(
        out,
        "  {{\"file\": \"{}\", \"compiles\": true, \"gating\": {}, \
         \"states_explored\": {}, \"findings\": [",
        json_escape(file),
        verdict.gating(),
        verdict.states_explored
    );
    for (i, f) in verdict.findings.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let severity = match f.severity {
            plasma_epl::error::Severity::Warning => "warning",
            plasma_epl::error::Severity::Note => "note",
        };
        let rules: Vec<String> = f.rules.iter().map(|r| r.to_string()).collect();
        let _ = write!(
            out,
            "{{\"property\": \"{}\", \"severity\": \"{severity}\", \"gating\": {}, \
             \"rules\": [{}], \"message\": \"{}\", \"trace\": [",
            f.property.name(),
            f.gating(),
            rules.join(", "),
            json_escape(&f.message)
        );
        for (j, step) in f.trace.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"round\": {}, \"event\": \"{}\", \"detail\": \"{}\"}}",
                step.round,
                json_escape(&step.event),
                json_escape(&step.detail)
            );
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

fn cmd_list() -> ExitCode {
    println!("scenarios (run order):");
    for s in SCENARIOS {
        println!("  {:<10} §{:<4} {}", s.name, s.paper_section, s.summary);
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("parity") => cmd_parity(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("list") => cmd_list(),
        Some("--help" | "-h" | "help") => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => fail(&format!("unknown subcommand `{other}`")),
        None => fail("missing subcommand"),
    }
}
