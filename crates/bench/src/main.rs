//! `plasma-eval`: CLI over the deterministic paper-evaluation harness.
//!
//! ```text
//! plasma-eval run all [--scale smoke|full] [--seed N] [--out DIR]
//! plasma-eval run <scenario>... [--scale smoke|full] [--seed N] [--out DIR]
//! plasma-eval compare <baseline-dir-or-file> [current-dir-or-file] [--threshold F]
//! plasma-eval list
//! ```
//!
//! Exit codes: 0 success / comparison passed, 1 comparison failed
//! (regression, missing scenario, or identity mismatch), 2 usage or I/O
//! error.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::str::FromStr;

use plasma_apps::common::EvalScale;
use plasma_bench::eval::{
    compare, render_summary, run_scenario, CompareOptions, ScenarioResult, SCENARIOS,
};

const USAGE: &str = "\
plasma-eval: deterministic PLASMA paper-evaluation harness

USAGE:
  plasma-eval run all|<scenario>... [--scale smoke|full] [--seed N] [--out DIR]
  plasma-eval compare <baseline> [current] [--threshold F]
  plasma-eval list

`run` writes one BENCH_<scenario>.json per scenario (default: repo root)
and prints a human summary. `compare` diffs two result sets — each side a
directory holding BENCH_*.json files or a single file — and exits 1 when a
gated metric regresses past the threshold (default 0.10); with `current`
omitted it compares against the repo root. `list` prints the registry.";

fn fail(msg: &str) -> ExitCode {
    eprintln!("plasma-eval: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

/// The workspace root, used as the default output / current-results dir.
fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}

/// Loads results from a `BENCH_*.json` file or a directory of them.
fn load_results(path: &Path) -> Result<Vec<ScenarioResult>, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    if path.is_dir() {
        let entries =
            fs::read_dir(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        for entry in entries.flatten() {
            let p = entry.path();
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.starts_with("BENCH_") && name.ends_with(".json") {
                files.push(p);
            }
        }
        files.sort();
        if files.is_empty() {
            return Err(format!("no BENCH_*.json files in {}", path.display()));
        }
    } else if path.is_file() {
        files.push(path.to_path_buf());
    } else {
        return Err(format!("{} does not exist", path.display()));
    }
    let mut results = Vec::new();
    for f in files {
        let text =
            fs::read_to_string(&f).map_err(|e| format!("cannot read {}: {e}", f.display()))?;
        let r = ScenarioResult::from_str(&text).map_err(|e| format!("{}: {e}", f.display()))?;
        results.push(r);
    }
    Ok(results)
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut names: Vec<String> = Vec::new();
    let mut scale = EvalScale::Full;
    let mut seed: Option<u64> = None;
    let mut out_dir = repo_root();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => match it.next().map(|s| EvalScale::parse(s)) {
                Some(Some(s)) => scale = s,
                _ => return fail("--scale expects `smoke` or `full`"),
            },
            "--seed" => match it.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(s) => seed = Some(s),
                None => return fail("--seed expects an integer"),
            },
            "--out" => match it.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => return fail("--out expects a directory"),
            },
            other if other.starts_with("--") => {
                return fail(&format!("unknown flag `{other}`"));
            }
            name => names.push(name.to_string()),
        }
    }
    if names.is_empty() {
        return fail("`run` expects `all` or one or more scenario names");
    }
    if names.iter().any(|n| n == "all") {
        names = SCENARIOS.iter().map(|s| s.name.to_string()).collect();
    }
    for name in &names {
        if plasma_bench::eval::spec(name).is_none() {
            return fail(&format!(
                "unknown scenario `{name}` (try `plasma-eval list`)"
            ));
        }
    }
    if let Err(e) = fs::create_dir_all(&out_dir) {
        return fail(&format!("cannot create {}: {e}", out_dir.display()));
    }
    for name in &names {
        eprintln!("[plasma-eval] running {name} (scale={})...", scale.name());
        let result = run_scenario(name, scale, seed).expect("scenario name vetted above");
        let path = out_dir.join(result.file_name());
        if let Err(e) = fs::write(&path, result.to_pretty_string()) {
            eprintln!("plasma-eval: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        print!("{}", render_summary(&result));
        println!("  -> {}", path.display());
    }
    ExitCode::SUCCESS
}

fn cmd_compare(args: &[String]) -> ExitCode {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut opts = CompareOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => match it.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(t) if t >= 0.0 => opts.threshold = t,
                _ => return fail("--threshold expects a non-negative number"),
            },
            other if other.starts_with("--") => {
                return fail(&format!("unknown flag `{other}`"));
            }
            p => paths.push(PathBuf::from(p)),
        }
    }
    let (baseline_path, current_path) = match paths.len() {
        1 => (paths[0].clone(), repo_root()),
        2 => (paths[0].clone(), paths[1].clone()),
        _ => return fail("`compare` expects <baseline> [current]"),
    };
    let baseline = match load_results(&baseline_path) {
        Ok(r) => r,
        Err(e) => return fail(&format!("baseline: {e}")),
    };
    let current = match load_results(&current_path) {
        Ok(r) => r,
        Err(e) => return fail(&format!("current: {e}")),
    };
    let report = compare(&baseline, &current, opts);
    print!("{}", report.render(opts.threshold));
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn cmd_list() -> ExitCode {
    println!("scenarios (run order):");
    for s in SCENARIOS {
        println!("  {:<10} §{:<4} {}", s.name, s.paper_section, s.summary);
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("list") => cmd_list(),
        Some("--help" | "-h" | "help") => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => fail(&format!("unknown subcommand `{other}`")),
        None => fail("missing subcommand"),
    }
}
