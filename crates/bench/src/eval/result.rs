//! The machine-readable result model behind `BENCH_<scenario>.json`.
//!
//! A [`ScenarioResult`] is an ordered list of named metrics plus the run
//! identity (scenario, paper section, scale, seed). Serialization preserves
//! metric insertion order and rounds values to microscale precision, so two
//! same-seed runs of the deterministic simulator produce byte-identical
//! files — the property CI's regression gate and the determinism tests rely
//! on.

use serde_json::Value;

/// Version stamp written into every result file; bump when the metric
/// schema changes incompatibly.
pub const SCHEMA_VERSION: u64 = 1;

/// Whether smaller or larger values of a metric are better, or whether the
/// metric is purely informational (never gated on).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Lower is better (latencies, makespans, rebalance times).
    Lower,
    /// Higher is better (throughput, balance scores).
    Higher,
    /// Diagnostic only; the comparator reports but never fails on it.
    Info,
}

impl Direction {
    /// The canonical serialized name.
    pub fn as_str(self) -> &'static str {
        match self {
            Direction::Lower => "lower",
            Direction::Higher => "higher",
            Direction::Info => "info",
        }
    }

    /// Parses a serialized direction name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "lower" => Some(Direction::Lower),
            "higher" => Some(Direction::Higher),
            "info" => Some(Direction::Info),
            _ => None,
        }
    }
}

/// One measured metric: a value plus its regression direction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MetricValue {
    /// The measured value, rounded to 1e-6 at insertion.
    pub value: f64,
    /// Regression direction.
    pub direction: Direction,
}

/// The results of one scenario run.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioResult {
    /// Scenario name (`chatroom`, `pagerank`, ...).
    pub scenario: String,
    /// The paper section the scenario reproduces (e.g. `"5.5"`).
    pub paper_section: String,
    /// Workload scale the run used (`smoke` / `full`).
    pub scale: String,
    /// RNG seed the run used.
    pub seed: u64,
    /// Named metrics in insertion order (serialization order).
    pub metrics: Vec<(String, MetricValue)>,
}

/// Rounds to 1e-6 and normalizes `-0.0`; non-finite values clamp to 0 so
/// the JSON never contains `null` numbers.
fn round6(v: f64) -> f64 {
    if !v.is_finite() {
        return 0.0;
    }
    let r = (v * 1e6).round() / 1e6;
    if r == 0.0 {
        0.0
    } else {
        r
    }
}

impl ScenarioResult {
    /// Creates an empty result for a scenario run.
    pub fn new(scenario: &str, paper_section: &str, scale: &str, seed: u64) -> Self {
        ScenarioResult {
            scenario: scenario.to_string(),
            paper_section: paper_section.to_string(),
            scale: scale.to_string(),
            seed,
            metrics: Vec::new(),
        }
    }

    /// Appends a metric (value rounded for byte-stable serialization).
    pub fn push(&mut self, name: &str, value: f64, direction: Direction) {
        self.metrics.push((
            name.to_string(),
            MetricValue {
                value: round6(value),
                direction,
            },
        ));
    }

    /// Returns the named metric, if present.
    pub fn metric(&self, name: &str) -> Option<MetricValue> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, m)| m)
    }

    /// The canonical output file name, `BENCH_<scenario>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.scenario)
    }

    /// Serializes to the canonical JSON tree (fixed key order).
    pub fn to_json(&self) -> Value {
        let mut metrics = serde_json::Map::new();
        for (name, m) in &self.metrics {
            metrics.insert(
                name.clone(),
                serde_json::json!({
                    "value": m.value,
                    "direction": m.direction.as_str(),
                }),
            );
        }
        serde_json::json!({
            "schema_version": SCHEMA_VERSION,
            "scenario": self.scenario.clone(),
            "paper_section": self.paper_section.clone(),
            "scale": self.scale.clone(),
            "seed": self.seed,
            "metrics": Value::Object(metrics),
        })
    }

    /// Serializes to the canonical on-disk representation (pretty JSON with
    /// a trailing newline).
    pub fn to_pretty_string(&self) -> String {
        let mut s = serde_json::to_string_pretty(&self.to_json()).expect("result serializes");
        s.push('\n');
        s
    }

    /// Parses a result from its JSON tree.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let field = |name: &str| v.get(name).ok_or_else(|| format!("missing field `{name}`"));
        let version = field("schema_version")?
            .as_u64()
            .ok_or("schema_version must be an integer")?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {version} (expected {SCHEMA_VERSION})"
            ));
        }
        let as_string = |name: &str| -> Result<String, String> {
            Ok(field(name)?
                .as_str()
                .ok_or_else(|| format!("`{name}` must be a string"))?
                .to_string())
        };
        let mut result = ScenarioResult {
            scenario: as_string("scenario")?,
            paper_section: as_string("paper_section")?,
            scale: as_string("scale")?,
            seed: field("seed")?.as_u64().ok_or("`seed` must be an integer")?,
            metrics: Vec::new(),
        };
        let metrics = field("metrics")?
            .as_object()
            .ok_or("`metrics` must be an object")?;
        for (name, entry) in metrics.iter() {
            let value = entry
                .get("value")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("metric `{name}` has no numeric `value`"))?;
            let direction = entry
                .get("direction")
                .and_then(Value::as_str)
                .and_then(Direction::parse)
                .ok_or_else(|| format!("metric `{name}` has no valid `direction`"))?;
            result
                .metrics
                .push((name.clone(), MetricValue { value, direction }));
        }
        Ok(result)
    }
}

impl std::str::FromStr for ScenarioResult {
    type Err = String;

    /// Parses a result from JSON text.
    fn from_str(text: &str) -> Result<Self, String> {
        let v = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
        Self::from_json(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    fn sample() -> ScenarioResult {
        let mut r = ScenarioResult::new("estore", "5.5", "smoke", 17);
        r.push("tail_ms", 12.345678912, Direction::Lower);
        r.push("balance_score", 0.75, Direction::Higher);
        r.push("migrations_completed", 9.0, Direction::Info);
        r
    }

    #[test]
    fn round_trips_through_json() {
        let r = sample();
        let parsed = ScenarioResult::from_str(&r.to_pretty_string()).unwrap();
        // `push` already rounded, so the round trip is exact.
        assert_eq!(parsed, r);
    }

    #[test]
    fn serialization_is_byte_stable() {
        assert_eq!(sample().to_pretty_string(), sample().to_pretty_string());
    }

    #[test]
    fn values_round_to_microscale_and_reject_non_finite() {
        let mut r = ScenarioResult::new("x", "0", "smoke", 1);
        r.push("a", 1.000000049, Direction::Lower);
        r.push("b", f64::NAN, Direction::Lower);
        r.push("c", -0.0, Direction::Lower);
        assert_eq!(r.metric("a").unwrap().value, 1.0);
        assert_eq!(r.metric("b").unwrap().value, 0.0);
        assert!(r.metric("c").unwrap().value.to_bits() == 0.0f64.to_bits());
    }

    #[test]
    fn rejects_wrong_schema_version() {
        let text = sample()
            .to_pretty_string()
            .replace("\"schema_version\": 1", "\"schema_version\": 999");
        assert!(ScenarioResult::from_str(&text)
            .unwrap_err()
            .contains("schema_version"));
    }

    #[test]
    fn file_name_is_canonical() {
        assert_eq!(sample().file_name(), "BENCH_estore.json");
    }
}
