//! plasma-eval: the deterministic paper-evaluation harness.
//!
//! Drives the §5 application scenarios through the simulator under fixed
//! seeds ([`runner`]), folds each run into a byte-stable
//! `BENCH_<scenario>.json` result ([`result`]), and gates changes with a
//! directional regression comparator ([`mod@compare`]). The `plasma-eval`
//! binary in this crate is a thin CLI over these modules.

pub mod compare;
pub mod result;
pub mod runner;
pub mod synth;

pub use compare::{compare, CompareOptions, CompareReport, DiffKind, MetricDiff};
pub use result::{Direction, MetricValue, ScenarioResult, SCHEMA_VERSION};
pub use runner::{render_summary, run_scenario, run_scenario_on, spec, ScenarioSpec, SCENARIOS};
