//! Synthetic evaluation worlds for the indexed-evaluator benchmarks.
//!
//! Builds a large profiling snapshot directly through
//! `EvalFrame::from_parts` — no simulation — so the `eval_hotpath`
//! Criterion bench and the `eval-engine` scenario measure *only* the rule
//! evaluator. Everything derives from a fixed seed via splitmix64, so the
//! world (and therefore every env count) is identical across runs and
//! machines.

use std::collections::BTreeMap;

use plasma_actor::logic::{ActorCtx, ClientCtx};
use plasma_actor::message::Payload;
use plasma_actor::stats::{ActorCounters, ActorWindowStats, CallKey, CallStat, ProfileSnapshot};
use plasma_actor::{
    ActorId, ActorLogic, ActorTypeId, CallerKind, ClientLogic, FnId, Message, Runtime,
    RuntimeConfig,
};
use plasma_cluster::{InstanceType, ServerId};
use plasma_emr::view::ServerMeta;
use plasma_emr::{EmrConfig, PlasmaEmr};
use plasma_epl::{compile, ActorSchema};
use plasma_sim::{SimDuration, SimTime};

/// The actor types of the synthetic schema.
pub const TYPES: [&str; 3] = ["T0", "T1", "T2"];

/// The rule shapes the paper's applications actually use: a server-guarded
/// call join (metadata/estore), an actor CPU threshold (balance triggers),
/// a reference join (sessions), and an actor-to-actor call pair (media).
pub const RULES: [(&str, &str); 4] = [
    (
        "guarded_call_join",
        "server.cpu.perc > 80 and client.call(T0(a).f0).perc > 40 => reserve(a, cpu);",
    ),
    (
        "actor_cpu_threshold",
        "T0(a).cpu.perc > 95 => reserve(a, cpu);",
    ),
    (
        "ref_membership_join",
        "T1(b) in ref(T0(a).r0) => colocate(a, b);",
    ),
    (
        "actor_call_pair",
        "T0(a).call(T1(b).f1).count > 400 => colocate(a, b);",
    ),
];

/// Deterministic splitmix64.
pub struct Mix(pub u64);

impl Mix {
    /// Advances and returns the next raw value.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The schema matching [`RULES`]: three types, each with property `r0` and
/// functions `f0`/`f1`.
pub fn schema() -> ActorSchema {
    let mut s = ActorSchema::new();
    for t in TYPES {
        s.actor_type(t).prop("r0").func("f0").func("f1");
    }
    s
}

/// Name tables consistent with the type/fn ids used by [`synth_world`].
pub fn name_tables() -> (BTreeMap<String, ActorTypeId>, BTreeMap<String, FnId>) {
    let types = TYPES
        .iter()
        .enumerate()
        .map(|(i, t)| (t.to_string(), ActorTypeId(i as u32)))
        .collect();
    let fns = [("f0", 0u32), ("f1", 1)]
        .into_iter()
        .map(|(f, i)| (f.to_string(), FnId(i)))
        .collect();
    (types, fns)
}

/// Builds a synthetic snapshot: `n_actors` actors round-robined over
/// `n_servers` servers, with client calls on `f0`, actor-to-actor calls on
/// `f1`, and three `r0` references each.
pub fn synth_world(n_servers: u32, n_actors: u64, seed: u64) -> (ProfileSnapshot, Vec<ServerMeta>) {
    let mut mix = Mix(seed);
    let servers: Vec<ServerMeta> = (0..n_servers)
        .map(|i| ServerMeta {
            id: ServerId(i),
            total_speed: 1.0,
            vcpus: 4,
            mem_bytes: 8 << 30,
            net_bps: 1e9,
            // Up to 120%: overloaded servers must exist for the guarded
            // rule shapes to fire.
            cpu: mix.below(120) as f64 / 100.0,
            mem: mix.below(100) as f64 / 100.0,
            net: mix.below(100) as f64 / 100.0,
            actor_count: (n_actors / n_servers as u64) as usize,
        })
        .collect();
    let actors: Vec<ActorWindowStats> = (0..n_actors)
        .map(|i| {
            let mut calls = BTreeMap::new();
            // Skewed client traffic: roughly one hotspot per hundred actors
            // draws an order of magnitude more calls, so per-server call
            // shares (`client.call(..).perc`) actually spread out.
            let client_count = if mix.below(100) == 0 {
                20_000 + mix.below(20_000)
            } else {
                mix.below(2000)
            };
            calls.insert(
                CallKey {
                    caller_kind: CallerKind::Client,
                    caller: None,
                    fname: FnId(0),
                },
                CallStat {
                    count: client_count,
                    bytes: mix.below(1 << 16),
                },
            );
            calls.insert(
                CallKey {
                    caller_kind: CallerKind::Actor(ActorTypeId((i % 3) as u32)),
                    caller: Some(ActorId(mix.below(n_actors))),
                    fname: FnId(1),
                },
                CallStat {
                    count: mix.below(500),
                    bytes: mix.below(1 << 14),
                },
            );
            let mut refs = BTreeMap::new();
            refs.insert(
                "r0".to_string(),
                (0..3).map(|_| ActorId(mix.below(n_actors))).collect(),
            );
            ActorWindowStats {
                actor: ActorId(i),
                type_id: ActorTypeId((i % 3) as u32),
                server: ServerId((i % n_servers as u64) as u32),
                state_size: 1 << 16,
                pinned: false,
                cpu_share: mix.below(100) as f64 / 100.0,
                counters: ActorCounters {
                    cpu_busy: SimDuration::ZERO,
                    calls,
                    bytes_sent: 0,
                },
                refs,
            }
        })
        .collect();
    let snap = ProfileSnapshot {
        generation: 1,
        at: SimTime::from_secs(60),
        window: SimDuration::from_secs(1),
        actors,
        servers: Vec::new(),
    };
    (snap, servers)
}

/// Produces the successor of `base` after one steady-state window with
/// `frac` churn: roughly `frac * len` actors are touched — a quarter
/// replaced (one death plus one fresh spawn), a quarter migrated, and the
/// rest re-profiled with a new `cpu_share`. Everything derives from
/// `seed`, the actor list stays id-sorted, and the generation advances by
/// one, so `SnapshotDelta::between(base, &churned)` is exactly the delta a
/// runtime would emit for this window.
pub fn churn_world(base: &ProfileSnapshot, frac: f64, seed: u64) -> ProfileSnapshot {
    let mut mix = Mix(seed);
    let mut actors = base.actors.clone();
    let n_servers = actors.iter().map(|a| a.server.0).max().unwrap_or(0) + 1;
    let touches = ((actors.len() as f64 * frac).ceil() as u64).max(1);
    let mut next_id = actors.last().map(|a| a.actor.0 + 1).unwrap_or(0);
    for _ in 0..touches {
        match mix.below(4) {
            0 if !actors.is_empty() => {
                // Replacement: one actor dies, a fresh one spawns.
                let gone = mix.below(actors.len() as u64) as usize;
                actors.remove(gone);
                let mut calls = BTreeMap::new();
                calls.insert(
                    CallKey {
                        caller_kind: CallerKind::Client,
                        caller: None,
                        fname: FnId(0),
                    },
                    CallStat {
                        count: mix.below(2000),
                        bytes: mix.below(1 << 16),
                    },
                );
                actors.push(ActorWindowStats {
                    actor: ActorId(next_id),
                    type_id: ActorTypeId((next_id % 3) as u32),
                    server: ServerId(mix.below(n_servers as u64) as u32),
                    state_size: 1 << 16,
                    pinned: false,
                    cpu_share: mix.below(100) as f64 / 100.0,
                    counters: ActorCounters {
                        cpu_busy: SimDuration::ZERO,
                        calls,
                        bytes_sent: 0,
                    },
                    refs: BTreeMap::new(),
                });
                next_id += 1;
            }
            1 if !actors.is_empty() => {
                let i = mix.below(actors.len() as u64) as usize;
                actors[i].server = ServerId(mix.below(n_servers as u64) as u32);
            }
            _ if !actors.is_empty() => {
                let i = mix.below(actors.len() as u64) as usize;
                actors[i].cpu_share = mix.below(100) as f64 / 100.0;
            }
            _ => {}
        }
    }
    ProfileSnapshot {
        generation: base.generation + 1,
        at: base.at + base.window,
        window: base.window,
        actors,
        servers: base.servers.clone(),
    }
}

/// Runs a small live cluster under a balance policy with `num_gems` GEM
/// scopes for `secs` simulated seconds and returns `(snapshot_builds,
/// emr.snapshot_reuse, emr.ticks, emr.frame_rebuilds, emr.frame_patches)`
/// — the deterministic counters pinning the shared-snapshot and
/// incremental-frame behavior.
pub fn sharing_probe(num_gems: usize, secs: u64, seed: u64) -> (u64, f64, f64, f64, f64) {
    struct Worker;
    impl ActorLogic for Worker {
        fn on_message(&mut self, ctx: &mut ActorCtx<'_>, _msg: &mut Message) {
            ctx.work(0.03);
            ctx.reply(32);
        }
    }
    struct Pulse {
        target: ActorId,
    }
    impl ClientLogic for Pulse {
        fn on_start(&mut self, ctx: &mut ClientCtx<'_>) {
            ctx.set_timer(SimDuration::ZERO, 0);
        }
        fn on_reply(
            &mut self,
            _ctx: &mut ClientCtx<'_>,
            _r: u64,
            _l: SimDuration,
            _p: Option<Payload>,
        ) {
        }
        fn on_timer(&mut self, ctx: &mut ClientCtx<'_>, _t: u64) {
            ctx.request(self.target, "run", 64);
            ctx.set_timer(SimDuration::from_millis(100), 0);
        }
    }
    let mut s = ActorSchema::new();
    s.actor_type("Worker").func("run");
    let compiled = compile(
        "server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);",
        &s,
    )
    .expect("probe policy compiles");
    let emr = PlasmaEmr::new(
        compiled,
        EmrConfig {
            num_gems,
            ..EmrConfig::default()
        },
    );
    let mut rt = Runtime::new(RuntimeConfig {
        seed,
        ..RuntimeConfig::default()
    });
    rt.set_controller(Box::new(emr));
    let s0 = rt.add_server(InstanceType::m1_small());
    for _ in 0..3 {
        rt.add_server(InstanceType::m1_small());
    }
    for _ in 0..6 {
        let w = rt.spawn_actor("Worker", Box::new(Worker), 1 << 10, s0);
        rt.add_client(Box::new(Pulse { target: w }));
    }
    rt.run_until(SimTime::from_secs(secs));
    let report = rt.report();
    (
        rt.snapshot_builds(),
        report.scalar("emr.snapshot_reuse").unwrap_or(0.0),
        report.scalar("emr.ticks").unwrap_or(0.0),
        report.scalar("emr.frame_rebuilds").unwrap_or(0.0),
        report.scalar("emr.frame_patches").unwrap_or(0.0),
    )
}
