//! The regression comparator behind `plasma-eval compare`.
//!
//! Diffs two result sets (baseline vs current) metric by metric. A
//! directional metric regresses when it moves against its direction by more
//! than the configured relative threshold (default 10%); informational
//! metrics are reported but never gate. Scenarios missing from the current
//! set fail the comparison (a silently dropped benchmark is itself a
//! regression); scenarios new in the current set are reported as notes.

use std::collections::BTreeMap;

use super::result::{Direction, ScenarioResult};

/// Comparator configuration.
#[derive(Clone, Copy, Debug)]
pub struct CompareOptions {
    /// Relative regression threshold (0.10 = 10%).
    pub threshold: f64,
}

impl Default for CompareOptions {
    fn default() -> Self {
        CompareOptions { threshold: 0.10 }
    }
}

/// Classification of one metric diff.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiffKind {
    /// Moved against its direction past the threshold — fails the gate.
    Regressed,
    /// Moved with its direction past the threshold.
    Improved,
    /// Within the threshold band (or informational).
    Unchanged,
    /// Present in the baseline only.
    OnlyInBaseline,
    /// Present in the current set only.
    OnlyInCurrent,
}

/// One metric's baseline/current pair and verdict.
#[derive(Clone, Debug)]
pub struct MetricDiff {
    /// Scenario the metric belongs to.
    pub scenario: String,
    /// Metric name.
    pub metric: String,
    /// Baseline value, when present.
    pub baseline: Option<f64>,
    /// Current value, when present.
    pub current: Option<f64>,
    /// Relative change `(current - baseline) / |baseline|` (0 when either
    /// side is absent).
    pub rel_change: f64,
    /// Verdict for this metric.
    pub kind: DiffKind,
}

/// The full comparison outcome.
#[derive(Clone, Debug, Default)]
pub struct CompareReport {
    /// Per-metric diffs in scenario, then metric order.
    pub diffs: Vec<MetricDiff>,
    /// Scenarios present in the baseline but absent from the current set.
    pub missing_scenarios: Vec<String>,
    /// Scenarios present in the current set but absent from the baseline.
    pub new_scenarios: Vec<String>,
    /// Scenarios whose scale or seed differ between the two sets; comparing
    /// a smoke run against a full baseline is meaningless, so this fails.
    pub identity_mismatches: Vec<String>,
    /// Scenarios compared metric-by-metric.
    pub scenarios_compared: usize,
}

impl CompareReport {
    /// Number of regressed metrics.
    pub fn regressions(&self) -> usize {
        self.diffs
            .iter()
            .filter(|d| d.kind == DiffKind::Regressed)
            .count()
    }

    /// Whether the gate passes: no regressions, no dropped scenarios, no
    /// identity mismatches.
    pub fn passed(&self) -> bool {
        self.regressions() == 0
            && self.missing_scenarios.is_empty()
            && self.identity_mismatches.is_empty()
    }

    /// Renders the human-readable comparison table.
    pub fn render(&self, threshold: f64) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "comparing {} scenario(s), regression threshold {:.0}%\n",
            self.scenarios_compared,
            threshold * 100.0
        ));
        for d in &self.diffs {
            let line = match d.kind {
                DiffKind::Regressed => format!(
                    "  REGRESSED {}/{}: {:.6} -> {:.6} ({:+.1}%)\n",
                    d.scenario,
                    d.metric,
                    d.baseline.unwrap_or(0.0),
                    d.current.unwrap_or(0.0),
                    d.rel_change * 100.0
                ),
                DiffKind::Improved => format!(
                    "  improved  {}/{}: {:.6} -> {:.6} ({:+.1}%)\n",
                    d.scenario,
                    d.metric,
                    d.baseline.unwrap_or(0.0),
                    d.current.unwrap_or(0.0),
                    d.rel_change * 100.0
                ),
                DiffKind::OnlyInBaseline => format!(
                    "  note      {}/{}: present in baseline only\n",
                    d.scenario, d.metric
                ),
                DiffKind::OnlyInCurrent => format!(
                    "  note      {}/{}: new metric (not in baseline)\n",
                    d.scenario, d.metric
                ),
                DiffKind::Unchanged => String::new(),
            };
            out.push_str(&line);
        }
        for s in &self.missing_scenarios {
            out.push_str(&format!(
                "  MISSING   scenario `{s}` absent from current results\n"
            ));
        }
        for s in &self.new_scenarios {
            out.push_str(&format!(
                "  note      scenario `{s}` is new (not in baseline)\n"
            ));
        }
        for s in &self.identity_mismatches {
            out.push_str(&format!("  MISMATCH  {s}\n"));
        }
        out.push_str(&format!(
            "result: {} ({} regression(s), {} missing scenario(s))\n",
            if self.passed() { "PASS" } else { "FAIL" },
            self.regressions(),
            self.missing_scenarios.len()
        ));
        out
    }
}

/// Classifies one metric pair under `threshold`.
fn classify(direction: Direction, baseline: f64, current: f64, threshold: f64) -> (f64, DiffKind) {
    // Both effectively zero: equal by definition (avoids 0-vs-1e-12 blowups).
    if baseline.abs() < 1e-9 && current.abs() < 1e-9 {
        return (0.0, DiffKind::Unchanged);
    }
    let rel = (current - baseline) / baseline.abs().max(1e-9);
    let kind = match direction {
        Direction::Info => DiffKind::Unchanged,
        Direction::Lower => {
            if rel > threshold {
                DiffKind::Regressed
            } else if rel < -threshold {
                DiffKind::Improved
            } else {
                DiffKind::Unchanged
            }
        }
        Direction::Higher => {
            if rel < -threshold {
                DiffKind::Regressed
            } else if rel > threshold {
                DiffKind::Improved
            } else {
                DiffKind::Unchanged
            }
        }
    };
    (rel, kind)
}

/// Compares `current` against `baseline`.
pub fn compare(
    baseline: &[ScenarioResult],
    current: &[ScenarioResult],
    opts: CompareOptions,
) -> CompareReport {
    let base: BTreeMap<&str, &ScenarioResult> =
        baseline.iter().map(|r| (r.scenario.as_str(), r)).collect();
    let cur: BTreeMap<&str, &ScenarioResult> =
        current.iter().map(|r| (r.scenario.as_str(), r)).collect();
    let mut report = CompareReport::default();
    for (&name, b) in &base {
        let Some(c) = cur.get(name) else {
            report.missing_scenarios.push(name.to_string());
            continue;
        };
        if b.scale != c.scale || b.seed != c.seed {
            report.identity_mismatches.push(format!(
                "scenario `{name}`: baseline is scale={}/seed={}, current is scale={}/seed={}",
                b.scale, b.seed, c.scale, c.seed
            ));
            continue;
        }
        report.scenarios_compared += 1;
        for (metric, bm) in &b.metrics {
            match c.metric(metric) {
                None => report.diffs.push(MetricDiff {
                    scenario: name.to_string(),
                    metric: metric.clone(),
                    baseline: Some(bm.value),
                    current: None,
                    rel_change: 0.0,
                    kind: DiffKind::OnlyInBaseline,
                }),
                Some(cm) => {
                    // The baseline's recorded direction governs the gate, so
                    // an edited current file cannot soften its own rules.
                    let (rel, kind) = classify(bm.direction, bm.value, cm.value, opts.threshold);
                    report.diffs.push(MetricDiff {
                        scenario: name.to_string(),
                        metric: metric.clone(),
                        baseline: Some(bm.value),
                        current: Some(cm.value),
                        rel_change: rel,
                        kind,
                    });
                }
            }
        }
        for (metric, cm) in &c.metrics {
            if b.metric(metric).is_none() {
                report.diffs.push(MetricDiff {
                    scenario: name.to_string(),
                    metric: metric.clone(),
                    baseline: None,
                    current: Some(cm.value),
                    rel_change: 0.0,
                    kind: DiffKind::OnlyInCurrent,
                });
            }
        }
    }
    for &name in cur.keys() {
        if !base.contains_key(name) {
            report.new_scenarios.push(name.to_string());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(scenario: &str, metrics: &[(&str, f64, Direction)]) -> ScenarioResult {
        let mut r = ScenarioResult::new(scenario, "5.0", "smoke", 7);
        for &(name, value, direction) in metrics {
            r.push(name, value, direction);
        }
        r
    }

    #[test]
    fn identical_inputs_pass() {
        let a = vec![
            result("estore", &[("tail_ms", 10.0, Direction::Lower)]),
            result("halo", &[("colocated_fraction", 0.9, Direction::Higher)]),
        ];
        let report = compare(&a, &a.clone(), CompareOptions::default());
        assert!(report.passed());
        assert_eq!(report.regressions(), 0);
        assert_eq!(report.scenarios_compared, 2);
    }

    #[test]
    fn injected_regression_past_threshold_fails() {
        let base = vec![result("estore", &[("tail_ms", 10.0, Direction::Lower)])];
        let cur = vec![result("estore", &[("tail_ms", 11.5, Direction::Lower)])];
        let report = compare(&base, &cur, CompareOptions::default());
        assert!(!report.passed());
        assert_eq!(report.regressions(), 1);
        assert!(report.render(0.10).contains("REGRESSED estore/tail_ms"));
    }

    #[test]
    fn higher_is_better_direction_gates_drops() {
        let base = vec![result(
            "halo",
            &[("colocated_fraction", 1.0, Direction::Higher)],
        )];
        let cur = vec![result(
            "halo",
            &[("colocated_fraction", 0.5, Direction::Higher)],
        )];
        assert!(!compare(&base, &cur, CompareOptions::default()).passed());
        // An increase on higher-is-better is an improvement, not a failure.
        assert!(compare(&cur, &base, CompareOptions::default()).passed());
    }

    #[test]
    fn within_threshold_changes_pass() {
        let base = vec![result("estore", &[("tail_ms", 10.0, Direction::Lower)])];
        let cur = vec![result("estore", &[("tail_ms", 10.9, Direction::Lower)])];
        assert!(compare(&base, &cur, CompareOptions::default()).passed());
    }

    #[test]
    fn info_metrics_never_gate() {
        let base = vec![result("media", &[("peak_servers", 4.0, Direction::Info)])];
        let cur = vec![result("media", &[("peak_servers", 400.0, Direction::Info)])];
        assert!(compare(&base, &cur, CompareOptions::default()).passed());
    }

    #[test]
    fn missing_scenario_is_reported_and_fails() {
        let base = vec![
            result("estore", &[("tail_ms", 10.0, Direction::Lower)]),
            result("halo", &[("mean_latency_ms", 17.0, Direction::Lower)]),
        ];
        let cur = vec![result("estore", &[("tail_ms", 10.0, Direction::Lower)])];
        let report = compare(&base, &cur, CompareOptions::default());
        assert!(!report.passed());
        assert_eq!(report.missing_scenarios, vec!["halo".to_string()]);
        assert!(report.render(0.10).contains("MISSING"));
    }

    #[test]
    fn new_scenario_is_a_note_not_a_failure() {
        let base = vec![result("estore", &[("tail_ms", 10.0, Direction::Lower)])];
        let cur = vec![
            result("estore", &[("tail_ms", 10.0, Direction::Lower)]),
            result("brand_new", &[("x", 1.0, Direction::Lower)]),
        ];
        let report = compare(&base, &cur, CompareOptions::default());
        assert!(report.passed());
        assert_eq!(report.new_scenarios, vec!["brand_new".to_string()]);
    }

    #[test]
    fn new_and_missing_metrics_are_notes() {
        let base = vec![result("estore", &[("old_metric", 1.0, Direction::Lower)])];
        let cur = vec![result("estore", &[("new_metric", 2.0, Direction::Lower)])];
        let report = compare(&base, &cur, CompareOptions::default());
        assert!(report.passed(), "metric set drift is reported, not fatal");
        assert!(report
            .diffs
            .iter()
            .any(|d| d.kind == DiffKind::OnlyInBaseline));
        assert!(report
            .diffs
            .iter()
            .any(|d| d.kind == DiffKind::OnlyInCurrent));
    }

    #[test]
    fn scale_mismatch_fails() {
        let base = vec![result("estore", &[("tail_ms", 10.0, Direction::Lower)])];
        let mut cur = base.clone();
        cur[0].scale = "full".to_string();
        let report = compare(&base, &cur, CompareOptions::default());
        assert!(!report.passed());
        assert_eq!(report.identity_mismatches.len(), 1);
    }

    #[test]
    fn zero_baselines_do_not_explode() {
        let base = vec![result("x", &[("m", 0.0, Direction::Lower)])];
        let cur = vec![result("x", &[("m", 0.0, Direction::Lower)])];
        assert!(compare(&base, &cur, CompareOptions::default()).passed());
        // 0 -> large is still caught.
        let bad = vec![result("x", &[("m", 5.0, Direction::Lower)])];
        assert!(!compare(&base, &bad, CompareOptions::default()).passed());
    }

    #[test]
    fn custom_threshold_is_respected() {
        let base = vec![result("estore", &[("tail_ms", 10.0, Direction::Lower)])];
        let cur = vec![result("estore", &[("tail_ms", 10.5, Direction::Lower)])];
        assert!(compare(&base, &cur, CompareOptions { threshold: 0.10 }).passed());
        assert!(!compare(&base, &cur, CompareOptions { threshold: 0.02 }).passed());
    }
}
