//! Drives the §5 application scenarios under fixed seeds and folds each run
//! into a [`ScenarioResult`].
//!
//! Every scenario pushes the same block of scenario-independent elasticity
//! metrics (decision latency, migration outcomes, throughput, balance
//! score) followed by its paper-specific headline numbers. Metric insertion
//! order is fixed, which — together with the deterministic simulator — makes
//! the serialized results byte-identical across same-seed runs.

use plasma_actor::BackendKind;
use plasma_apps::common::{ChaosEval, ElasticityEval, EvalScale};
use plasma_apps::{chatroom, estore, halo, media, pagerank};
use plasma_sim::SimDuration;

use super::result::{Direction, ScenarioResult};

/// One entry of the scenario registry.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioSpec {
    /// Scenario name as used on the CLI and in file names.
    pub name: &'static str,
    /// Paper section the scenario reproduces.
    pub paper_section: &'static str,
    /// One-line description for `plasma-eval list`.
    pub summary: &'static str,
}

/// The evaluation scenario registry, in canonical run order.
pub const SCENARIOS: &[ScenarioSpec] = &[
    ScenarioSpec {
        name: "chatroom",
        paper_section: "5.2",
        summary: "chat-room microbenchmark: CPU-bound makespan and EPR profiling tax",
    },
    ScenarioSpec {
        name: "pagerank",
        paper_section: "5.4",
        summary: "distributed PageRank: one balance rule repairs edge-count imbalance",
    },
    ScenarioSpec {
        name: "estore",
        paper_section: "5.5",
        summary: "E-Store skew: hot roots reserved and colocated off the overloaded server",
    },
    ScenarioSpec {
        name: "media",
        paper_section: "5.6",
        summary: "Media Service join/leave wave: cluster grows and reclaims servers",
    },
    ScenarioSpec {
        name: "halo",
        paper_section: "5.7",
        summary: "Halo presence: creation-time colocation vs frequency default rule",
    },
    ScenarioSpec {
        name: "eval-engine",
        paper_section: "4.2",
        summary: "indexed rule evaluator on a synthetic large cluster: env counts, oracle agreement, snapshot sharing",
    },
    ScenarioSpec {
        name: "chatroom-chaos",
        paper_section: "4.3",
        summary: "chat room under server crashes: detection, respawn, in-place reboot",
    },
    ScenarioSpec {
        name: "estore-chaos",
        paper_section: "4.3",
        summary: "E-Store under migration aborts and degraded links: retry-with-backoff",
    },
    ScenarioSpec {
        name: "halo-chaos",
        paper_section: "4.3",
        summary: "Halo presence under a partition and a GEM crash: §4.3 re-shuffling",
    },
];

/// Looks a scenario up by name.
pub fn spec(name: &str) -> Option<&'static ScenarioSpec> {
    SCENARIOS.iter().find(|s| s.name == name)
}

/// Pushes the scenario-independent elasticity metrics.
///
/// `rebalance_direction` lets hotspot-at-start scenarios gate on
/// time-to-rebalance while wave scenarios (where migrations legitimately
/// continue to the end of the run) keep it informational.
fn push_common(result: &mut ScenarioResult, eval: &ElasticityEval, rebalance_direction: Direction) {
    result.push("run_secs", eval.run_secs, Direction::Info);
    result.push("throughput_rps", eval.throughput_rps, Direction::Higher);
    result.push(
        "message_throughput_per_s",
        eval.message_throughput_per_s,
        Direction::Higher,
    );
    result.push("locality", eval.locality, Direction::Info);
    result.push(
        "migrations_completed",
        eval.migrations_completed as f64,
        Direction::Info,
    );
    result.push("emr_admitted", eval.emr_admitted as f64, Direction::Info);
    result.push("emr_rejected", eval.emr_rejected as f64, Direction::Info);
    result.push("emr_ticks", eval.emr_ticks as f64, Direction::Info);
    result.push("scale_outs", eval.scale_outs as f64, Direction::Info);
    result.push("scale_ins", eval.scale_ins as f64, Direction::Info);
    result.push(
        "decision_latency_ms_mean",
        eval.decision_latency_ms_mean,
        Direction::Lower,
    );
    result.push(
        "decision_latency_ms_max",
        eval.decision_latency_ms_max,
        Direction::Lower,
    );
    result.push(
        "time_to_rebalance_s",
        eval.time_to_rebalance_s,
        rebalance_direction,
    );
    result.push("balance_score", eval.balance_score, Direction::Higher);
    result.push(
        "decisions_total",
        eval.decisions_total as f64,
        Direction::Info,
    );
    // Low 32 bits of the order-sensitive decision-sequence digest. An f64
    // carries a u32 exactly, so the value survives the round-trip through
    // the BENCH file and backend-parity can compare it byte-for-byte.
    result.push(
        "decision_digest",
        (eval.decision_digest & 0xFFFF_FFFF) as f64,
        Direction::Info,
    );
    result.push(
        "snapshot_skew_rounds",
        eval.snapshot_skew_rounds as f64,
        Direction::Info,
    );
    // Frame-maintenance counters ride at the end so pre-existing baseline
    // lines stay byte-identical.
    result.push(
        "frame_rebuilds",
        eval.frame_rebuilds as f64,
        Direction::Info,
    );
    result.push(
        "frame_patches",
        eval.frame_patches as f64,
        Direction::Higher,
    );
    result.push(
        "frame_patch_ns",
        eval.frame_patch_ns as f64,
        Direction::Info,
    );
    // Carrier transport counters: identically 0 under sim and zeroed by
    // the parity normalizer (the `backend_` prefix) under live/net, so
    // every backend still serializes to byte-identical normalized JSON.
    result.push(
        "backend_channel_mean_ns",
        eval.backend_channel_mean_ns,
        Direction::Info,
    );
    result.push(
        "backend_channel_max_ns",
        eval.backend_channel_max_ns as f64,
        Direction::Info,
    );
    result.push(
        "backend_frames_sent",
        eval.backend_frames_sent as f64,
        Direction::Info,
    );
    result.push(
        "backend_frames_received",
        eval.backend_frames_received as f64,
        Direction::Info,
    );
    result.push(
        "backend_wire_bytes_sent",
        eval.backend_wire_bytes_sent as f64,
        Direction::Info,
    );
    result.push(
        "backend_wire_bytes_received",
        eval.backend_wire_bytes_received as f64,
        Direction::Info,
    );
    result.push(
        "backend_max_inflight",
        eval.backend_max_inflight as f64,
        Direction::Info,
    );
    // Control-plane carriage counters: reply/byte counts depend on the
    // carrier's partitioning, so the parity normalizer zeroes the
    // `control_` prefix the same way it zeroes `backend_`.
    result.push(
        "control_queries",
        eval.control_queries as f64,
        Direction::Info,
    );
    result.push(
        "control_replies",
        eval.control_replies as f64,
        Direction::Info,
    );
    result.push(
        "control_wire_bytes",
        eval.control_wire_bytes as f64,
        Direction::Info,
    );
}

/// Pushes the recovery metrics of a chaos scenario.
///
/// Counts are informational (the fault plan fixes how much breaks); the
/// gated metrics are the recovery *times* — detection latency, the
/// unavailability window, time-to-rebalance after the first crash — and
/// the fraction of orphaned actors brought back.
fn push_chaos(result: &mut ScenarioResult, chaos: &ChaosEval) {
    result.push(
        "faults_injected",
        chaos.faults_injected as f64,
        Direction::Info,
    );
    result.push(
        "servers_crashed",
        chaos.servers_crashed as f64,
        Direction::Info,
    );
    result.push(
        "servers_restarted",
        chaos.servers_restarted as f64,
        Direction::Info,
    );
    result.push("actors_lost", chaos.actors_lost as f64, Direction::Info);
    result.push(
        "actors_recovered",
        chaos.actors_recovered as f64,
        Direction::Info,
    );
    result.push(
        "recovered_fraction",
        if chaos.actors_lost == 0 {
            1.0
        } else {
            chaos.actors_recovered as f64 / chaos.actors_lost as f64
        },
        Direction::Higher,
    );
    result.push(
        "state_bytes_lost",
        chaos.state_bytes_lost as f64,
        Direction::Info,
    );
    result.push("messages_lost", chaos.messages_lost as f64, Direction::Info);
    result.push(
        "migrations_aborted",
        chaos.migrations_aborted as f64,
        Direction::Info,
    );
    result.push(
        "migration_retries",
        chaos.migration_retries as f64,
        Direction::Info,
    );
    result.push("detections", chaos.detections as f64, Direction::Info);
    result.push(
        "time_to_detect_s_mean",
        chaos.time_to_detect_s_mean,
        Direction::Lower,
    );
    result.push(
        "time_to_detect_s_max",
        chaos.time_to_detect_s_max,
        Direction::Lower,
    );
    result.push(
        "unavailability_s_sum",
        chaos.unavailability_s_sum,
        Direction::Lower,
    );
    result.push(
        "unavailability_s_max",
        chaos.unavailability_s_max,
        Direction::Lower,
    );
    result.push("first_crash_at_s", chaos.first_crash_at_s, Direction::Info);
    result.push(
        "time_to_rebalance_after_crash_s",
        chaos.time_to_rebalance_after_crash_s,
        Direction::Lower,
    );
}

/// Runs one scenario at the given scale and returns its result, or `None`
/// for an unknown scenario name.
///
/// `seed` overrides the preset's fixed seed when given; CI and the checked
/// in baselines always use the preset seed.
pub fn run_scenario(name: &str, scale: EvalScale, seed: Option<u64>) -> Option<ScenarioResult> {
    run_scenario_on(name, scale, seed, BackendKind::Sim)
}

/// [`run_scenario`] with an explicit execution backend.
///
/// All BENCH metrics derive from logical state only, so a scenario run
/// under [`BackendKind::Live`] must produce a byte-identical result — that
/// equivalence is the backend-parity gate. The `eval-engine` scenario has
/// no runtime (it probes the evaluator on a synthetic world) and ignores
/// the backend.
pub fn run_scenario_on(
    name: &str,
    scale: EvalScale,
    seed: Option<u64>,
    backend: BackendKind,
) -> Option<ScenarioResult> {
    let spec = spec(name)?;
    let mut result = ScenarioResult::new(spec.name, spec.paper_section, scale.name(), 0);
    match name {
        "chatroom" => {
            let mut cfg = chatroom::ChatConfig::preset(scale);
            cfg.backend = backend;
            if let Some(s) = seed {
                cfg.seed = s;
            }
            result.seed = cfg.seed;
            let report = chatroom::run(&cfg);
            let mut off = cfg.clone();
            off.epr_enabled = false;
            let base = chatroom::run(&off);
            push_common(&mut result, &report.eval, Direction::Info);
            result.push(
                "makespan_s",
                report.makespan.as_secs_f64(),
                Direction::Lower,
            );
            result.push("mean_latency_ms", report.mean_latency_ms, Direction::Lower);
            result.push(
                "epr_overhead_ratio",
                report.makespan.as_secs_f64() / base.makespan.as_secs_f64().max(1e-9),
                Direction::Lower,
            );
        }
        "pagerank" => {
            let mut cfg = pagerank::PageRankConfig::preset(scale);
            cfg.backend = backend;
            if let Some(s) = seed {
                cfg.seed = s;
            }
            result.seed = cfg.seed;
            let report = pagerank::run(&cfg);
            push_common(&mut result, &report.eval, Direction::Lower);
            result.push("converged_time_s", report.converged_time, Direction::Lower);
            let n = report.iteration_times.len();
            let tail = n.min(5);
            let tail_mean = if tail == 0 {
                0.0
            } else {
                report.iteration_times[n - tail..].iter().sum::<f64>() / tail as f64
            };
            result.push("tail_iteration_s", tail_mean, Direction::Lower);
            result.push("iterations", n as f64, Direction::Info);
            result.push("final_delta", report.final_delta, Direction::Info);
        }
        "estore" => {
            let mut cfg = estore::EstoreConfig::preset(scale);
            cfg.backend = backend;
            if let Some(s) = seed {
                cfg.seed = s;
            }
            result.seed = cfg.seed;
            let report = estore::run(&cfg);
            push_common(&mut result, &report.eval, Direction::Lower);
            result.push("tail_ms", report.tail_ms, Direction::Lower);
        }
        "media" => {
            let mut cfg = media::MediaConfig::preset(scale);
            cfg.backend = backend;
            if let Some(s) = seed {
                cfg.seed = s;
            }
            result.seed = cfg.seed;
            let report = media::run(&cfg);
            push_common(&mut result, &report.eval, Direction::Info);
            result.push("mean_latency_ms", report.mean_ms, Direction::Lower);
            result.push("plateau_latency_ms", report.plateau_ms, Direction::Lower);
            result.push("peak_servers", report.peak_servers as f64, Direction::Info);
            result.push(
                "final_servers",
                report.final_servers as f64,
                Direction::Lower,
            );
        }
        "halo" => {
            let mut cfg = halo::HaloConfig::preset(scale);
            cfg.backend = backend;
            if let Some(s) = seed {
                cfg.seed = s;
            }
            result.seed = cfg.seed;
            let report = halo::run(&cfg);
            push_common(&mut result, &report.eval, Direction::Lower);
            result.push("mean_latency_ms", report.mean_ms, Direction::Lower);
            result.push("peak_latency_ms", report.peak_ms, Direction::Lower);
            let (on_home, total) = report.colocated;
            result.push(
                "colocated_fraction",
                if total == 0 {
                    1.0
                } else {
                    on_home as f64 / total as f64
                },
                Direction::Higher,
            );
        }
        "eval-engine" => {
            use plasma_cluster::ServerId;
            use plasma_emr::eval::{naive, solve_bound, BoundRule};
            use plasma_emr::view::{EvalCtx, EvalFrame};

            let world_seed = seed.unwrap_or(0x4556_414C); // "EVAL"
            result.seed = world_seed;
            let (n_servers, n_actors) = match scale {
                EvalScale::Smoke => (8u32, 600u64),
                EvalScale::Full => (32, 3000),
                EvalScale::Xl => (128, 50_000),
            };
            let (snap, servers) = super::synth::synth_world(n_servers, n_actors, world_seed);
            let snap = std::sync::Arc::new(snap);
            let (types, fns) = super::synth::name_tables();
            let frame = EvalFrame::from_parts(snap, servers.clone(), types, fns);
            let scope: Vec<ServerId> = servers.iter().map(|s| s.id).collect();
            let ctx = EvalCtx::scoped(&frame, &scope);
            let schema = super::synth::schema();
            result.push("servers", n_servers as f64, Direction::Info);
            result.push("actors", n_actors as f64, Direction::Info);
            let mut agree = 0usize;
            for (name, src) in super::synth::RULES {
                let policy = plasma_epl::compile(src, &schema).expect("synth rule compiles");
                let rule = &policy.rules[0];
                let envs = solve_bound(&BoundRule::bind(rule, &frame), &ctx);
                if envs == naive::solve(rule, &ctx) {
                    agree += 1;
                }
                result.push(&format!("envs_{name}"), envs.len() as f64, Direction::Info);
            }
            // 1.0 = the indexed evaluator and the naive AST oracle agree on
            // every rule shape; any drop gates the comparison.
            result.push(
                "oracle_agreement",
                agree as f64 / super::synth::RULES.len() as f64,
                Direction::Higher,
            );
            let (builds, reuse, ticks, rebuilds, patches) =
                super::synth::sharing_probe(4, 120, world_seed);
            result.push("snapshot_builds", builds as f64, Direction::Info);
            result.push("snapshot_reuse", reuse, Direction::Higher);
            result.push("emr_ticks", ticks, Direction::Info);
            result.push("frame_rebuilds", rebuilds, Direction::Info);
            result.push("frame_patches", patches, Direction::Higher);
        }
        "chatroom-chaos" => {
            let mut cfg = chatroom::ChatConfig::chaos_preset(scale);
            cfg.backend = backend;
            if let Some(s) = seed {
                cfg.seed = s;
            }
            result.seed = cfg.seed;
            let run_for = match scale {
                EvalScale::Smoke => SimDuration::from_secs(90),
                EvalScale::Full | EvalScale::Xl => SimDuration::from_secs(180),
            };
            let report = chatroom::run_chaos(&cfg, run_for);
            push_common(&mut result, &report.eval, Direction::Info);
            push_chaos(&mut result, &report.chaos);
            result.push("replies", report.replies as f64, Direction::Higher);
        }
        "estore-chaos" => {
            let mut cfg = estore::EstoreConfig::chaos_preset(scale);
            cfg.backend = backend;
            if let Some(s) = seed {
                cfg.seed = s;
            }
            result.seed = cfg.seed;
            let report = estore::run(&cfg);
            push_common(&mut result, &report.eval, Direction::Info);
            push_chaos(&mut result, &report.chaos);
            result.push("tail_ms", report.tail_ms, Direction::Info);
        }
        "halo-chaos" => {
            let mut cfg = halo::HaloConfig::chaos_preset(scale);
            cfg.backend = backend;
            if let Some(s) = seed {
                cfg.seed = s;
            }
            result.seed = cfg.seed;
            let report = halo::run(&cfg);
            push_common(&mut result, &report.eval, Direction::Info);
            push_chaos(&mut result, &report.chaos);
            result.push("mean_latency_ms", report.mean_ms, Direction::Info);
            let (on_home, total) = report.colocated;
            result.push(
                "colocated_fraction",
                if total == 0 {
                    1.0
                } else {
                    on_home as f64 / total as f64
                },
                Direction::Info,
            );
        }
        _ => unreachable!("spec() vetted the name"),
    }
    Some(result)
}

/// Renders the human summary of one result (one line per metric).
pub fn render_summary(result: &ScenarioResult) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "== {} (§{}, scale={}, seed={}) ==\n",
        result.scenario, result.paper_section, result.scale, result.seed
    ));
    for (name, m) in &result.metrics {
        let tag = match m.direction {
            Direction::Lower => "↓",
            Direction::Higher => "↑",
            Direction::Info => " ",
        };
        out.push_str(&format!("  {tag} {name:<28} {:>14.6}\n", m.value));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        for s in SCENARIOS {
            assert!(spec(s.name).is_some());
        }
        let mut names: Vec<&str> = SCENARIOS.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SCENARIOS.len());
    }

    #[test]
    fn unknown_scenario_is_none() {
        assert!(run_scenario("nope", EvalScale::Smoke, None).is_none());
    }

    #[test]
    fn chatroom_smoke_produces_headline_metrics() {
        let r = run_scenario("chatroom", EvalScale::Smoke, None).unwrap();
        assert_eq!(r.scenario, "chatroom");
        assert!(r.metric("makespan_s").unwrap().value > 0.0);
        assert!(r.metric("epr_overhead_ratio").unwrap().value > 1.0);
        assert!(r.metric("throughput_rps").unwrap().value > 0.0);
    }
}
