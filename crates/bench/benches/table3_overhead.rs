//! Table 3: normalized EPR (profiling) overhead on the chat-room
//! microbenchmark.
//!
//! Paper: `{8,16,32}` users on m1.small (`-s`) and m1.medium (`-m`), all
//! CPU-saturated; normalized execution time with profiling on vs off stays
//! within 1.001-1.023.

use plasma_apps::chatroom::normalized_overhead;
use plasma_bench::{banner, write_json};
use plasma_cluster::InstanceType;

fn main() {
    banner(
        "Table 3 - Normalized EPR overhead (chat room)",
        "profiling costs at most ~2.3% even under CPU saturation",
    );
    let mut results = Vec::new();
    println!("{:<10} {:>12}", "setup", "normalized");
    for (users, instance, tag) in [
        (8usize, InstanceType::m1_small(), "8-s"),
        (16, InstanceType::m1_small(), "16-s"),
        (32, InstanceType::m1_small(), "32-s"),
        (8, InstanceType::m1_medium(), "8-m"),
        (16, InstanceType::m1_medium(), "16-m"),
        (32, InstanceType::m1_medium(), "32-m"),
    ] {
        let ratio = normalized_overhead(users, instance, 7 + users as u64);
        println!("{tag:<10} {ratio:>12.4}");
        results.push(serde_json::json!({ "setup": tag, "normalized": ratio }));
    }
    println!("\npaper Table 3: 1.007  1.001  1.023  1.003  1.006  1.005");
    write_json("table3_overhead", &serde_json::json!({ "rows": results }));
}
