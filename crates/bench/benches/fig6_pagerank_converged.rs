//! Fig. 6: PageRank converged computation time.
//!
//! (a) static allocation, 16 vCPU: PLASMA's CPU-balance rule converges
//!     ~24% faster than Orleans' actor-count balancing (averaged over 5
//!     random placements, as in the paper).
//! (b) dynamic allocation: PLASMA grows from one server and settles near
//!     the conservative-provisioning performance with ~25% fewer servers.

use plasma_apps::pagerank::{run, Mode, PageRankConfig};
use plasma_bench::{banner, mean, write_json};
use plasma_sim::SimDuration;

fn main() {
    banner(
        "Fig. 6 - PageRank converged computation time",
        "(a) PLASMA ~24% faster than Orleans at 16 vCPU; (b) PLASMA dynamic ~= conservative with fewer servers",
    );

    // (a) Static allocation: 32 workers on 8 m5.large, 5 random placements.
    let seeds = [1u64, 5, 9, 13, 21];
    let mut plasma_times = Vec::new();
    let mut orleans_times = Vec::new();
    for &seed in &seeds {
        let mk = |mode| PageRankConfig {
            mode,
            seed,
            max_iters: 30,
            ..PageRankConfig::default()
        };
        let p = run(&mk(Mode::Plasma));
        let o = run(&mk(Mode::Orleans));
        println!(
            "seed {seed}: PLASMA {:.2} s ({} migrations)  Orleans {:.2} s",
            p.converged_time, p.migrations, o.converged_time
        );
        plasma_times.push(p.converged_time);
        orleans_times.push(o.converged_time);
    }
    let (pm, om) = (mean(&plasma_times), mean(&orleans_times));
    println!("\n(a) 16-vCPU converged time:");
    println!("    PLASMA elasticity : {pm:.2} s");
    println!("    Orleans elasticity: {om:.2} s");
    println!("    speedup: {:.0}% (paper: ~24%)", (1.0 - pm / om) * 100.0);

    // (b) Dynamic allocation vs conservative provisioning.
    let dynamic = run(&PageRankConfig {
        mode: Mode::Plasma,
        servers: 1,
        auto_scale: true,
        max_servers: 16,
        max_iters: 220,
        work_per_edge: 2.0e-4,
        period: SimDuration::from_secs(4),
        seed: 3,
        ..PageRankConfig::default()
    });
    let conservative = run(&PageRankConfig {
        mode: Mode::None,
        servers: 16,
        partitions: 32,
        max_iters: 220,
        work_per_edge: 2.0e-4,
        seed: 3,
        ..PageRankConfig::default()
    });
    let tail = |r: &plasma_apps::pagerank::PageRankReport| {
        let n = r.iteration_times.len();
        mean(&r.iteration_times[n.saturating_sub(20)..])
    };
    let (dt, ct) = (tail(&dynamic), tail(&conservative));
    println!("\n(b) dynamic allocation, steady-state iteration time:");
    println!(
        "    PLASMA dynamic   : {:.3} s/iter on {} servers",
        dt, dynamic.final_servers
    );
    println!("    conservative     : {ct:.3} s/iter on 16 servers");
    println!(
        "    server saving: {:.0}% at {:.0}% slower iterations (paper: 25% fewer servers, ~same performance)",
        (1.0 - dynamic.final_servers as f64 / 16.0) * 100.0,
        (dt / ct - 1.0) * 100.0
    );
    write_json(
        "fig6_pagerank_converged",
        &serde_json::json!({
            "static": {
                "plasma_s": plasma_times,
                "orleans_s": orleans_times,
                "plasma_mean_s": pm,
                "orleans_mean_s": om,
            },
            "dynamic": {
                "plasma_iter_s": dt,
                "plasma_servers": dynamic.final_servers,
                "conservative_iter_s": ct,
                "conservative_servers": 16,
            },
        }),
    );
}
