//! Hot-path benchmark: indexed plan evaluator vs. the naive AST walker.
//!
//! Uses the synthetic large-scale snapshot from
//! [`plasma_bench::eval::synth`] (32 servers, 3000 actors — no simulation)
//! and times `solve_bound` against `eval::naive::solve` on the
//! representative rule shapes. The run *asserts* the aggregate speedup is
//! at least 3x, so a regression in the query-plan lowering or the index
//! fast paths fails `cargo bench --bench eval_hotpath` outright rather
//! than drifting by.
//!
//! The naive evaluator comes from the `naive-oracle` feature of
//! `plasma-emr`; it is the same code path the in-crate property tests use
//! as the semantic oracle.

use std::cell::Cell;
use std::rc::Rc;

use criterion::{black_box, Criterion};

use plasma_bench::eval::synth;
use plasma_cluster::ServerId;
use plasma_emr::eval::{naive, solve_bound, BoundRule};
use plasma_emr::view::{EvalCtx, EvalFrame};
use plasma_epl::CompiledPolicy;

/// Runs one benchmark and returns its measured mean ns/iter.
fn timed<F>(c: &mut Criterion, name: &str, mut f: F) -> f64
where
    F: FnMut() -> usize,
{
    let mean = Rc::new(Cell::new(0.0));
    let sink = Rc::clone(&mean);
    c.bench_function(name, move |b| {
        b.iter(|| black_box(f()));
        sink.set(b.mean_ns);
    });
    mean.get()
}

fn main() {
    let mut c = Criterion::default();
    let (snap, servers) = synth::synth_world(32, 3000, 0x504C_4153);
    let snap = std::sync::Arc::new(snap);
    let (types, fns) = synth::name_tables();
    let frame = EvalFrame::from_parts(snap, servers.clone(), types, fns);
    let scope: Vec<ServerId> = servers.iter().map(|s| s.id).collect();
    let ctx = EvalCtx::scoped(&frame, &scope);
    let schema = synth::schema();
    let policies: Vec<(&str, CompiledPolicy)> = synth::RULES
        .iter()
        .map(|(name, src)| {
            (
                *name,
                plasma_epl::compile(src, &schema).expect("rule compiles"),
            )
        })
        .collect();

    let (mut naive_total, mut indexed_total) = (0.0f64, 0.0f64);
    for (name, policy) in &policies {
        let rule = &policy.rules[0];
        let bound = BoundRule::bind(rule, &frame);
        // Sanity: identical answers before timing anything.
        assert_eq!(
            solve_bound(&bound, &ctx),
            naive::solve(rule, &ctx),
            "evaluators disagree on {name}"
        );
        let slow = timed(&mut c, &format!("naive/{name}"), || {
            naive::solve(rule, &ctx).len()
        });
        let fast = timed(&mut c, &format!("indexed/{name}"), || {
            solve_bound(&bound, &ctx).len()
        });
        println!("speedup {name:<24} {:>8.1}x", slow / fast);
        naive_total += slow;
        indexed_total += fast;
    }
    // Include bind cost on the indexed side: it runs once per round per
    // rule in production, so charge it once per solve here.
    let bind = timed(&mut c, "indexed/bind_all_rules", || {
        let mut bound = 0;
        for (_, p) in &policies {
            black_box(BoundRule::bind(&p.rules[0], &frame));
            bound += 1;
        }
        bound
    });
    indexed_total += bind;
    let speedup = naive_total / indexed_total;
    println!(
        "eval_hotpath aggregate: naive {naive_total:.0} ns, \
         indexed+bind {indexed_total:.0} ns, speedup {speedup:.1}x"
    );
    assert!(
        speedup >= 3.0,
        "indexed evaluator must be at least 3x the naive walker, got {speedup:.1}x"
    );
}
