//! Tracing overhead microbench: a disabled [`Tracer`] must add no
//! measurable cost to the per-message hot path (tracing is compiled in
//! unconditionally — every runtime carries a `Tracer`, usually disabled),
//! and the enabled path must stay cheap enough for full-run capture.
//!
//! The disabled check is an assertion, not just a printout: the per-message
//! delta between a bare bookkeeping loop and the same loop with a disabled
//! `Tracer::emit` must stay under a generous noise bound.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use plasma::prelude::*;

/// Messages simulated per `iter` call; averaging over a batch keeps the
/// per-message delta stable against timer noise.
const MSGS_PER_ITER: u64 = 8192;

/// Generous per-message bound for "no measurable overhead", in ns. The
/// disabled path is a single `Option` discriminant test; even slow CI
/// machines come in well under this.
const DISABLED_BOUND_NS: f64 = 10.0;

/// Stand-in for the runtime's per-message bookkeeping.
#[inline]
fn account(acc: u64, i: u64) -> u64 {
    acc.wrapping_add(black_box(i) ^ (acc >> 7))
}

fn message_loop(tracer: Option<&Tracer>) -> u64 {
    let mut acc = 0u64;
    for i in 0..MSGS_PER_ITER {
        acc = account(acc, i);
        if let Some(tracer) = tracer {
            tracer.emit(SimTime::from_micros(i), Component::Runtime, None, || {
                TraceEventKind::MessageDeliver {
                    to: i,
                    server: 0,
                    func: 0,
                    forwarded: false,
                }
            });
        }
    }
    acc
}

fn bench_trace_overhead(c: &mut Criterion) {
    let mut bare_ns = 0.0;
    c.bench_function("message_loop_no_tracer", |b| {
        b.iter(|| message_loop(None));
        bare_ns = b.mean_ns;
    });

    let disabled = Tracer::disabled();
    let mut disabled_ns = 0.0;
    c.bench_function("message_loop_disabled_tracer", |b| {
        b.iter(|| message_loop(Some(&disabled)));
        disabled_ns = b.mean_ns;
    });

    // Reference point: the enabled path (ring-buffer append under a mutex).
    let enabled = Tracer::new(TraceConfig::default().capacity(MSGS_PER_ITER as usize));
    c.bench_function("message_loop_enabled_tracer", |b| {
        b.iter(|| message_loop(Some(&enabled)));
    });

    let per_msg_ns = (disabled_ns - bare_ns) / MSGS_PER_ITER as f64;
    println!(
        "trace disabled-path overhead: {per_msg_ns:+.3} ns/message (bound {DISABLED_BOUND_NS} ns)"
    );
    assert!(
        per_msg_ns < DISABLED_BOUND_NS,
        "disabled tracer must be free on the message path: \
         measured {per_msg_ns:.3} ns/message (bare {bare_ns:.1} ns/iter, \
         disabled {disabled_ns:.1} ns/iter, {MSGS_PER_ITER} msgs/iter)"
    );
}

/// End-to-end cross-check: a short closed-loop echo simulation with the
/// default (disabled) tracer vs. one capturing every category. Printed for
/// context; the enabled run is expected to cost more.
fn bench_sim_with_tracing(c: &mut Criterion) {
    struct Echo;
    impl ActorLogic for Echo {
        fn on_message(&mut self, ctx: &mut ActorCtx<'_>, _msg: &mut Message) {
            ctx.work(1e-6);
            ctx.reply(8);
        }
    }
    struct Loop {
        target: ActorId,
    }
    impl ClientLogic for Loop {
        fn on_start(&mut self, ctx: &mut ClientCtx<'_>) {
            ctx.request(self.target, "ping", 8);
        }
        fn on_reply(
            &mut self,
            ctx: &mut ClientCtx<'_>,
            _r: u64,
            _l: SimDuration,
            _p: Option<Payload>,
        ) {
            ctx.request(self.target, "ping", 8);
        }
    }
    let run = |trace: Option<TraceConfig>| {
        let mut rt = Runtime::new(RuntimeConfig {
            seed: 7,
            ..RuntimeConfig::default()
        });
        if let Some(cfg) = trace {
            rt.set_tracer(Tracer::new(cfg));
        }
        let s0 = rt.add_server(InstanceType::m1_small());
        let echo = rt.spawn_actor("Echo", Box::new(Echo), 1 << 10, s0);
        rt.add_client(Box::new(Loop { target: echo }));
        rt.run_until(SimTime::from_secs(2));
        rt.report().replies
    };
    c.bench_function("simulate_2s_echo_tracer_disabled", |b| {
        b.iter(|| black_box(run(None)))
    });
    c.bench_function("simulate_2s_echo_tracer_enabled", |b| {
        b.iter(|| black_box(run(Some(TraceConfig::default()))))
    });
}

criterion_group!(benches, bench_trace_overhead, bench_sim_with_tracing);
criterion_main!(benches);
