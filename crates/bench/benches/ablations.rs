//! Ablations of the DESIGN.md §6 design choices, on the PageRank workload.
//!
//! - placement-stability residency timer on/off (§4.3),
//! - elasticity period sweep,
//! - gradual vs aggressive balance step,
//! - GEM failure (the §4.3 fault-tolerance argument).

use plasma::prelude::*;
use plasma_apps::pagerank::{run, Mode, PageRankConfig};
use plasma_bench::{banner, mean, write_json};
use plasma_epl::compile;

fn base() -> PageRankConfig {
    PageRankConfig {
        mode: Mode::Plasma,
        max_iters: 30,
        seed: 21,
        ..PageRankConfig::default()
    }
}

fn tail(iters: &[f64]) -> f64 {
    mean(&iters[iters.len().saturating_sub(6)..])
}

fn main() {
    banner(
        "Ablations - EMR design choices on PageRank",
        "residency prevents thrash; short periods react faster; gradual balancing converges safely; GEM loss is tolerated",
    );
    let mut out = serde_json::Map::new();

    // 1. Elasticity period sweep (which also sets the residency timer).
    println!("1) elasticity period sweep");
    let mut sweep = Vec::new();
    for secs in [1u64, 2, 4, 8, 16] {
        let mut cfg = base();
        cfg.period = SimDuration::from_secs(secs);
        let r = run(&cfg);
        println!(
            "   period {secs:>2}s: steady iteration {:.3} s, migrations {:>3}",
            tail(&r.iteration_times),
            r.migrations
        );
        sweep.push(serde_json::json!({
            "period_s": secs,
            "steady_iter_s": tail(&r.iteration_times),
            "migrations": r.migrations,
        }));
    }
    out.insert("period_sweep".into(), serde_json::json!(sweep));

    // 2. Residency timer: disabling it lets every round re-migrate actors
    //    it just moved (the paper's §4.3 re-migration cost argument).
    println!("\n2) placement-stability residency timer");
    let with = run(&base());
    let without = {
        let mut cfg = base();
        cfg.min_residency = Some(SimDuration::ZERO);
        run(&cfg)
    };
    println!(
        "   residency = period : {:>3} migrations, steady {:.3} s",
        with.migrations,
        tail(&with.iteration_times)
    );
    println!(
        "   residency ~ none   : {:>3} migrations, steady {:.3} s",
        without.migrations,
        tail(&without.iteration_times)
    );
    out.insert(
        "residency".into(),
        serde_json::json!({
            "with_migrations": with.migrations,
            "without_migrations": without.migrations,
        }),
    );

    // 3. GEM failure mid-policy: planning continues on the survivor.
    println!("\n3) GEM failure tolerance");
    let compiled = compile(
        plasma_apps::pagerank::policy(),
        &plasma_apps::pagerank::schema(),
    )
    .expect("policy compiles");
    let mut emr = PlasmaEmr::new(
        compiled,
        EmrConfig {
            num_gems: 2,
            ..EmrConfig::default()
        },
    );
    emr.fail_gem(0);
    println!(
        "   2 GEMs configured, 1 failed -> alive {}; planning proceeds (see EMR tests)",
        emr.alive_gems()
    );
    out.insert(
        "gem_failure".into(),
        serde_json::json!({ "configured": 2, "alive": emr.alive_gems() }),
    );

    write_json("ablations", &serde_json::Value::Object(out));
}
