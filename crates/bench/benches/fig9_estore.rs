//! Fig. 9: E-Store latency with in-app elasticity vs PLASMA rules vs none.
//!
//! Paper: PLASMA E-Store and the hand-written in-app E-Store elasticity
//! track each other closely, and both clearly beat no elasticity.

use plasma_apps::estore::{run, EstoreConfig, Mode};
use plasma_bench::{banner, print_series, write_json};

fn main() {
    banner(
        "Fig. 9 - E-Store application latency",
        "PLASMA E-Store ~= in-app E-Store, both below no-elasticity",
    );
    let mut out = serde_json::Map::new();
    let mut tails = Vec::new();
    for (mode, tag) in [
        (Mode::Plasma, "PLASMA E-Store"),
        (Mode::Native, "E-Store (in-app)"),
        (Mode::None, "No Elasticity"),
    ] {
        let report = run(&EstoreConfig {
            mode,
            ..EstoreConfig::default()
        });
        let series: Vec<(f64, f64)> = report
            .latency_series
            .buckets()
            .into_iter()
            .map(|(t, v)| (t.as_secs_f64(), v))
            .collect();
        print_series(
            &format!(
                "{tag}: tail latency {:.1} ms, migrations {}",
                report.tail_ms, report.migrations
            ),
            &series,
            18,
        );
        tails.push((tag, report.tail_ms));
        out.insert(
            tag.to_string(),
            serde_json::json!({
                "tail_ms": report.tail_ms,
                "migrations": report.migrations,
                "series": series,
            }),
        );
    }
    println!(
        "\nPLASMA/native latency ratio: {:.2} (paper: close to each other)",
        tails[0].1 / tails[1].1
    );
    println!(
        "elastic vs none improvement: PLASMA {:.0}%, native {:.0}%",
        (1.0 - tails[0].1 / tails[2].1) * 100.0,
        (1.0 - tails[1].1 / tails[2].1) * 100.0
    );
    write_json("fig9_estore", &serde_json::Value::Object(out));
}
