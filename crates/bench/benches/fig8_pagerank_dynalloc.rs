//! Fig. 8: PageRank dynamic resource allocation.
//!
//! PLASMA starts with every worker on one server and provisions instances
//! until all servers sit inside the CPU bounds, ending with fewer servers
//! than conservative provisioning at nearly the same per-iteration time.

use plasma_apps::pagerank::{run, Mode, PageRankConfig};
use plasma_bench::{banner, mean, print_series, write_json};
use plasma_sim::SimDuration;

fn main() {
    banner(
        "Fig. 8 - PageRank dynamic resource allocation",
        "iteration time falls as servers are provisioned; stabilizes in-bounds with ~25% fewer servers than conservative",
    );
    let dynamic = run(&PageRankConfig {
        mode: Mode::Plasma,
        servers: 1,
        auto_scale: true,
        max_servers: 16,
        max_iters: 220,
        work_per_edge: 2.0e-4,
        period: SimDuration::from_secs(4),
        seed: 3,
        ..PageRankConfig::default()
    });

    // (a) Computation time of each iteration.
    println!("(a) iteration times (s)");
    let iters: Vec<(f64, f64)> = dynamic
        .iteration_times
        .iter()
        .enumerate()
        .map(|(i, &v)| (i as f64 + 1.0, v))
        .collect();
    print_series("iteration -> seconds", &iters, 30);

    // (b) CPU% of each server over time.
    println!("\n(b) CPU% of each server per redistribution");
    for (server, series) in &dynamic.server_cpu {
        let vals: Vec<String> = series.iter().map(|&(_, v)| format!("{v:4.2}")).collect();
        println!("   {server:?}: {}", vals.join(" "));
    }

    // (c) Worker distribution over time.
    println!("\n(c) actor distribution per redistribution");
    for (server, series) in &dynamic.server_actors {
        let vals: Vec<String> = series.iter().map(|&(_, v)| format!("{v:3.0}")).collect();
        println!("   {server:?}: {}", vals.join(" "));
    }

    println!("\nrunning servers over time:");
    print_series("servers", &dynamic.server_count, 20);
    let n = dynamic.iteration_times.len();
    println!(
        "\nfinal servers: {} / 16 conservative ({:.0}% saved); first-iteration {:.2}s -> steady {:.2}s",
        dynamic.final_servers,
        (1.0 - dynamic.final_servers as f64 / 16.0) * 100.0,
        dynamic.iteration_times.first().copied().unwrap_or(0.0),
        mean(&dynamic.iteration_times[n.saturating_sub(20)..]),
    );
    write_json(
        "fig8_pagerank_dynalloc",
        &serde_json::json!({
            "iteration_times_s": dynamic.iteration_times,
            "server_count": dynamic.server_count,
            "final_servers": dynamic.final_servers,
            "migrations": dynamic.migrations,
        }),
    );
}
