//! Fig. 7: PageRank dynamic workload balance.
//!
//! (a) normalized per-iteration time: PLASMA's elasticity reduces it up to
//!     ~24% vs without elasticity; Mizan's vertex migration manages ~3%.
//! (b) per-server CPU% over redistribution rounds.
//! (c) per-server worker-actor counts over redistribution rounds.

use plasma_apps::pagerank::{run, Mode, PageRankConfig};
use plasma_bench::{banner, write_json};

fn cfg(mode: Mode) -> PageRankConfig {
    PageRankConfig {
        mode,
        max_iters: 30,
        seed: 21,
        ..PageRankConfig::default()
    }
}

fn main() {
    banner(
        "Fig. 7 - PageRank dynamic workload balance",
        "(a) PLASMA -24% iteration time vs -3% for Mizan; (b,c) CPU and actors converge",
    );
    let plasma = run(&cfg(Mode::Plasma));
    let none = run(&cfg(Mode::None));
    let mizan = run(&cfg(Mode::Mizan));
    let mizan_none = none.clone();

    // (a) Normalize to the first iteration of the respective no-elasticity
    // case, as the paper does.
    let base = none.iteration_times.first().copied().unwrap_or(1.0);
    println!("(a) normalized iteration time (base = first no-elasticity iteration)");
    println!(
        "{:>5} {:>14} {:>14} {:>14} {:>14}",
        "iter", "PLASMA w/", "PLASMA w/o", "Mizan w/", "Mizan w/o"
    );
    let n = plasma
        .iteration_times
        .len()
        .min(none.iteration_times.len())
        .min(mizan.iteration_times.len());
    for i in 0..n {
        println!(
            "{:>5} {:>14.3} {:>14.3} {:>14.3} {:>14.3}",
            i + 1,
            plasma.iteration_times[i] / base,
            none.iteration_times[i] / base,
            mizan.iteration_times[i] / base,
            mizan_none.iteration_times[i] / base,
        );
    }
    let tail = |v: &[f64]| v[v.len().saturating_sub(6)..].iter().sum::<f64>() / 6.0;
    let plasma_gain = 1.0 - tail(&plasma.iteration_times) / tail(&none.iteration_times);
    let mizan_gain = 1.0 - tail(&mizan.iteration_times) / tail(&none.iteration_times);
    println!(
        "\nsteady-state gain: PLASMA {:.0}% (paper: up to 24%), Mizan {:.0}% (paper: up to 3%)",
        plasma_gain * 100.0,
        mizan_gain * 100.0
    );

    // (b) Per-server CPU over redistribution rounds (PLASMA run).
    println!("\n(b) CPU% of each server per redistribution (PLASMA)");
    for (server, series) in &plasma.server_cpu {
        let vals: Vec<String> = series.iter().map(|&(_, v)| format!("{v:4.2}")).collect();
        println!("   {server:?}: {}", vals.join(" "));
    }

    // (c) Worker distribution over redistribution rounds.
    println!("\n(c) actor count of each server per redistribution (PLASMA)");
    for (server, series) in &plasma.server_actors {
        let vals: Vec<String> = series.iter().map(|&(_, v)| format!("{v:3.0}")).collect();
        println!("   {server:?}: {}", vals.join(" "));
    }
    println!("\nmigrations performed by PLASMA: {}", plasma.migrations);
    write_json(
        "fig7_pagerank_balance",
        &serde_json::json!({
            "plasma_iters_s": plasma.iteration_times,
            "none_iters_s": none.iteration_times,
            "mizan_iters_s": mizan.iteration_times,
            "plasma_gain": plasma_gain,
            "mizan_gain": mizan_gain,
            "server_cpu": plasma.server_cpu.iter().map(|(s, v)| (format!("{s:?}"), v.clone())).collect::<Vec<_>>(),
            "server_actors": plasma.server_actors.iter().map(|(s, v)| (format!("{s:?}"), v.clone())).collect::<Vec<_>>(),
            "migrations": plasma.migrations,
        }),
    );
}
