//! Fig. 10: Media Service under a join/leave wave, sweeping the elasticity
//! period (60/120/180 s).
//!
//! Paper: shorter periods react faster — lower latency during the wave
//! (10a) and earlier allocation/reclaiming of servers (10b).

use plasma_apps::media::{run, MediaConfig};
use plasma_bench::{banner, print_series, write_json};
use plasma_sim::SimDuration;

fn main() {
    banner(
        "Fig. 10 - Media Service elasticity-period sweep",
        "60 s period yields the lowest latency and the fastest allocate/reclaim",
    );
    let mut out = serde_json::Map::new();
    for period in [60u64, 120, 180] {
        let report = run(&MediaConfig {
            period: SimDuration::from_secs(period),
            ..MediaConfig::default()
        });
        println!("\n===== elasticity period {period}s =====");
        print_series(
            &format!(
                "latency (mean {:.1} ms, plateau {:.1} ms)",
                report.mean_ms, report.plateau_ms
            ),
            &report.latency_series,
            24,
        );
        print_series(
            &format!(
                "servers (peak {}, final {})",
                report.peak_servers, report.final_servers
            ),
            &report.server_series,
            24,
        );
        out.insert(
            format!("{period}s"),
            serde_json::json!({
                "mean_ms": report.mean_ms,
                "plateau_ms": report.plateau_ms,
                "peak_servers": report.peak_servers,
                "final_servers": report.final_servers,
                "migrations": report.migrations,
                "latency_series": report.latency_series,
                "server_series": report.server_series,
            }),
        );
    }
    write_json("fig10_media", &serde_json::Value::Object(out));
}
