//! Fig. 5: Metadata Server latency under three elasticity setups.
//!
//! Paper: the informed `reserve`+`colocate` rule cuts latency ~40% once the
//! elasticity period elapses, while the application-blind default rule
//! (move the heaviest actor to an idle server) shows no visible benefit
//! over no elasticity at all, because folder accesses drag remote file
//! accesses behind them.

use plasma_apps::metadata::{run, MetadataConfig, Mode};
use plasma_bench::{banner, print_series, write_json};

fn main() {
    banner(
        "Fig. 5 - Metadata Server: res-col-rule vs def-rule vs no-rule",
        "res-col-rule reduces latency ~40%; def-rule ~= no-rule",
    );
    let mut out = serde_json::Map::new();
    let mut after = Vec::new();
    for (mode, tag) in [
        (Mode::ResColRule, "res-col-rule"),
        (Mode::DefRule, "def-rule"),
        (Mode::NoRule, "no-rule"),
    ] {
        let report = run(&MetadataConfig {
            mode,
            ..MetadataConfig::default()
        });
        let series: Vec<(f64, f64)> = report
            .latency_series
            .buckets()
            .into_iter()
            .map(|(t, v)| (t.as_secs_f64(), v))
            .collect();
        print_series(
            &format!(
                "{tag}: before {:.1} ms, after {:.1} ms, migrations {}",
                report.before_ms, report.after_ms, report.migrations
            ),
            &series,
            20,
        );
        after.push((tag, report.after_ms));
        out.insert(
            tag.to_string(),
            serde_json::json!({
                "before_ms": report.before_ms,
                "after_ms": report.after_ms,
                "migrations": report.migrations,
                "series": series,
            }),
        );
    }
    let rescol = after[0].1;
    let norule = after[2].1;
    println!(
        "\nres-col-rule vs no-rule latency reduction: {:.0}% (paper: ~40%)",
        (1.0 - rescol / norule) * 100.0
    );
    println!(
        "def-rule vs no-rule latency reduction: {:.0}% (paper: ~0%)",
        (1.0 - after[1].1 / norule) * 100.0
    );
    write_json("fig5_metadata", &serde_json::Value::Object(out));
}
