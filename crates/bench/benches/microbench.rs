//! Criterion microbenchmarks of the PLASMA building blocks:
//! policy compilation, rule evaluation, the simulation message path, and
//! the EPR's real (wall-clock) bookkeeping cost per message.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use plasma::prelude::*;
use plasma_actor::logic::ActorCtx;
use plasma_actor::stats::ActorCounters;
use plasma_actor::CallerKind;
use plasma_emr::eval::solve;
use plasma_emr::view::{EvalCtx, EvalFrame};
use plasma_epl::compile;
use plasma_sim::rng::Zipf;

fn bench_epl_compile(c: &mut Criterion) {
    let schema = plasma_apps::media::schema();
    let source = plasma_apps::media::policy();
    c.bench_function("epl_compile_media_policy", |b| {
        b.iter(|| compile(black_box(source), black_box(&schema)).unwrap())
    });
}

/// Builds a runtime with a folder/file topology and live traffic, runs it
/// long enough to have a profiling snapshot, and returns it.
fn profiled_runtime() -> Runtime {
    struct Echo;
    impl ActorLogic for Echo {
        fn on_message(&mut self, ctx: &mut ActorCtx<'_>, _msg: &mut Message) {
            ctx.work(0.0005);
            ctx.reply(64);
        }
    }
    struct Loop {
        target: ActorId,
    }
    impl ClientLogic for Loop {
        fn on_start(&mut self, ctx: &mut ClientCtx<'_>) {
            ctx.request(self.target, "open", 64);
        }
        fn on_reply(
            &mut self,
            ctx: &mut ClientCtx<'_>,
            _r: u64,
            _l: SimDuration,
            _p: Option<Payload>,
        ) {
            ctx.request(self.target, "open", 64);
        }
    }
    let mut rt = Runtime::new(RuntimeConfig {
        seed: 1,
        ..RuntimeConfig::default()
    });
    let s0 = rt.add_server(InstanceType::m1_small());
    let s1 = rt.add_server(InstanceType::m1_small());
    for i in 0..24 {
        let folder = rt.spawn_actor(
            "Folder",
            Box::new(Echo),
            1 << 20,
            if i % 2 == 0 { s0 } else { s1 },
        );
        let file = rt.spawn_actor("File", Box::new(Echo), 1 << 20, s0);
        rt.actor_add_ref(folder, "files", file);
        rt.add_client(Box::new(Loop { target: folder }));
    }
    rt.run_until(SimTime::from_secs(3));
    rt
}

fn bench_rule_evaluation(c: &mut Criterion) {
    let rt = profiled_runtime();
    let mut schema = plasma_epl::ActorSchema::new();
    schema.actor_type("Folder").prop("files").func("open");
    schema.actor_type("File").func("read");
    let policy = compile(
        "server.cpu.perc > 1 and client.call(Folder(fo).open).perc > 2 \
         and File(fi) in ref(fo.files) => reserve(fo, cpu); colocate(fo, fi);",
        &schema,
    )
    .unwrap();
    let scope = rt.cluster().running_ids();
    c.bench_function("emr_solve_metadata_rule_48_actors", |b| {
        b.iter(|| {
            let frame = EvalFrame::new(black_box(&rt));
            let ctx = EvalCtx::scoped(&frame, black_box(&scope));
            black_box(solve(&policy.rules[0], &ctx).len())
        })
    });
}

fn bench_message_path(c: &mut Criterion) {
    struct Echo;
    impl ActorLogic for Echo {
        fn on_message(&mut self, ctx: &mut ActorCtx<'_>, _msg: &mut Message) {
            ctx.work(1e-6);
            ctx.reply(8);
        }
    }
    struct Loop {
        target: ActorId,
    }
    impl ClientLogic for Loop {
        fn on_start(&mut self, ctx: &mut ClientCtx<'_>) {
            ctx.request(self.target, "ping", 8);
        }
        fn on_reply(
            &mut self,
            ctx: &mut ClientCtx<'_>,
            _r: u64,
            _l: SimDuration,
            _p: Option<Payload>,
        ) {
            ctx.request(self.target, "ping", 8);
        }
    }
    c.bench_function("simulate_10s_closed_loop_echo", |b| {
        b.iter(|| {
            let mut rt = Runtime::new(RuntimeConfig {
                seed: 2,
                ..RuntimeConfig::default()
            });
            let s = rt.add_server(InstanceType::m1_small());
            let echo = rt.spawn_actor("Echo", Box::new(Echo), 64, s);
            rt.add_client(Box::new(Loop { target: echo }));
            rt.run_until(SimTime::from_secs(10));
            black_box(rt.report().replies)
        })
    });
}

fn bench_epr_bookkeeping(c: &mut Criterion) {
    // The real cost of what the EPR does per message (Table 3's subject).
    c.bench_function("epr_record_call_and_cpu", |b| {
        let mut counters = ActorCounters::default();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            counters.record_call(
                CallerKind::Actor(plasma_actor::ActorTypeId((i % 4) as u32)),
                Some(ActorId(i % 64)),
                plasma_actor::FnId((i % 8) as u32),
                128,
            );
            counters.record_cpu(SimDuration::from_micros(3));
            if i.is_multiple_of(4096) {
                counters.reset();
            }
            black_box(counters.total_received())
        })
    });
}

fn bench_workload_sampling(c: &mut Criterion) {
    let zipf = Zipf::new(1_000, 1.1);
    let mut rng = DetRng::new(9);
    c.bench_function("zipf_sample_1000_ranks", |b| {
        b.iter(|| black_box(zipf.sample(&mut rng)))
    });
}

criterion_group!(
    benches,
    bench_epl_compile,
    bench_rule_evaluation,
    bench_message_path,
    bench_epr_bookkeeping,
    bench_workload_sampling
);
criterion_main!(benches);
