//! Table 1: applications implemented with PLASMA and their elasticity rules.

use plasma_apps::table1::{applications, compile_entry};
use plasma_bench::{banner, write_json};

fn main() {
    banner(
        "Table 1 - Applications implemented with PLASMA",
        "10 applications expressed with 1-6 rules each; all policies compile cleanly",
    );
    let mut rows = Vec::new();
    println!("{:<24} {:>6}  Policy", "Application", "Rules");
    for entry in applications() {
        let compiled = compile_entry(&entry);
        let first_line = entry.policy.lines().next().unwrap_or("");
        println!(
            "{:<24} {:>6}  {}",
            entry.name,
            compiled.rules.len(),
            first_line
        );
        for line in entry.policy.lines().skip(1) {
            println!("{:32}{}", ' ', line.trim());
        }
        for w in &compiled.warnings {
            println!("{:32}[{w}]", ' ');
        }
        rows.push(serde_json::json!({
            "application": entry.name,
            "source": entry.source,
            "rules": compiled.rules.len(),
            "paper_rules": entry.paper_rule_count,
            "policy": entry.policy,
            "warnings": compiled.warnings.len(),
        }));
    }
    // The chat-room microbenchmark rounds out the Table-1 inventory of ten.
    println!(
        "{:<24} {:>6}  (no rules: overhead microbenchmark, Table 3)",
        "Chat room", 0
    );
    write_json("table1_apps", &serde_json::json!({ "rows": rows }));
}
