//! Steady-state decision-round benchmark: incremental [`EvalFrame`]
//! maintenance vs. a from-scratch rebuild.
//!
//! Models the EMR's per-round work on a large world where one profiling
//! window touched ~1% of actors: the patched path applies the window's
//! [`SnapshotDelta`] to the retained frame, the rebuild path re-collects,
//! re-keys, and re-sorts the whole world. The run *asserts* three
//! properties, so a regression in the splice/insert machinery fails
//! `cargo bench --bench frame_maintenance` outright: the patched path is
//! at least 5x faster at full scale (32 servers / 3000 actors), still at
//! least 5x faster at `xl` (128 servers / 50k actors), and the absolute
//! per-round saving (rebuild − patched) grows with world size. The saving
//! is the property that scales: at `xl` both paths stream far more group
//! data than fits in cache, so the *ratio* compresses toward the memory
//! bandwidth floor, but each round banks an order of magnitude more time
//! than at full scale.
//!
//! Before timing anything, the patched frame is checked index-for-index
//! identical to the rebuilt one (the from-scratch builder is the
//! correctness oracle).

use std::cell::Cell;
use std::rc::Rc;
use std::sync::Arc;

use criterion::{black_box, Criterion};

use plasma_actor::stats::SnapshotDelta;
use plasma_bench::eval::synth;
use plasma_emr::view::EvalFrame;

/// Runs one benchmark and returns its measured mean ns/iter.
fn timed<F>(c: &mut Criterion, name: &str, mut f: F) -> f64
where
    F: FnMut() -> usize,
{
    let mean = Rc::new(Cell::new(0.0));
    let sink = Rc::clone(&mean);
    c.bench_function(name, move |b| {
        b.iter(|| black_box(f()));
        sink.set(b.mean_ns);
    });
    mean.get()
}

fn main() {
    let mut c = Criterion::default();
    let mut ratios = Vec::new();
    for (label, n_servers, n_actors) in [("full", 32u32, 3000u64), ("xl", 128, 50_000)] {
        let (snap0, servers) = synth::synth_world(n_servers, n_actors, 0x504C_4153);
        let snap1 = synth::churn_world(&snap0, 0.01, 0x6368_7572_6E ^ n_actors);
        let (snap0, snap1) = (Arc::new(snap0), Arc::new(snap1));
        let forward = SnapshotDelta::between(&snap0, &snap1);
        let backward = SnapshotDelta::between(&snap1, &snap0);
        let (types, fns) = synth::name_tables();

        // Correctness first: one patched step must equal the oracle rebuild.
        let mut patched = EvalFrame::from_parts(
            Arc::clone(&snap0),
            servers.clone(),
            types.clone(),
            fns.clone(),
        );
        assert!(
            patched.apply(Arc::clone(&snap1), servers.clone(), &forward),
            "forward delta refused"
        );
        let oracle = EvalFrame::from_parts(
            Arc::clone(&snap1),
            servers.clone(),
            types.clone(),
            fns.clone(),
        );
        patched.assert_same_indexes(&oracle);
        assert!(
            patched.apply(Arc::clone(&snap0), servers.clone(), &backward),
            "backward delta refused"
        );

        // Patched: ping-pong the two generations so every iteration applies
        // two steady-state deltas against a warm retained frame.
        let mut frame = patched;
        let (s0, s1, sv) = (Arc::clone(&snap0), Arc::clone(&snap1), servers.clone());
        let patch_ns = timed(&mut c, &format!("frame_patch/{label}"), move || {
            assert!(frame.apply(Arc::clone(&s1), sv.clone(), &forward));
            assert!(frame.apply(Arc::clone(&s0), sv.clone(), &backward));
            2
        }) / 2.0;

        // Rebuild: the pre-incremental per-round cost, same two generations.
        let (s0, s1, sv) = (Arc::clone(&snap0), Arc::clone(&snap1), servers.clone());
        let (ty, fu) = (types.clone(), fns.clone());
        let rebuild_ns = timed(&mut c, &format!("frame_rebuild/{label}"), move || {
            let a = EvalFrame::from_parts(Arc::clone(&s1), sv.clone(), ty.clone(), fu.clone());
            let b = EvalFrame::from_parts(Arc::clone(&s0), sv.clone(), ty.clone(), fu.clone());
            black_box(a.generation() as usize + b.generation() as usize)
        }) / 2.0;

        let ratio = rebuild_ns / patch_ns;
        let gain = rebuild_ns - patch_ns;
        println!(
            "frame_maintenance {label:<5} ({n_servers} servers / {n_actors} actors, 1% churn): \
             rebuild {rebuild_ns:.0} ns, patched {patch_ns:.0} ns, speedup {ratio:.1}x, \
             saved/round {gain:.0} ns"
        );
        ratios.push((label, ratio, gain));
    }
    let (_, full_ratio, full_gain) = ratios[0];
    let (_, xl_ratio, xl_gain) = ratios[1];
    assert!(
        full_ratio >= 5.0,
        "patched frame maintenance must be at least 5x a full rebuild at full scale, \
         got {full_ratio:.1}x"
    );
    assert!(
        xl_ratio >= 5.0,
        "patched frame maintenance must stay at least 5x a full rebuild at xl scale, \
         got {xl_ratio:.1}x"
    );
    assert!(
        xl_gain > full_gain,
        "the absolute per-round saving must grow with world size, \
         got {full_gain:.0} ns at full vs {xl_gain:.0} ns at xl"
    );
}
