//! Fig. 11: Halo Presence Service.
//!
//! (a) interaction rule vs frequency-based default rule: smooth vs spiky
//!     latency as clients join in waves.
//! (b) per-client latency in the first round: lucky placements ~20 ms,
//!     unlucky ~35% higher until re-distribution.
//! (c) router CPU balance with 1/2/4 GEMs: similar latency curves.

use plasma_apps::halo::{run, run_scale, HaloConfig, HaloScaleConfig, Mode};
use plasma_bench::{banner, print_series, write_json};

fn main() {
    banner(
        "Fig. 11 - Halo Presence Service",
        "(a) inter-rule smooth vs def-rule spiky; (b) per-client placement spread; (c) GEM count barely matters",
    );
    // (a) interaction vs default rule.
    let inter = run(&HaloConfig::default());
    let def = run(&HaloConfig {
        mode: Mode::DefRule,
        ..HaloConfig::default()
    });
    println!("(a) average heartbeat latency");
    print_series(
        &format!(
            "inter-rule (mean {:.1} ms, peak {:.1} ms)",
            inter.mean_ms, inter.peak_ms
        ),
        &inter.latency_series,
        24,
    );
    print_series(
        &format!(
            "def-rule (mean {:.1} ms, peak {:.1} ms)",
            def.mean_ms, def.peak_ms
        ),
        &def.latency_series,
        24,
    );

    // (b) per-client latency under the default rule, first round.
    let single = run(&HaloConfig {
        mode: Mode::DefRule,
        rounds: 1,
        clients: 8,
        ..HaloConfig::default()
    });
    println!("\n(b) per-client latency with the default rule (first round)");
    for (client, series) in &single.client_latency {
        let first = series.first().map(|&(_, v)| v).unwrap_or(0.0);
        let last = series.last().map(|&(_, v)| v).unwrap_or(0.0);
        println!("   c{client}: first bucket {first:>6.1} ms -> final {last:>6.1} ms");
    }

    // (c) GEM-count sweep with the resource rule.
    println!("\n(c) router balance with 1/2/4 GEMs");
    let mut gems_out = Vec::new();
    for gems in [1usize, 2, 4] {
        let r = run_scale(&HaloScaleConfig {
            gems,
            ..HaloScaleConfig::default()
        });
        print_series(
            &format!(
                "{gems} GEM(s): tail {:.1} ms, migrations {}",
                r.tail_ms, r.migrations
            ),
            &r.latency_series,
            16,
        );
        gems_out.push(serde_json::json!({
            "gems": gems,
            "tail_ms": r.tail_ms,
            "migrations": r.migrations,
            "series": r.latency_series,
        }));
    }
    write_json(
        "fig11_halo",
        &serde_json::json!({
            "inter_rule": { "mean_ms": inter.mean_ms, "peak_ms": inter.peak_ms, "series": inter.latency_series },
            "def_rule": { "mean_ms": def.mean_ms, "peak_ms": def.peak_ms, "series": def.latency_series },
            "per_client_first_round": single.client_latency,
            "gem_sweep": gems_out,
        }),
    );
}
