//! Deterministic random number generation for workload and topology models.
//!
//! The simulation must be reproducible byte-for-byte across platforms and
//! dependency upgrades, so it uses an in-tree xoshiro256** generator (public
//! domain algorithm by Blackman & Vigna) seeded through SplitMix64 instead of
//! depending on a particular `rand` version. The distributions implemented
//! here are exactly the ones the paper's workloads need: uniform, Bernoulli,
//! normal (client join/leave times in §5.6), exponential (open-loop request
//! inter-arrivals), and Zipf (hot-key skew in §5.3/§5.5).

/// A deterministic xoshiro256** pseudo-random generator.
///
/// # Examples
///
/// ```
/// use plasma_sim::DetRng;
///
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct DetRng {
    s: [u64; 4],
    /// Cached second output of the Box-Muller transform.
    gauss_spare: Option<f64>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Two generators created with the same seed produce identical streams.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng {
            s,
            gauss_spare: None,
        }
    }

    /// Derives an independent child generator.
    ///
    /// Useful to give each client / server / app component its own stream so
    /// that adding draws in one component does not perturb another.
    pub fn fork(&mut self, label: u64) -> DetRng {
        DetRng::new(self.next_u64() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Returns the next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // Use the top 53 bits for a uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire's multiply-shift rejection method keeps the draw unbiased.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Returns a uniform index in `[0, len)` as `usize`.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Returns a uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Draws from a normal distribution via the Box-Muller transform.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return mean + std_dev * z;
        }
        // Box-Muller: two uniforms to two independent standard normals.
        let u1 = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        mean + std_dev * r * theta.cos()
    }

    /// Draws from an exponential distribution with the given mean.
    ///
    /// Used for open-loop Poisson request arrivals.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Draws from a log-normal distribution parameterized by the mean and
    /// standard deviation of the underlying normal.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Shuffles a slice in place (Fisher-Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.index(items.len())]
    }

    /// Samples an index in `[0, weights.len())` proportionally to `weights`.
    ///
    /// Non-finite or negative weights are treated as zero. Falls back to a
    /// uniform draw when all weights are zero.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weighted_index on empty weights");
        let clean = |w: f64| if w.is_finite() && w > 0.0 { w } else { 0.0 };
        let total: f64 = weights.iter().copied().map(clean).sum();
        if total <= 0.0 {
            return self.index(weights.len());
        }
        let mut target = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            let w = clean(w);
            if target < w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }
}

/// A Zipf-distributed sampler over ranks `0..n`.
///
/// Rank `k` (0-based) is drawn with probability proportional to
/// `1 / (k + 1)^exponent`. Precomputes the CDF once, so draws are a binary
/// search — fast enough for per-request sampling in workload generators.
///
/// # Examples
///
/// ```
/// use plasma_sim::rng::Zipf;
/// use plasma_sim::DetRng;
///
/// let mut rng = DetRng::new(7);
/// let zipf = Zipf::new(100, 1.0);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 100);
/// ```
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with the given skew exponent.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "Zipf over zero ranks");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(exponent);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draws a rank in `[0, n)`.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let u = rng.next_f64();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("CDF is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Returns the number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` if the sampler has exactly one rank.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = DetRng::new(123);
        let mut b = DetRng::new(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn fork_is_independent() {
        let mut parent = DetRng::new(9);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = DetRng::new(5);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut rng = DetRng::new(17);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.below(10) as usize] += 1;
        }
        for &c in &counts {
            // Each bucket expects 10_000; allow 10% slack.
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = DetRng::new(23);
        let n = 200_000;
        let (mut sum, mut sum_sq) = (0.0, 0.0);
        for _ in 0..n {
            let x = rng.normal(5.0, 2.0);
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = DetRng::new(31);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(0.5)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let mut rng = DetRng::new(41);
        let zipf = Zipf::new(100, 1.0);
        let mut counts = vec![0u32; 100];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = DetRng::new(51);
        let weights = [0.0, 3.0, 1.0];
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((2.5..3.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn weighted_index_all_zero_falls_back_to_uniform() {
        let mut rng = DetRng::new(52);
        let weights = [0.0, 0.0];
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[rng.weighted_index(&weights)] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DetRng::new(61);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements staying sorted is ~impossible");
    }

    #[test]
    fn choose_returns_member() {
        let mut rng = DetRng::new(71);
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(rng.choose(&items)));
        }
    }
}
