//! Virtual time for the simulation: instants and durations in microseconds.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point in virtual time, counted in microseconds since simulation start.
///
/// `SimTime` is a plain `u64` wrapper so it is cheap to copy, totally
/// ordered, and hashable. All arithmetic with [`SimDuration`] saturates at
/// zero rather than panicking on underflow, because clock skew of control
/// messages can legitimately produce "before start" computations.
///
/// # Examples
///
/// ```
/// use plasma_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(2);
/// assert_eq!(t.as_micros(), 2_000_000);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_secs(2));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of virtual time in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant, used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from microseconds since simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from milliseconds since simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates an instant from seconds since simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Returns the microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the time as fractional seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the duration elapsed since `earlier`, or zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable duration, used as an "infinite" sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// microsecond and clamping negatives to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e6).round() as u64)
    }

    /// Returns the duration in whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns true if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the duration by a non-negative factor, saturating on
    /// overflow.
    pub fn mul_f64(self, factor: f64) -> Self {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs(1).as_secs_f64(), 1.0);
        assert_eq!(SimDuration::from_millis(250).as_millis_f64(), 250.0);
    }

    #[test]
    fn from_secs_f64_clamps_and_rounds() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1.5e-6).as_micros(), 2);
        assert_eq!(SimDuration::from_secs_f64(0.25).as_micros(), 250_000);
    }

    #[test]
    fn arithmetic_saturates() {
        let t = SimTime::from_secs(1);
        assert_eq!(t - SimDuration::from_secs(5), SimTime::ZERO);
        assert_eq!(SimTime::ZERO - SimTime::from_secs(1), SimDuration::ZERO);
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(999) < SimDuration::from_secs(1));
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_secs(2).mul_f64(0.25);
        assert_eq!(d, SimDuration::from_millis(500));
        assert_eq!(SimDuration::from_secs(1).mul_f64(-3.0), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn saturating_since() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(4);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(3));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }
}
