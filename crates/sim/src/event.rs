//! A stable-order event queue: the heart of the discrete-event simulation.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A timestamped event with a tie-breaking sequence number.
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        // Ties break by insertion order (seq) for full determinism.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of timestamped events with deterministic FIFO
/// tie-breaking.
///
/// Events scheduled for the same instant pop in the order they were pushed,
/// which makes whole-simulation runs reproducible independent of hash-map
/// iteration order or heap internals.
///
/// # Examples
///
/// ```
/// use plasma_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "late");
/// q.push(SimTime::from_secs(1), "early");
/// q.push(SimTime::from_secs(1), "early-2");
///
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "early-2")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "late")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    pushed: u64,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            pushed: 0,
            popped: 0,
        }
    }

    /// Schedules `event` to fire at `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        self.popped += 1;
        Some((s.at, s.event))
    }

    /// Returns the timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Pops the earliest event only if it fires exactly at `at` and `accept`
    /// approves it; otherwise leaves the queue untouched.
    ///
    /// This is the same-tick coalescing primitive: an event-loop handler
    /// that can batch a run of homogeneous events (e.g. message deliveries
    /// bound for one server) drains them with repeated `pop_at_if` calls
    /// and performs the follow-up work once. FIFO tie order is preserved —
    /// the candidate offered to `accept` is always the exact event `pop`
    /// would return next.
    pub fn pop_at_if<F>(&mut self, at: SimTime, accept: F) -> Option<E>
    where
        F: FnOnce(&E) -> bool,
    {
        let head = self.heap.peek()?;
        if head.at != at || !accept(&head.event) {
            return None;
        }
        self.popped += 1;
        Some(self.heap.pop().expect("peeked event present").event)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Returns the total number of events ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Returns the total number of events ever popped.
    pub fn total_popped(&self) -> u64 {
        self.popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(30), 3);
        q.push(SimTime::from_micros(10), 1);
        q.push(SimTime::from_micros(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), "b");
        q.push(SimTime::from_secs(1), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(SimTime::from_secs(3), "c");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn pop_at_if_only_drains_matching_same_tick_events() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.push(t, 1);
        q.push(t, 2);
        q.push(t, 9);
        q.push(SimTime::from_secs(2), 3);
        // Wrong instant: untouched.
        assert_eq!(q.pop_at_if(SimTime::from_secs(0), |_| true), None);
        // Drains the accepted same-tick run in FIFO order, stopping at the
        // first rejected event.
        let mut run = Vec::new();
        while let Some(e) = q.pop_at_if(t, |&e| e < 5) {
            run.push(e);
        }
        assert_eq!(run, vec![1, 2]);
        // The rejected event is still next, in order.
        assert_eq!(q.pop(), Some((t, 9)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), 3)));
        assert_eq!(q.total_popped(), 4);
    }

    #[test]
    fn counters_and_peek() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(2), ());
        q.push(SimTime::from_secs(1), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        q.pop();
        assert_eq!(q.total_pushed(), 2);
        assert_eq!(q.total_popped(), 1);
    }
}
