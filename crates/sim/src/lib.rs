#![warn(missing_docs)]

//! Deterministic discrete-event simulation kernel for the PLASMA workspace.
//!
//! This crate provides the low-level machinery every other PLASMA crate is
//! built on:
//!
//! - [`SimTime`] / [`SimDuration`] — a virtual clock in integer microseconds.
//! - [`EventQueue`] — a stable-order priority queue of timestamped events.
//! - [`DetRng`] — a seedable xoshiro256** generator with the distributions
//!   the workload generators need (uniform, normal, exponential, Zipf).
//! - [`metrics`] — counters, histograms, windowed rates and time series used
//!   by the profiling runtime and the benchmark harnesses.
//!
//! Nothing in this crate knows about actors or servers; it is a generic
//! simulation substrate. Determinism is a hard requirement: given the same
//! seed and the same sequence of calls, every type here produces identical
//! results on every platform, which is what makes the paper-figure harnesses
//! reproducible byte-for-byte.

pub mod event;
pub mod metrics;
pub mod rng;
pub mod time;

pub use event::EventQueue;
pub use rng::DetRng;
pub use time::{SimDuration, SimTime};
