//! Measurement primitives used by the profiling runtime and bench harnesses.
//!
//! Three kinds of instruments cover everything the paper reports:
//!
//! - [`Histogram`] — full-sample distribution with exact quantiles, used for
//!   request latencies.
//! - [`TimeSeries`] — `(time, value)` pairs, used for per-server CPU%, actor
//!   counts, and server counts over time (Figs. 5, 7-11).
//! - [`BucketedSeries`] — aggregates raw observations into fixed windows
//!   (e.g., mean latency per second), matching how the paper plots latency.

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// A monotonically increasing event counter.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Returns the current count.
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// An exact-quantile histogram that retains every sample.
///
/// Simulation runs produce at most a few million samples per instrument, so
/// retaining them all is affordable and gives exact quantiles. Samples are
/// sorted lazily on the first quantile query after an insert.
///
/// # Examples
///
/// ```
/// use plasma_sim::metrics::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [1.0, 2.0, 3.0, 4.0] {
///     h.record(v);
/// }
/// assert_eq!(h.len(), 4);
/// assert_eq!(h.mean(), 2.5);
/// assert_eq!(h.quantile(0.5), 2.0);
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
    sum: f64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            samples: Vec::new(),
            sorted: true,
            sum: 0.0,
        }
    }

    /// Records one observation. Non-finite values are ignored.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.samples.push(value);
        self.sum += value;
        self.sorted = false;
    }

    /// Returns the number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Returns the arithmetic mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.sum / self.samples.len() as f64
        }
    }

    /// Returns the minimum sample, or 0 when empty.
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Returns the maximum sample, or 0 when empty.
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Returns the `q`-quantile (`q` clamped to `[0, 1]`), or 0 when empty.
    ///
    /// Uses the nearest-rank method on the sorted sample set.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.samples
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
            self.sorted = true;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.samples.len() as f64).ceil() as usize).clamp(1, self.samples.len());
        self.samples[rank - 1]
    }

    /// Returns the median.
    pub fn median(&mut self) -> f64 {
        self.quantile(0.5)
    }

    /// Returns the standard deviation, or 0 when fewer than two samples.
    pub fn std_dev(&self) -> f64 {
        let n = self.samples.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .samples
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / (n - 1) as f64;
        var.sqrt()
    }
}

/// A `(time, value)` series, the backing store for every paper figure.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Appends an observation. Timestamps should be non-decreasing; callers
    /// that violate this only affect their own plots.
    pub fn push(&mut self, at: SimTime, value: f64) {
        self.points.push((at, value));
    }

    /// Returns the raw points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Returns the number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Returns the last value, if any.
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Returns the mean of values observed in `[from, to)`.
    pub fn mean_in(&self, from: SimTime, to: SimTime) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for &(t, v) in &self.points {
            if t >= from && t < to {
                sum += v;
                n += 1;
            }
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// Returns the mean over the whole series.
    pub fn mean(&self) -> Option<f64> {
        self.mean_in(SimTime::ZERO, SimTime::MAX)
    }

    /// Returns the maximum value over the whole series.
    pub fn max(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.max(v)))
            })
    }
}

/// Aggregates raw observations into fixed-width time windows.
///
/// The paper's latency plots (Figs. 5, 9, 10a, 11a) report the mean latency
/// per wall-clock bucket; this type reproduces that aggregation.
///
/// # Examples
///
/// ```
/// use plasma_sim::metrics::BucketedSeries;
/// use plasma_sim::{SimDuration, SimTime};
///
/// let mut s = BucketedSeries::new(SimDuration::from_secs(1));
/// s.record(SimTime::from_millis(100), 10.0);
/// s.record(SimTime::from_millis(900), 20.0);
/// s.record(SimTime::from_millis(1_500), 40.0);
/// let buckets = s.buckets();
/// assert_eq!(buckets.len(), 2);
/// assert_eq!(buckets[0], (SimTime::ZERO, 15.0));
/// assert_eq!(buckets[1], (SimTime::from_secs(1), 40.0));
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BucketedSeries {
    width: SimDuration,
    /// Per-bucket `(sum, count)` indexed by bucket number.
    acc: Vec<(f64, u64)>,
}

impl BucketedSeries {
    /// Creates a series with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: SimDuration) -> Self {
        assert!(!width.is_zero(), "bucket width must be positive");
        BucketedSeries {
            width,
            acc: Vec::new(),
        }
    }

    /// Records one observation at the given time.
    pub fn record(&mut self, at: SimTime, value: f64) {
        if !value.is_finite() {
            return;
        }
        let idx = (at.as_micros() / self.width.as_micros()) as usize;
        if idx >= self.acc.len() {
            self.acc.resize(idx + 1, (0.0, 0));
        }
        let (sum, n) = &mut self.acc[idx];
        *sum += value;
        *n += 1;
    }

    /// Returns `(bucket_start, mean)` for every non-empty bucket.
    pub fn buckets(&self) -> Vec<(SimTime, f64)> {
        self.acc
            .iter()
            .enumerate()
            .filter(|(_, (_, n))| *n > 0)
            .map(|(i, (sum, n))| {
                (
                    SimTime::from_micros(i as u64 * self.width.as_micros()),
                    sum / *n as f64,
                )
            })
            .collect()
    }

    /// Returns the total number of observations.
    pub fn count(&self) -> u64 {
        self.acc.iter().map(|(_, n)| n).sum()
    }

    /// Returns the mean across all observations (not across buckets).
    pub fn overall_mean(&self) -> Option<f64> {
        let count = self.count();
        (count > 0).then(|| self.acc.iter().map(|(s, _)| s).sum::<f64>() / count as f64)
    }
}

/// Deterministic five-number summary of a sample set.
///
/// The evaluation harness folds whole series (decision latencies, iteration
/// times, per-server CPU) into scalar metrics with this type; every field is
/// a pure function of the input samples, so same-seed runs summarize to
/// bit-identical values.
///
/// # Examples
///
/// ```
/// use plasma_sim::metrics::Summary;
///
/// let s = Summary::of(&[4.0, 1.0, 3.0, 2.0]);
/// assert_eq!(s.count, 4);
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// assert_eq!(s.p50, 2.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of finite samples summarized.
    pub count: u64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
    /// Median by the nearest-rank method (0 when empty).
    pub p50: f64,
    /// 95th percentile by the nearest-rank method (0 when empty).
    pub p95: f64,
}

impl Summary {
    /// Summarizes `samples`, ignoring non-finite values.
    pub fn of(samples: &[f64]) -> Self {
        let mut h = Histogram::new();
        for &v in samples {
            h.record(v);
        }
        Self::of_histogram(&mut h)
    }

    /// Summarizes an already-populated histogram.
    pub fn of_histogram(h: &mut Histogram) -> Self {
        Summary {
            count: h.len() as u64,
            mean: h.mean(),
            min: h.min(),
            max: h.max(),
            p50: h.quantile(0.5),
            p95: h.quantile(0.95),
        }
    }

    /// Coefficient of variation (`std-dev`-free spread proxy):
    /// `(max - min) / mean`, 0 when empty or when the mean is ~0.
    ///
    /// Used for end-state balance scores, where "how far apart are the
    /// busiest and idlest servers relative to typical load" is the question
    /// the paper's band rules answer.
    pub fn relative_spread(&self) -> f64 {
        if self.count == 0 || self.mean.abs() < 1e-9 {
            0.0
        } else {
            (self.max - self.min) / self.mean
        }
    }
}

/// Tracks cumulative busy time to derive utilization over a window.
///
/// Servers accumulate "busy lane-seconds"; at the end of each profiling
/// window, utilization is `busy / (window × capacity)`.
#[derive(Clone, Debug, Default)]
pub struct BusyMeter {
    /// Busy time accumulated in the current window, in lane-microseconds.
    busy_us: u64,
    window_start: SimTime,
}

impl BusyMeter {
    /// Creates a meter with the window starting at time zero.
    pub fn new() -> Self {
        BusyMeter::default()
    }

    /// Adds busy time (one lane busy for `d`).
    pub fn add_busy(&mut self, d: SimDuration) {
        self.busy_us += d.as_micros();
    }

    /// Closes the window at `now` and returns utilization in `[0, 1]` given
    /// `capacity` parallel lanes, then starts a new window.
    ///
    /// Returns 0 for an empty window.
    pub fn roll(&mut self, now: SimTime, capacity: u32) -> f64 {
        let elapsed = now.saturating_since(self.window_start).as_micros();
        let util = if elapsed == 0 || capacity == 0 {
            0.0
        } else {
            (self.busy_us as f64 / (elapsed as f64 * capacity as f64)).min(1.0)
        };
        self.busy_us = 0;
        self.window_start = now;
        util
    }

    /// Returns the busy time accumulated so far in this window.
    pub fn pending_busy(&self) -> SimDuration {
        SimDuration::from_micros(self.busy_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        for v in [4.0, 1.0, 3.0, 2.0, 5.0] {
            h.record(v);
        }
        assert_eq!(h.len(), 5);
        assert_eq!(h.mean(), 3.0);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 5.0);
        assert_eq!(h.median(), 3.0);
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(1.0), 5.0);
        assert!((h.std_dev() - 1.5811).abs() < 1e-3);
    }

    #[test]
    fn histogram_ignores_non_finite() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn histogram_quantile_after_more_records() {
        let mut h = Histogram::new();
        h.record(10.0);
        assert_eq!(h.quantile(0.5), 10.0);
        h.record(0.0);
        // Re-sorts lazily after the new sample.
        assert_eq!(h.quantile(0.0), 0.0);
    }

    #[test]
    fn time_series_window_mean() {
        let mut s = TimeSeries::new();
        s.push(SimTime::from_secs(1), 10.0);
        s.push(SimTime::from_secs(2), 20.0);
        s.push(SimTime::from_secs(3), 60.0);
        assert_eq!(
            s.mean_in(SimTime::from_secs(1), SimTime::from_secs(3)),
            Some(15.0)
        );
        assert_eq!(s.mean(), Some(30.0));
        assert_eq!(s.max(), Some(60.0));
        assert_eq!(s.last(), Some(60.0));
    }

    #[test]
    fn bucketed_series_aggregates() {
        let mut s = BucketedSeries::new(SimDuration::from_secs(2));
        s.record(SimTime::from_secs(0), 2.0);
        s.record(SimTime::from_secs(1), 4.0);
        s.record(SimTime::from_secs(5), 8.0);
        let b = s.buckets();
        assert_eq!(b.len(), 2);
        assert_eq!(b[0].1, 3.0);
        assert_eq!(b[1].0, SimTime::from_secs(4));
        assert_eq!(s.count(), 3);
        assert!((s.overall_mean().unwrap() - 14.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn summary_is_deterministic_and_exact() {
        let s = Summary::of(&[5.0, 1.0, 2.0, 4.0, 3.0]);
        assert_eq!(s.count, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.p95, 5.0);
        assert_eq!(s, Summary::of(&[5.0, 1.0, 2.0, 4.0, 3.0]));
        assert!((s.relative_spread() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn summary_handles_empty_and_non_finite() {
        let s = Summary::of(&[f64::NAN, f64::INFINITY]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.relative_spread(), 0.0);
    }

    #[test]
    fn busy_meter_utilization() {
        let mut m = BusyMeter::new();
        m.add_busy(SimDuration::from_millis(500));
        // 0.5s busy over a 1s window with 1 lane → 50%.
        let u = m.roll(SimTime::from_secs(1), 1);
        assert!((u - 0.5).abs() < 1e-9);
        // Second window: 1s busy on 2 lanes over 1s → 50%.
        m.add_busy(SimDuration::from_secs(1));
        let u = m.roll(SimTime::from_secs(2), 2);
        assert!((u - 0.5).abs() < 1e-9);
    }

    #[test]
    fn busy_meter_caps_at_one() {
        let mut m = BusyMeter::new();
        m.add_busy(SimDuration::from_secs(10));
        assert_eq!(m.roll(SimTime::from_secs(1), 1), 1.0);
    }

    #[test]
    fn busy_meter_empty_window() {
        let mut m = BusyMeter::new();
        assert_eq!(m.roll(SimTime::ZERO, 4), 0.0);
    }
}
