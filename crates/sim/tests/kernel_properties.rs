//! Property tests of the simulation kernel.

use plasma_sim::metrics::{BucketedSeries, Histogram};
use plasma_sim::rng::Zipf;
use plasma_sim::{DetRng, EventQueue, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Events always pop in non-decreasing time order, and same-time events
    /// pop in insertion order.
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        let mut popped = 0;
        while let Some((t, i)) = q.pop() {
            popped += 1;
            if let Some((lt, li)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(i > li, "FIFO within a timestamp");
                }
            }
            last = Some((t, i));
        }
        prop_assert_eq!(popped, times.len());
    }

    /// The histogram's quantiles are actual sample values and ordered.
    #[test]
    fn histogram_quantiles_are_monotone_samples(values in proptest::collection::vec(0.0f64..1e6, 1..300)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut prev = f64::NEG_INFINITY;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let x = h.quantile(q);
            prop_assert!(values.contains(&x), "quantile must be a sample");
            prop_assert!(x >= prev);
            prev = x;
        }
        prop_assert!(h.min() <= h.mean() && h.mean() <= h.max());
    }

    /// Bucketed means always lie within the range of raw observations.
    #[test]
    fn bucketed_series_means_bounded(
        obs in proptest::collection::vec((0u64..100_000, 0.0f64..1e4), 1..200),
        width_ms in 1u64..5_000,
    ) {
        let mut s = BucketedSeries::new(SimDuration::from_millis(width_ms));
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(t, v) in &obs {
            s.record(SimTime::from_millis(t), v);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        prop_assert_eq!(s.count(), obs.len() as u64);
        for (_, mean) in s.buckets() {
            prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9);
        }
    }

    /// Uniform draws stay in range for arbitrary bounds.
    #[test]
    fn rng_below_in_range(seed in 0u64..u64::MAX, n in 1u64..1_000_000) {
        let mut rng = DetRng::new(seed);
        for _ in 0..64 {
            prop_assert!(rng.below(n) < n);
        }
    }

    /// Zipf ranks stay in range for any skew.
    #[test]
    fn zipf_in_range(seed in 0u64..u64::MAX, n in 1usize..500, exp in 0.0f64..3.0) {
        let zipf = Zipf::new(n, exp);
        let mut rng = DetRng::new(seed);
        for _ in 0..64 {
            prop_assert!(zipf.sample(&mut rng) < n);
        }
    }

    /// Forked streams never equal the parent stream over a prefix.
    #[test]
    fn forked_rng_diverges(seed in 0u64..u64::MAX) {
        let mut parent = DetRng::new(seed);
        let mut child = parent.fork(1);
        let mut same = 0;
        for _ in 0..32 {
            if parent.next_u64() == child.next_u64() {
                same += 1;
            }
        }
        prop_assert!(same < 4);
    }
}
