//! `plasma-trace` — deterministic structured tracing and elasticity
//! decision audit for the PLASMA simulator.
//!
//! The simulator's elasticity loop makes layered decisions — EPL rules
//! match, the GEM proposes a plan, destination LEMs admit or reject each
//! migration via QUERY/QREPLY, and the runtime performs the transfers.
//! This crate records that whole pipeline as a stream of causally linked
//! [`TraceEvent`]s so a run can be *replayed and interrogated* after the
//! fact:
//!
//! * [`event`] — the event model: one [`TraceEventKind`] per interesting
//!   occurrence (message send/deliver, actor lifecycle, migration,
//!   rule evaluation, plan proposal, admission, scale vote, server
//!   boot/drain), each stamped with [`SimTime`](plasma_sim::SimTime), the
//!   originating [`Component`], and a causal `parent` id.
//! * [`record`] — the bounded-memory [`Recorder`] ring buffer behind a
//!   cheap cloneable [`Tracer`] handle. A disabled tracer is a no-op: one
//!   branch per call site, no event construction.
//! * [`export`] — deterministic serializers to JSON Lines and Chrome
//!   `trace_event` JSON (loadable in Perfetto / `chrome://tracing`),
//!   conventionally written under `target/plasma-results/`.
//! * [`audit`] — [`explain`]: reconstructs the
//!   rule → plan → admission → migration chain for an actor at a point in
//!   simulated time.
//!
//! Because the simulator itself is deterministic, two runs with the same
//! seed produce byte-identical JSONL traces — the regression suite pins
//! that property.

pub mod audit;
pub mod event;
pub mod export;
pub mod record;

pub use audit::{explain, render_explanation};
pub use event::{Category, CategorySet, Component, EventId, TraceEvent, TraceEventKind};
pub use export::{results_dir, to_chrome_trace, to_jsonl, write_under};
pub use record::{Recorder, Subscriber, TraceConfig, Tracer};

impl Tracer {
    /// Renders the retained events as JSON Lines (see [`export::to_jsonl`]).
    pub fn jsonl(&self) -> String {
        to_jsonl(&self.events())
    }

    /// Renders the retained events in Chrome `trace_event` format (see
    /// [`export::to_chrome_trace`]).
    pub fn chrome_trace(&self) -> String {
        to_chrome_trace(&self.events())
    }

    /// Reconstructs the decision chain for `actor` at or before `at` from
    /// the retained events (see [`audit::explain`]).
    pub fn explain(&self, actor: u64, at: plasma_sim::SimTime) -> Vec<TraceEvent> {
        explain(&self.events(), actor, at)
    }
}
