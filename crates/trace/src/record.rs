//! Bounded-memory recording: the [`Recorder`] ring buffer and the cheap
//! cloneable [`Tracer`] handle the instrumented crates hold.
//!
//! The design goal is *zero cost when disabled*: a disabled [`Tracer`] is a
//! `None`, so `emit` is a single branch and the event-construction closure
//! is never evaluated. When enabled, events pass a per-category filter, get
//! a sequential id, notify subscribers, and land in a fixed-capacity ring
//! buffer (oldest events are evicted first and counted).

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use plasma_sim::SimTime;

use crate::event::{Category, CategorySet, Component, EventId, TraceEvent, TraceEventKind};

/// Recording parameters.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Maximum number of events retained (ring buffer size).
    pub capacity: usize,
    /// Which event families are recorded.
    pub filter: CategorySet,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            capacity: 1 << 16,
            filter: CategorySet::all(),
        }
    }
}

impl TraceConfig {
    /// Returns the config with a different ring-buffer capacity.
    pub fn capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }

    /// Returns the config recording only the given categories.
    pub fn only(mut self, cats: &[Category]) -> Self {
        let mut set = CategorySet::none();
        for &c in cats {
            set = set.with(c);
        }
        self.filter = set;
        self
    }

    /// Returns the config with one category excluded (e.g. drop the
    /// high-volume [`Category::Message`] family).
    pub fn without(mut self, cat: Category) -> Self {
        self.filter = self.filter.without(cat);
        self
    }
}

/// A sink notified of every recorded event, in emission order.
pub trait Subscriber: Send {
    /// Called for each event that passes the category filter.
    fn on_event(&mut self, event: &TraceEvent);
}

/// The bounded event store behind an enabled [`Tracer`].
pub struct Recorder {
    filter: CategorySet,
    capacity: usize,
    next_id: u64,
    dropped: u64,
    buf: VecDeque<TraceEvent>,
    subscribers: Vec<Box<dyn Subscriber>>,
}

impl Recorder {
    fn new(cfg: TraceConfig) -> Self {
        Recorder {
            filter: cfg.filter,
            capacity: cfg.capacity.max(1),
            next_id: 1,
            dropped: 0,
            buf: VecDeque::new(),
            subscribers: Vec::new(),
        }
    }

    fn record(
        &mut self,
        event_at: SimTime,
        component: Component,
        parent: Option<EventId>,
        kind: TraceEventKind,
    ) -> Option<EventId> {
        if !self.filter.contains(kind.category()) {
            return None;
        }
        let id = EventId(self.next_id);
        self.next_id += 1;
        let event = TraceEvent {
            id,
            at: event_at,
            component,
            parent,
            kind,
        };
        for sub in &mut self.subscribers {
            sub.on_event(&event);
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
        Some(id)
    }
}

/// A cheap cloneable handle to a shared [`Recorder`], or a no-op when
/// disabled.
///
/// Every instrumented component (runtime, cluster, EMR) holds a clone; they
/// all feed the same buffer, so ids are globally sequential and the exported
/// trace interleaves all components in causal order.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Mutex<Recorder>>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Tracer {
    /// Creates an enabled tracer recording per `cfg`.
    pub fn new(cfg: TraceConfig) -> Self {
        Tracer {
            inner: Some(Arc::new(Mutex::new(Recorder::new(cfg)))),
        }
    }

    /// Creates the no-op tracer (the default state of every runtime).
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// Returns whether events are being recorded at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records an event.
    ///
    /// `kind` is a closure so the (potentially allocating) event payload is
    /// only built when the tracer is enabled; when disabled this is a single
    /// branch. Returns the assigned id, or `None` when disabled or filtered.
    #[inline]
    pub fn emit(
        &self,
        at: SimTime,
        component: Component,
        parent: Option<EventId>,
        kind: impl FnOnce() -> TraceEventKind,
    ) -> Option<EventId> {
        let inner = self.inner.as_ref()?;
        let mut rec = inner.lock().unwrap_or_else(|e| e.into_inner());
        rec.record(at, component, parent, kind())
    }

    /// Registers a subscriber notified of every recorded event.
    /// No-op when disabled.
    pub fn subscribe(&self, sub: Box<dyn Subscriber>) {
        if let Some(inner) = &self.inner {
            inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .subscribers
                .push(sub);
        }
    }

    /// Returns a snapshot of the retained events, in emission order.
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(inner) => inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .buf
                .iter()
                .cloned()
                .collect(),
            None => Vec::new(),
        }
    }

    /// Returns the number of retained events.
    pub fn len(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.lock().unwrap_or_else(|e| e.into_inner()).buf.len(),
            None => 0,
        }
    }

    /// Returns whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns how many events were evicted from the ring buffer.
    pub fn dropped(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.lock().unwrap_or_else(|e| e.into_inner()).dropped,
            None => 0,
        }
    }

    /// Clears the retained events (ids keep counting up).
    pub fn clear(&self) {
        if let Some(inner) = &self.inner {
            inner.lock().unwrap_or_else(|e| e.into_inner()).buf.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(actor: u64) -> TraceEventKind {
        TraceEventKind::ActorCreated {
            actor,
            actor_type: "T".into(),
            server: 0,
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        let mut built = false;
        let id = t.emit(SimTime::ZERO, Component::Runtime, None, || {
            built = true;
            ev(0)
        });
        assert_eq!(id, None);
        assert!(!built, "closure must not run when disabled");
        assert!(t.events().is_empty());
    }

    #[test]
    fn ids_are_sequential_from_one() {
        let t = Tracer::new(TraceConfig::default());
        let a = t.emit(SimTime::ZERO, Component::Runtime, None, || ev(0));
        let b = t.emit(SimTime::from_secs(1), Component::Gem, a, || ev(1));
        assert_eq!(a, Some(EventId(1)));
        assert_eq!(b, Some(EventId(2)));
        let events = t.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].parent, Some(EventId(1)));
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let t = Tracer::new(TraceConfig::default().capacity(2));
        for i in 0..5 {
            t.emit(SimTime::from_micros(i), Component::Runtime, None, || ev(i));
        }
        let events = t.events();
        assert_eq!(events.len(), 2);
        assert_eq!(t.dropped(), 3);
        assert_eq!(events[0].id, EventId(4));
        assert_eq!(events[1].id, EventId(5));
    }

    #[test]
    fn category_filter_drops_without_consuming_ids() {
        let t = Tracer::new(TraceConfig::default().without(Category::Actor));
        let a = t.emit(SimTime::ZERO, Component::Runtime, None, || ev(0));
        assert_eq!(a, None, "filtered category");
        let b = t.emit(SimTime::ZERO, Component::Provisioner, None, || {
            TraceEventKind::ServerDrain { server: 0 }
        });
        assert_eq!(b, Some(EventId(1)), "filtered events consume no ids");
    }

    #[test]
    fn subscribers_see_recorded_events() {
        struct Count(std::sync::Arc<std::sync::atomic::AtomicUsize>);
        impl Subscriber for Count {
            fn on_event(&mut self, _event: &TraceEvent) {
                self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }
        }
        let seen = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let t = Tracer::new(TraceConfig::default().without(Category::Actor));
        t.subscribe(Box::new(Count(seen.clone())));
        t.emit(SimTime::ZERO, Component::Runtime, None, || ev(0)); // Filtered.
        t.emit(SimTime::ZERO, Component::Runtime, None, || {
            TraceEventKind::ServerDrain { server: 0 }
        });
        assert_eq!(seen.load(std::sync::atomic::Ordering::SeqCst), 1);
    }
}
