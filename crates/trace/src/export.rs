//! Deterministic trace exporters: JSON Lines and Chrome `trace_event`.
//!
//! Both formats are emitted with a fixed field order and integer-only
//! values, so two runs with the same seed produce *byte-identical* output —
//! the property the determinism regression test pins down. The Chrome
//! format loads directly into `chrome://tracing` or [Perfetto]
//! (<https://ui.perfetto.dev>): instants render as slices per component
//! track, and migrations render as duration bars spanning their transfer
//! time.
//!
//! [Perfetto]: https://perfetto.dev

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

use crate::event::{Component, TraceEvent, TraceEventKind};

/// Escapes a string into JSON string-literal content (no surrounding
/// quotes).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_opt_u64(out: &mut String, v: Option<u64>) {
    match v {
        Some(v) => {
            let _ = write!(out, "{v}");
        }
        None => out.push_str("null"),
    }
}

/// Appends the kind-specific fields as `"key":value` pairs (comma-separated,
/// no surrounding braces). Shared between the JSONL and Chrome exporters so
/// both carry identical payloads.
fn push_kind_fields(out: &mut String, kind: &TraceEventKind) {
    match kind {
        TraceEventKind::MessageSend {
            from_actor,
            from_client,
            to,
            func,
            bytes,
        } => {
            out.push_str("\"from_actor\":");
            push_opt_u64(out, *from_actor);
            out.push_str(",\"from_client\":");
            push_opt_u64(out, from_client.map(u64::from));
            let _ = write!(out, ",\"to\":{to},\"func\":{func},\"bytes\":{bytes}");
        }
        TraceEventKind::MessageDeliver {
            to,
            server,
            func,
            forwarded,
        } => {
            let _ = write!(
                out,
                "\"to\":{to},\"server\":{server},\"func\":{func},\"forwarded\":{forwarded}"
            );
        }
        TraceEventKind::ActorCreated {
            actor,
            actor_type,
            server,
        } => {
            let _ = write!(out, "\"actor\":{actor},\"actor_type\":\"");
            escape_into(out, actor_type);
            let _ = write!(out, "\",\"server\":{server}");
        }
        TraceEventKind::ActorRemoved { actor, server } => {
            let _ = write!(out, "\"actor\":{actor},\"server\":{server}");
        }
        TraceEventKind::MigrationStart {
            actor,
            src,
            dst,
            state_bytes,
        } => {
            let _ = write!(
                out,
                "\"actor\":{actor},\"src\":{src},\"dst\":{dst},\"state_bytes\":{state_bytes}"
            );
        }
        TraceEventKind::MigrationComplete {
            actor,
            src,
            dst,
            transfer_us,
        } => {
            let _ = write!(
                out,
                "\"actor\":{actor},\"src\":{src},\"dst\":{dst},\"transfer_us\":{transfer_us}"
            );
        }
        TraceEventKind::RuleEvaluated { rule, matches } => {
            let _ = write!(out, "\"rule\":{rule},\"matches\":{matches}");
        }
        TraceEventKind::RuleFired { rule, actions } => {
            let _ = write!(out, "\"rule\":{rule},\"actions\":{actions}");
        }
        TraceEventKind::PlanProposed {
            round,
            actor,
            src,
            dst,
            action,
            priority,
            rule,
        } => {
            let _ = write!(
                out,
                "\"round\":{round},\"actor\":{actor},\"src\":{src},\"dst\":{dst},\"action\":\""
            );
            escape_into(out, action);
            let _ = write!(out, "\",\"priority\":{priority},\"rule\":");
            // Internal scale-in drains have no originating rule.
            push_opt_u64(out, (*rule != u64::MAX).then_some(*rule));
        }
        TraceEventKind::QuerySent {
            round,
            actor,
            src,
            dst,
        } => {
            let _ = write!(
                out,
                "\"round\":{round},\"actor\":{actor},\"src\":{src},\"dst\":{dst}"
            );
        }
        TraceEventKind::QueryReply {
            round,
            actor,
            dst,
            admitted,
            reason,
        } => {
            let _ = write!(
                out,
                "\"round\":{round},\"actor\":{actor},\"dst\":{dst},\"admitted\":{admitted},\"reason\":\""
            );
            escape_into(out, reason);
            out.push('"');
        }
        TraceEventKind::SnapshotShared {
            round,
            generation,
            consumers,
        } => {
            let _ = write!(
                out,
                "\"round\":{round},\"generation\":{generation},\"consumers\":{consumers}"
            );
        }
        TraceEventKind::ScaleVote {
            gem,
            scale_out,
            scale_in,
        } => {
            let _ = write!(
                out,
                "\"gem\":{gem},\"scale_out\":{scale_out},\"scale_in\":{scale_in}"
            );
        }
        TraceEventKind::ControlQuerySent {
            round,
            gem,
            generation,
            servers,
        } => {
            let _ = write!(
                out,
                "\"round\":{round},\"gem\":{gem},\"generation\":{generation},\"servers\":{servers}"
            );
        }
        TraceEventKind::ControlQueryReply {
            round,
            gem,
            candidates,
            scale_out,
            scale_in,
        } => {
            let _ = write!(
                out,
                "\"round\":{round},\"gem\":{gem},\"candidates\":{candidates},\
                 \"scale_out\":{scale_out},\"scale_in\":{scale_in}"
            );
        }
        TraceEventKind::ControlDecisionIssued {
            round,
            grow,
            shrink,
            migrations,
        } => {
            let _ = write!(
                out,
                "\"round\":{round},\"grow\":{grow},\"shrink\":{shrink},\
                 \"migrations\":{migrations}"
            );
        }
        TraceEventKind::ServerBoot {
            server,
            instance,
            ready_at_us,
        } => {
            let _ = write!(out, "\"server\":{server},\"instance\":\"");
            escape_into(out, instance);
            let _ = write!(out, "\",\"ready_at_us\":{ready_at_us}");
        }
        TraceEventKind::ServerDrain { server } => {
            let _ = write!(out, "\"server\":{server}");
        }
        TraceEventKind::FaultInjected { fault, server } => {
            out.push_str("\"fault\":\"");
            escape_into(out, fault);
            out.push_str("\",\"server\":");
            push_opt_u64(out, *server);
        }
        TraceEventKind::ServerCrashed {
            server,
            actors_lost,
            messages_lost,
        } => {
            let _ = write!(
                out,
                "\"server\":{server},\"actors_lost\":{actors_lost},\"messages_lost\":{messages_lost}"
            );
        }
        TraceEventKind::ServerRestarted {
            server,
            ready_at_us,
        } => {
            let _ = write!(out, "\"server\":{server},\"ready_at_us\":{ready_at_us}");
        }
        TraceEventKind::ServerDeclaredDead {
            server,
            detect_latency_us,
        } => {
            let _ = write!(
                out,
                "\"server\":{server},\"detect_latency_us\":{detect_latency_us}"
            );
        }
        TraceEventKind::ActorRecovered {
            actor,
            src,
            dst,
            state_bytes_lost,
        } => {
            let _ = write!(
                out,
                "\"actor\":{actor},\"src\":{src},\"dst\":{dst},\"state_bytes_lost\":{state_bytes_lost}"
            );
        }
        TraceEventKind::MigrationAborted {
            actor,
            src,
            dst,
            reason,
        } => {
            let _ = write!(
                out,
                "\"actor\":{actor},\"src\":{src},\"dst\":{dst},\"reason\":\""
            );
            escape_into(out, reason);
            out.push('"');
        }
        TraceEventKind::MigrationRetry {
            actor,
            dst,
            attempt,
        } => {
            let _ = write!(out, "\"actor\":{actor},\"dst\":{dst},\"attempt\":{attempt}");
        }
        TraceEventKind::PartitionStarted { group_size } => {
            let _ = write!(out, "\"group_size\":{group_size}");
        }
        TraceEventKind::PartitionHealed { healed } => {
            let _ = write!(out, "\"healed\":{healed}");
        }
        TraceEventKind::LinkDegraded {
            extra_latency_us,
            bandwidth_pct,
            drop_per_mille,
        } => {
            let _ = write!(
                out,
                "\"extra_latency_us\":{extra_latency_us},\"bandwidth_pct\":{bandwidth_pct},\"drop_per_mille\":{drop_per_mille}"
            );
        }
        TraceEventKind::LinksHealed { was_active } => {
            let _ = write!(out, "\"was_active\":{was_active}");
        }
        TraceEventKind::GemCrashed { gem } => {
            let _ = write!(out, "\"gem\":{gem}");
        }
        TraceEventKind::LemCrashed { server } => {
            let _ = write!(out, "\"server\":{server}");
        }
        TraceEventKind::ProvisionerStalled { until_us } => {
            let _ = write!(out, "\"until_us\":{until_us}");
        }
    }
}

/// Renders events as JSON Lines: one object per event, fixed field order.
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for e in events {
        let _ = write!(
            out,
            "{{\"id\":{},\"at_us\":{},\"component\":\"{}\",\"parent\":",
            e.id.0,
            e.at.as_micros(),
            e.component.as_str()
        );
        push_opt_u64(&mut out, e.parent.map(|p| p.0));
        let _ = write!(out, ",\"kind\":\"{}\",", e.kind.name());
        push_kind_fields(&mut out, &e.kind);
        out.push_str("}\n");
    }
    out
}

/// The track (thread id) an event renders on inside its component's
/// process: actors for runtime events, servers for provisioning, rule
/// index for planning.
fn chrome_tid(kind: &TraceEventKind) -> u64 {
    match kind {
        TraceEventKind::MessageSend { to, .. } | TraceEventKind::MessageDeliver { to, .. } => *to,
        TraceEventKind::ServerBoot { server, .. }
        | TraceEventKind::ServerDrain { server }
        | TraceEventKind::ServerCrashed { server, .. }
        | TraceEventKind::ServerRestarted { server, .. }
        | TraceEventKind::ServerDeclaredDead { server, .. }
        | TraceEventKind::LemCrashed { server } => u64::from(*server),
        TraceEventKind::FaultInjected { server, .. } => server.unwrap_or(0),
        TraceEventKind::GemCrashed { gem } => u64::from(*gem),
        TraceEventKind::RuleEvaluated { rule, .. } | TraceEventKind::RuleFired { rule, .. } => {
            if *rule == u64::MAX {
                0
            } else {
                *rule
            }
        }
        TraceEventKind::ScaleVote { gem, .. } => u64::from(*gem),
        TraceEventKind::ControlQuerySent { gem, .. }
        | TraceEventKind::ControlQueryReply { gem, .. } => u64::from(*gem),
        TraceEventKind::ControlDecisionIssued { round, .. } => *round,
        TraceEventKind::SnapshotShared { round, .. } => *round,
        other => other.subject_actor().unwrap_or(0),
    }
}

fn chrome_pid(component: Component) -> u32 {
    match component {
        Component::Runtime => 1,
        Component::Lem => 2,
        Component::Gem => 3,
        Component::Provisioner => 4,
        Component::Chaos => 5,
    }
}

/// Renders events in Chrome `trace_event` JSON (object format with a
/// `traceEvents` array), loadable in `chrome://tracing` and Perfetto.
///
/// Instant events use phase `"i"`; completed migrations render as phase
/// `"X"` slices spanning their transfer time.
pub fn to_chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 160 + 512);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for component in [
        Component::Runtime,
        Component::Lem,
        Component::Gem,
        Component::Provisioner,
        Component::Chaos,
    ] {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
            chrome_pid(component),
            component.as_str()
        );
    }
    for e in events {
        out.push(',');
        let (phase, ts, dur) = match &e.kind {
            TraceEventKind::MigrationComplete { transfer_us, .. } => (
                "X",
                e.at.as_micros().saturating_sub(*transfer_us),
                Some(*transfer_us),
            ),
            _ => ("i", e.at.as_micros(), None),
        };
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{},",
            e.kind.name(),
            e.kind.category().as_str(),
            phase,
            ts
        );
        if let Some(dur) = dur {
            let _ = write!(out, "\"dur\":{dur},");
        }
        if phase == "i" {
            out.push_str("\"s\":\"t\",");
        }
        let _ = write!(
            out,
            "\"pid\":{},\"tid\":{},\"args\":{{\"id\":{},\"parent\":",
            chrome_pid(e.component),
            chrome_tid(&e.kind),
            e.id.0
        );
        push_opt_u64(&mut out, e.parent.map(|p| p.0));
        out.push(',');
        push_kind_fields(&mut out, &e.kind);
        out.push_str("}}");
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// The workspace's shared results directory, `target/plasma-results/`
/// (the same location the bench harnesses write their figure data to).
pub fn results_dir() -> PathBuf {
    let target = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("..")
                .join("..")
                .join("target")
        });
    target.join("plasma-results")
}

/// Writes `contents` under `dir`, creating the directory first.
pub fn write_under(dir: &Path, file_name: &str, contents: &str) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(file_name);
    std::fs::write(&path, contents)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventId, TraceEvent};
    use plasma_sim::SimTime;

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                id: EventId(1),
                at: SimTime::from_micros(5),
                component: Component::Gem,
                parent: None,
                kind: TraceEventKind::RuleFired {
                    rule: 0,
                    actions: 2,
                },
            },
            TraceEvent {
                id: EventId(2),
                at: SimTime::from_micros(9),
                component: Component::Runtime,
                parent: Some(EventId(1)),
                kind: TraceEventKind::MigrationComplete {
                    actor: 3,
                    src: 0,
                    dst: 1,
                    transfer_us: 4,
                },
            },
        ]
    }

    #[test]
    fn jsonl_fixed_shape() {
        let lines = to_jsonl(&sample());
        assert_eq!(
            lines,
            "{\"id\":1,\"at_us\":5,\"component\":\"gem\",\"parent\":null,\
             \"kind\":\"RuleFired\",\"rule\":0,\"actions\":2}\n\
             {\"id\":2,\"at_us\":9,\"component\":\"runtime\",\"parent\":1,\
             \"kind\":\"MigrationComplete\",\"actor\":3,\"src\":0,\"dst\":1,\"transfer_us\":4}\n"
        );
    }

    #[test]
    fn chrome_trace_contains_duration_slice() {
        let json = to_chrome_trace(&sample());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("],\"displayTimeUnit\":\"ms\"}"));
        // The migration renders as a complete slice starting at arrival
        // minus transfer time.
        assert!(json.contains("\"ph\":\"X\",\"ts\":5,\"dur\":4,"));
        // Process metadata names the component tracks.
        assert!(json.contains("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"runtime\"}}"));
    }

    #[test]
    fn string_fields_are_escaped() {
        let events = vec![TraceEvent {
            id: EventId(1),
            at: SimTime::ZERO,
            component: Component::Runtime,
            parent: None,
            kind: TraceEventKind::ActorCreated {
                actor: 0,
                actor_type: "we\"ird\nname".into(),
                server: 0,
            },
        }];
        let line = to_jsonl(&events);
        assert!(line.contains("\"actor_type\":\"we\\\"ird\\nname\""));
    }

    #[test]
    fn fault_chain_jsonl_fixed_shape() {
        let events = vec![
            TraceEvent {
                id: EventId(1),
                at: SimTime::from_secs(30),
                component: Component::Chaos,
                parent: None,
                kind: TraceEventKind::FaultInjected {
                    fault: "server-crash".into(),
                    server: Some(1),
                },
            },
            TraceEvent {
                id: EventId(2),
                at: SimTime::from_secs(30),
                component: Component::Runtime,
                parent: Some(EventId(1)),
                kind: TraceEventKind::ServerCrashed {
                    server: 1,
                    actors_lost: 2,
                    messages_lost: 7,
                },
            },
            TraceEvent {
                id: EventId(3),
                at: SimTime::from_secs(40),
                component: Component::Gem,
                parent: Some(EventId(2)),
                kind: TraceEventKind::ServerDeclaredDead {
                    server: 1,
                    detect_latency_us: 10_000_000,
                },
            },
            TraceEvent {
                id: EventId(4),
                at: SimTime::from_secs(40),
                component: Component::Runtime,
                parent: Some(EventId(3)),
                kind: TraceEventKind::ActorRecovered {
                    actor: 5,
                    src: 1,
                    dst: 0,
                    state_bytes_lost: 4096,
                },
            },
        ];
        assert_eq!(
            to_jsonl(&events),
            "{\"id\":1,\"at_us\":30000000,\"component\":\"chaos\",\"parent\":null,\
             \"kind\":\"FaultInjected\",\"fault\":\"server-crash\",\"server\":1}\n\
             {\"id\":2,\"at_us\":30000000,\"component\":\"runtime\",\"parent\":1,\
             \"kind\":\"ServerCrashed\",\"server\":1,\"actors_lost\":2,\"messages_lost\":7}\n\
             {\"id\":3,\"at_us\":40000000,\"component\":\"gem\",\"parent\":2,\
             \"kind\":\"ServerDeclaredDead\",\"server\":1,\"detect_latency_us\":10000000}\n\
             {\"id\":4,\"at_us\":40000000,\"component\":\"runtime\",\"parent\":3,\
             \"kind\":\"ActorRecovered\",\"actor\":5,\"src\":1,\"dst\":0,\"state_bytes_lost\":4096}\n"
        );
    }

    #[test]
    fn scale_in_drain_rule_serializes_as_null() {
        let events = vec![TraceEvent {
            id: EventId(1),
            at: SimTime::ZERO,
            component: Component::Gem,
            parent: None,
            kind: TraceEventKind::PlanProposed {
                round: 3,
                actor: 1,
                src: 0,
                dst: 1,
                action: "balance".into(),
                priority: 100,
                rule: u64::MAX,
            },
        }];
        assert!(to_jsonl(&events).contains("\"rule\":null"));
    }
}
