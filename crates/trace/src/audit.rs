//! Decision audit: reconstruct *why* the elasticity machinery moved an
//! actor.
//!
//! Every elasticity decision leaves a causal chain in the trace —
//! `RuleEvaluated ← RuleFired ← PlanProposed ← QuerySent ← QueryReply ←
//! MigrationStart ← MigrationComplete` — linked through each event's
//! `parent` id. [`explain`] walks that chain backwards from the latest
//! decision event concerning an actor at (or before) a point in simulated
//! time, and returns it root-first.

use plasma_sim::SimTime;

use crate::event::{Category, EventId, TraceEvent};

/// Reconstructs the decision chain that explains what the elasticity
/// machinery last did to `actor` at or before `at`.
///
/// The anchor is the most recent migration / admission / plan /
/// fault / recovery event whose subject is `actor` with timestamp `<= at`;
/// from there the `parent` links are followed to the root (typically the
/// GEM's `RuleEvaluated`, or the chaos injector's `FaultInjected` for
/// fault -> detection -> recovery chains). The returned slice is ordered
/// root-first, so timestamps are nondecreasing and each event's `parent` is
/// the id of the one before it. Empty when no decision about the actor is
/// retained in `events`.
pub fn explain(events: &[TraceEvent], actor: u64, at: SimTime) -> Vec<TraceEvent> {
    let anchor = events
        .iter()
        .filter(|e| {
            e.at <= at
                && e.kind.subject_actor() == Some(actor)
                && matches!(
                    e.kind.category(),
                    Category::Migration
                        | Category::Admission
                        | Category::Plan
                        | Category::Fault
                        | Category::Recovery
                )
        })
        .max_by_key(|e| e.id);
    let Some(anchor) = anchor else {
        return Vec::new();
    };
    let mut chain = vec![anchor.clone()];
    let mut parent = anchor.parent;
    while let Some(pid) = parent {
        let Some(prev) = find(events, pid) else { break };
        parent = prev.parent;
        chain.push(prev.clone());
    }
    chain.reverse();
    chain
}

/// Looks up an event by id. Events are stored in id order (the recorder
/// assigns sequential ids), so binary search applies even after ring-buffer
/// eviction.
fn find(events: &[TraceEvent], id: EventId) -> Option<&TraceEvent> {
    events
        .binary_search_by_key(&id, |e| e.id)
        .ok()
        .map(|i| &events[i])
}

/// Renders an explanation chain as indented human-readable lines, one per
/// hop.
pub fn render_explanation(chain: &[TraceEvent]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (depth, e) in chain.iter().enumerate() {
        let _ = writeln!(
            out,
            "{}[{:>10} us] {} #{} {:?}",
            "  ".repeat(depth),
            e.at.as_micros(),
            e.component.as_str(),
            e.id.0,
            e.kind,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Component, TraceEventKind};

    fn chain_fixture() -> Vec<TraceEvent> {
        let mk = |id: u64, at: u64, parent: Option<u64>, kind: TraceEventKind| TraceEvent {
            id: EventId(id),
            at: SimTime::from_micros(at),
            component: Component::Gem,
            parent: parent.map(EventId),
            kind,
        };
        vec![
            mk(
                1,
                10,
                None,
                TraceEventKind::RuleEvaluated {
                    rule: 0,
                    matches: 1,
                },
            ),
            mk(
                2,
                10,
                Some(1),
                TraceEventKind::RuleFired {
                    rule: 0,
                    actions: 1,
                },
            ),
            mk(
                3,
                10,
                Some(2),
                TraceEventKind::PlanProposed {
                    round: 1,
                    actor: 7,
                    src: 0,
                    dst: 1,
                    action: "balance".into(),
                    priority: 5,
                    rule: 0,
                },
            ),
            mk(
                4,
                20,
                Some(3),
                TraceEventKind::QuerySent {
                    round: 1,
                    actor: 7,
                    src: 0,
                    dst: 1,
                },
            ),
            mk(
                5,
                20,
                Some(4),
                TraceEventKind::QueryReply {
                    round: 1,
                    actor: 7,
                    dst: 1,
                    admitted: true,
                    reason: "headroom".into(),
                },
            ),
            mk(
                6,
                20,
                Some(5),
                TraceEventKind::MigrationStart {
                    actor: 7,
                    src: 0,
                    dst: 1,
                    state_bytes: 64,
                },
            ),
            mk(
                7,
                45,
                Some(6),
                TraceEventKind::MigrationComplete {
                    actor: 7,
                    src: 0,
                    dst: 1,
                    transfer_us: 25,
                },
            ),
            // A decision about a *different* actor, later — must not anchor.
            mk(
                8,
                50,
                None,
                TraceEventKind::MigrationStart {
                    actor: 9,
                    src: 1,
                    dst: 0,
                    state_bytes: 1,
                },
            ),
        ]
    }

    #[test]
    fn explain_walks_full_chain_root_first() {
        let events = chain_fixture();
        let chain = explain(&events, 7, SimTime::from_secs(1));
        let ids: Vec<u64> = chain.iter().map(|e| e.id.0).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5, 6, 7]);
        for pair in chain.windows(2) {
            assert!(pair[0].at <= pair[1].at, "timestamps nondecreasing");
            assert_eq!(pair[1].parent, Some(pair[0].id), "parent links chain up");
        }
    }

    #[test]
    fn explain_respects_time_bound() {
        let events = chain_fixture();
        // At t=20us the migration has started but not completed: the anchor
        // is MigrationStart, not MigrationComplete.
        let chain = explain(&events, 7, SimTime::from_micros(20));
        assert_eq!(chain.last().unwrap().id, EventId(6));
        assert_eq!(chain.len(), 6);
    }

    #[test]
    fn explain_unknown_actor_is_empty() {
        let events = chain_fixture();
        assert!(explain(&events, 1234, SimTime::from_secs(1)).is_empty());
    }

    #[test]
    fn explain_survives_evicted_parents() {
        // Drop the first two events (ring-buffer eviction): the walk stops
        // at the earliest retained link instead of panicking.
        let events: Vec<TraceEvent> = chain_fixture()[2..].to_vec();
        let chain = explain(&events, 7, SimTime::from_secs(1));
        let ids: Vec<u64> = chain.iter().map(|e| e.id.0).collect();
        assert_eq!(ids, vec![3, 4, 5, 6, 7]);
    }

    #[test]
    fn explain_anchors_on_recovery_chain() {
        let mk = |id: u64, at: u64, parent: Option<u64>, component, kind| TraceEvent {
            id: EventId(id),
            at: SimTime::from_micros(at),
            component,
            parent: parent.map(EventId),
            kind,
        };
        let events = vec![
            mk(
                1,
                10,
                None,
                Component::Chaos,
                TraceEventKind::FaultInjected {
                    fault: "server-crash".into(),
                    server: Some(1),
                },
            ),
            mk(
                2,
                10,
                Some(1),
                Component::Runtime,
                TraceEventKind::ServerCrashed {
                    server: 1,
                    actors_lost: 1,
                    messages_lost: 0,
                },
            ),
            mk(
                3,
                30,
                Some(2),
                Component::Gem,
                TraceEventKind::ServerDeclaredDead {
                    server: 1,
                    detect_latency_us: 20,
                },
            ),
            mk(
                4,
                30,
                Some(3),
                Component::Runtime,
                TraceEventKind::ActorRecovered {
                    actor: 7,
                    src: 1,
                    dst: 0,
                    state_bytes_lost: 64,
                },
            ),
        ];
        let chain = explain(&events, 7, SimTime::from_secs(1));
        let ids: Vec<u64> = chain.iter().map(|e| e.id.0).collect();
        assert_eq!(ids, vec![1, 2, 3, 4], "fault -> detection -> recovery");
    }

    #[test]
    fn render_is_one_line_per_hop() {
        let events = chain_fixture();
        let chain = explain(&events, 7, SimTime::from_secs(1));
        let text = render_explanation(&chain);
        assert_eq!(text.lines().count(), 7);
        assert!(text.contains("MigrationComplete"));
    }
}
