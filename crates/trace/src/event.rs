//! The trace event model: ids, components, categories, and event kinds.
//!
//! Every record the tracing subsystem captures is a [`TraceEvent`]: a
//! sequentially-numbered, virtually-timestamped fact about one step of the
//! system — a message hop, an actor lifecycle change, a planning decision,
//! an admission verdict, or a provisioning action. Events carry an optional
//! *causal parent* so a migration can be traced back through the
//! QUERY/QREPLY admission handshake to the plan and rule that produced it.

use plasma_sim::SimTime;

/// Identifier of one recorded trace event.
///
/// Ids are assigned sequentially (starting at 1) in emission order, so they
/// double as a tie-breaker for events sharing a [`SimTime`]: a larger id
/// never precedes a smaller one causally.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(pub u64);

/// Which PLASMA component emitted an event.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Component {
    /// The actor runtime: delivery, scheduling, migration mechanics.
    Runtime,
    /// A Local Elasticity Manager (interaction rules, QUERY side).
    Lem,
    /// A Global Elasticity Manager (resource rules, QREPLY side, votes).
    Gem,
    /// The cluster provisioner (server boot/drain).
    Provisioner,
    /// The chaos fault injector (plasma-chaos plans).
    Chaos,
}

impl Component {
    /// Stable lowercase name used by the exporters.
    pub fn as_str(self) -> &'static str {
        match self {
            Component::Runtime => "runtime",
            Component::Lem => "lem",
            Component::Gem => "gem",
            Component::Provisioner => "provisioner",
            Component::Chaos => "chaos",
        }
    }
}

/// Coarse event family, the unit of recording filters.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Category {
    /// Message sends and deliveries (the high-volume family).
    Message,
    /// Actor creation and removal.
    Actor,
    /// Live-migration start/completion.
    Migration,
    /// EPL rule evaluation and firing.
    Rule,
    /// Planned elasticity actions.
    Plan,
    /// QUERY/QREPLY admission control.
    Admission,
    /// GEM scale votes.
    Scale,
    /// Server provisioning lifecycle.
    Server,
    /// Injected faults (crashes, partitions, degradation, stalls).
    Fault,
    /// Failure detection and repair steps.
    Recovery,
}

impl Category {
    /// All categories, in declaration order.
    pub const ALL: [Category; 10] = [
        Category::Message,
        Category::Actor,
        Category::Migration,
        Category::Rule,
        Category::Plan,
        Category::Admission,
        Category::Scale,
        Category::Server,
        Category::Fault,
        Category::Recovery,
    ];

    /// Stable lowercase name used by the exporters.
    pub fn as_str(self) -> &'static str {
        match self {
            Category::Message => "message",
            Category::Actor => "actor",
            Category::Migration => "migration",
            Category::Rule => "rule",
            Category::Plan => "plan",
            Category::Admission => "admission",
            Category::Scale => "scale",
            Category::Server => "server",
            Category::Fault => "fault",
            Category::Recovery => "recovery",
        }
    }

    fn bit(self) -> u16 {
        1 << (self as u16)
    }
}

/// A set of [`Category`] values, used for per-category recording filters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CategorySet(u16);

impl CategorySet {
    /// The set containing every category.
    pub fn all() -> Self {
        CategorySet(Category::ALL.iter().map(|c| c.bit()).sum())
    }

    /// The empty set.
    pub fn none() -> Self {
        CategorySet(0)
    }

    /// Returns the set with `cat` added.
    pub fn with(self, cat: Category) -> Self {
        CategorySet(self.0 | cat.bit())
    }

    /// Returns the set with `cat` removed.
    pub fn without(self, cat: Category) -> Self {
        CategorySet(self.0 & !cat.bit())
    }

    /// Returns whether `cat` is in the set.
    pub fn contains(self, cat: Category) -> bool {
        self.0 & cat.bit() != 0
    }
}

impl Default for CategorySet {
    fn default() -> Self {
        CategorySet::all()
    }
}

/// What happened. Ids are raw integers (`ActorId.0`, `ServerId.0`, interned
/// function/rule indices) so this crate stays below the actor and cluster
/// crates in the dependency graph.
#[derive(Clone, PartialEq, Debug)]
pub enum TraceEventKind {
    /// A message left its sender (actor send, client request, or injection).
    MessageSend {
        /// Sending actor, when the sender is an actor.
        from_actor: Option<u64>,
        /// Issuing client, when the sender is an external client.
        from_client: Option<u32>,
        /// Destination actor.
        to: u64,
        /// Interned function id of the invoked method.
        func: u32,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// A message reached its destination actor's mailbox.
    MessageDeliver {
        /// Destination actor.
        to: u64,
        /// Server the actor resides on at delivery.
        server: u32,
        /// Interned function id of the invoked method.
        func: u32,
        /// Whether the message paid a forwarding hop after racing a
        /// migration.
        forwarded: bool,
    },
    /// An actor came into existence.
    ActorCreated {
        /// The new actor.
        actor: u64,
        /// Its actor type name.
        actor_type: String,
        /// Its initial server.
        server: u32,
    },
    /// An actor was removed (reaped).
    ActorRemoved {
        /// The removed actor.
        actor: u64,
        /// Its last server.
        server: u32,
    },
    /// Live state transfer of an actor began.
    MigrationStart {
        /// The migrating actor.
        actor: u64,
        /// Source server.
        src: u32,
        /// Destination server.
        dst: u32,
        /// Serialized-state size being transferred.
        state_bytes: u64,
    },
    /// An actor finished migrating and resumed on its destination.
    MigrationComplete {
        /// The migrated actor.
        actor: u64,
        /// Source server.
        src: u32,
        /// Destination server.
        dst: u32,
        /// Transfer time in microseconds.
        transfer_us: u64,
    },
    /// An EPL rule was evaluated against the profiling snapshot.
    RuleEvaluated {
        /// Rule index within the compiled policy.
        rule: u64,
        /// Number of variable environments that satisfied the condition.
        matches: u64,
    },
    /// A rule produced at least one action this round.
    RuleFired {
        /// Rule index within the compiled policy.
        rule: u64,
        /// Number of actions the rule contributed.
        actions: u64,
    },
    /// One action survived conflict resolution and entered the round plan.
    PlanProposed {
        /// Elasticity round (tick count).
        round: u64,
        /// The actor the action moves.
        actor: u64,
        /// Source server.
        src: u32,
        /// Destination server.
        dst: u32,
        /// Behavior name: `balance`, `reserve`, `colocate`, or `separate`.
        action: String,
        /// Action priority.
        priority: u32,
        /// Originating rule index; `u64::MAX` for internal scale-in drains.
        rule: u64,
    },
    /// A LEM asked the destination whether it can admit a migration
    /// (the QUERY of Alg. 1).
    QuerySent {
        /// Elasticity round (tick count).
        round: u64,
        /// The actor to admit.
        actor: u64,
        /// Source server.
        src: u32,
        /// Destination server queried.
        dst: u32,
    },
    /// The destination's admission verdict (the QREPLY of Alg. 1).
    QueryReply {
        /// Elasticity round (tick count).
        round: u64,
        /// The actor in question.
        actor: u64,
        /// Destination server replying.
        dst: u32,
        /// Whether the migration was admitted.
        admitted: bool,
        /// Why (e.g. `within-headroom`, `improves-source`, `no-headroom`).
        reason: String,
    },
    /// One round's profiling snapshot/evaluation frame was built once and
    /// shared across every evaluation consumer (GEM scopes plus the LEM
    /// pass), instead of each consumer rebuilding its own view.
    SnapshotShared {
        /// Elasticity round (tick count).
        round: u64,
        /// Generation stamp of the profiling snapshot the frame was built
        /// from (bumped once per profiling window).
        generation: u64,
        /// Evaluation consumers served by the shared frame this round.
        consumers: u32,
    },
    /// A GEM queried its managed LEMs over the control carriage (the
    /// cluster-level QUERY of Alg. 2, carried as backend message traffic).
    ControlQuerySent {
        /// Elasticity round (tick count).
        round: u64,
        /// Querying GEM index.
        gem: u32,
        /// Snapshot generation the query was stamped with.
        generation: u64,
        /// Servers in the query's scope.
        servers: u32,
    },
    /// The carrier's aggregated QREPLY for one GEM query: how many
    /// candidate report rows came back and the advisory scale votes
    /// computed from them.
    ControlQueryReply {
        /// Elasticity round (tick count).
        round: u64,
        /// Querying GEM index.
        gem: u32,
        /// Candidate report rows carried back.
        candidates: u32,
        /// Advisory scale-out vote over the carried candidates.
        scale_out: bool,
        /// Advisory scale-in vote over the carried candidates.
        scale_in: bool,
    },
    /// The round's decision was broadcast over the control carriage.
    ControlDecisionIssued {
        /// Elasticity round (tick count).
        round: u64,
        /// Servers requested this round.
        grow: u32,
        /// Servers put into draining this round.
        shrink: u32,
        /// Migrations admitted and issued.
        migrations: u32,
    },
    /// One GEM's scale vote for this round (§4.2 majority voting).
    ScaleVote {
        /// Voting GEM index.
        gem: u32,
        /// The GEM observed overload with nowhere to rebalance.
        scale_out: bool,
        /// The GEM observed every managed server idle.
        scale_in: bool,
    },
    /// A server was requested from the cloud provider.
    ServerBoot {
        /// The new server.
        server: u32,
        /// Instance flavor name.
        instance: String,
        /// When it becomes usable, in microseconds since start.
        ready_at_us: u64,
    },
    /// A running server was decommissioned.
    ServerDrain {
        /// The stopped server.
        server: u32,
    },
    /// A fault from the chaos plan was injected. Parent of the concrete
    /// fault events it causes, so `explain` can show fault -> detection ->
    /// recovery chains.
    FaultInjected {
        /// Stable fault label (e.g. `server-crash`, `partition`).
        fault: String,
        /// The primarily affected server, when the fault targets one.
        server: Option<u64>,
    },
    /// A server crash-stopped: resident actors lost, queued messages gone.
    ServerCrashed {
        /// The crashed server.
        server: u32,
        /// Actors that were resident (now orphaned).
        actors_lost: u64,
        /// Queued mailbox messages dropped by the crash.
        messages_lost: u64,
    },
    /// A crashed server began rebooting.
    ServerRestarted {
        /// The rebooting server.
        server: u32,
        /// When it becomes usable again, in microseconds since start.
        ready_at_us: u64,
    },
    /// The heartbeat failure detector declared a crashed server dead.
    ServerDeclaredDead {
        /// The dead server.
        server: u32,
        /// Crash-to-detection latency in microseconds.
        detect_latency_us: u64,
    },
    /// An orphaned actor respawned via the directory after its server died.
    ActorRecovered {
        /// The recovered actor.
        actor: u64,
        /// The dead server it was orphaned on.
        src: u32,
        /// Where it respawned (may equal `src` after an in-place reboot).
        dst: u32,
        /// State bytes lost with the crash (crash-stop: no state survives).
        state_bytes_lost: u64,
    },
    /// An in-flight migration failed and the actor fell back to its source.
    MigrationAborted {
        /// The migrating actor.
        actor: u64,
        /// Source server (where the actor remains).
        src: u32,
        /// The destination that was not reached.
        dst: u32,
        /// Why (`injected`, `source-crashed`, `destination-down`).
        reason: String,
    },
    /// An aborted migration is being retried after backoff.
    MigrationRetry {
        /// The migrating actor.
        actor: u64,
        /// Destination being retried.
        dst: u32,
        /// 1-based retry attempt number.
        attempt: u32,
    },
    /// Links between a server group and the rest of the cluster severed.
    PartitionStarted {
        /// Servers on the severed side.
        group_size: u64,
    },
    /// All active partitions healed.
    PartitionHealed {
        /// How many partition groups were healed.
        healed: u64,
    },
    /// Uniform link degradation activated.
    LinkDegraded {
        /// Latency added per cross-server hop, microseconds.
        extra_latency_us: u64,
        /// Effective bandwidth, percent of nominal.
        bandwidth_pct: u32,
        /// Per-mille message drop probability.
        drop_per_mille: u32,
    },
    /// Link degradation cleared.
    LinksHealed {
        /// Whether a degradation was actually active.
        was_active: bool,
    },
    /// A GEM crash-stopped; its servers re-shuffle onto survivors (§4.3).
    GemCrashed {
        /// Index of the crashed GEM.
        gem: u32,
    },
    /// The LEM on one server crashed; its profiling window is lost.
    LemCrashed {
        /// The server whose LEM restarted.
        server: u32,
    },
    /// The provisioner stalled: server requests fail until the given time.
    ProvisionerStalled {
        /// When requests succeed again, microseconds since start.
        until_us: u64,
    },
}

impl TraceEventKind {
    /// The recording-filter family this kind belongs to.
    pub fn category(&self) -> Category {
        match self {
            TraceEventKind::MessageSend { .. } | TraceEventKind::MessageDeliver { .. } => {
                Category::Message
            }
            TraceEventKind::ActorCreated { .. } | TraceEventKind::ActorRemoved { .. } => {
                Category::Actor
            }
            TraceEventKind::MigrationStart { .. } | TraceEventKind::MigrationComplete { .. } => {
                Category::Migration
            }
            TraceEventKind::RuleEvaluated { .. } | TraceEventKind::RuleFired { .. } => {
                Category::Rule
            }
            TraceEventKind::PlanProposed { .. } | TraceEventKind::SnapshotShared { .. } => {
                Category::Plan
            }
            TraceEventKind::QuerySent { .. }
            | TraceEventKind::QueryReply { .. }
            | TraceEventKind::ControlQuerySent { .. }
            | TraceEventKind::ControlQueryReply { .. }
            | TraceEventKind::ControlDecisionIssued { .. } => Category::Admission,
            TraceEventKind::ScaleVote { .. } => Category::Scale,
            TraceEventKind::ServerBoot { .. } | TraceEventKind::ServerDrain { .. } => {
                Category::Server
            }
            TraceEventKind::FaultInjected { .. }
            | TraceEventKind::ServerCrashed { .. }
            | TraceEventKind::MigrationAborted { .. }
            | TraceEventKind::PartitionStarted { .. }
            | TraceEventKind::LinkDegraded { .. }
            | TraceEventKind::GemCrashed { .. }
            | TraceEventKind::LemCrashed { .. }
            | TraceEventKind::ProvisionerStalled { .. } => Category::Fault,
            TraceEventKind::ServerRestarted { .. }
            | TraceEventKind::ServerDeclaredDead { .. }
            | TraceEventKind::ActorRecovered { .. }
            | TraceEventKind::MigrationRetry { .. }
            | TraceEventKind::PartitionHealed { .. }
            | TraceEventKind::LinksHealed { .. } => Category::Recovery,
        }
    }

    /// Stable kind name used by the exporters.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEventKind::MessageSend { .. } => "MessageSend",
            TraceEventKind::MessageDeliver { .. } => "MessageDeliver",
            TraceEventKind::ActorCreated { .. } => "ActorCreated",
            TraceEventKind::ActorRemoved { .. } => "ActorRemoved",
            TraceEventKind::MigrationStart { .. } => "MigrationStart",
            TraceEventKind::MigrationComplete { .. } => "MigrationComplete",
            TraceEventKind::RuleEvaluated { .. } => "RuleEvaluated",
            TraceEventKind::RuleFired { .. } => "RuleFired",
            TraceEventKind::PlanProposed { .. } => "PlanProposed",
            TraceEventKind::SnapshotShared { .. } => "SnapshotShared",
            TraceEventKind::QuerySent { .. } => "QuerySent",
            TraceEventKind::QueryReply { .. } => "QueryReply",
            TraceEventKind::ControlQuerySent { .. } => "ControlQuerySent",
            TraceEventKind::ControlQueryReply { .. } => "ControlQueryReply",
            TraceEventKind::ControlDecisionIssued { .. } => "ControlDecisionIssued",
            TraceEventKind::ScaleVote { .. } => "ScaleVote",
            TraceEventKind::ServerBoot { .. } => "ServerBoot",
            TraceEventKind::ServerDrain { .. } => "ServerDrain",
            TraceEventKind::FaultInjected { .. } => "FaultInjected",
            TraceEventKind::ServerCrashed { .. } => "ServerCrashed",
            TraceEventKind::ServerRestarted { .. } => "ServerRestarted",
            TraceEventKind::ServerDeclaredDead { .. } => "ServerDeclaredDead",
            TraceEventKind::ActorRecovered { .. } => "ActorRecovered",
            TraceEventKind::MigrationAborted { .. } => "MigrationAborted",
            TraceEventKind::MigrationRetry { .. } => "MigrationRetry",
            TraceEventKind::PartitionStarted { .. } => "PartitionStarted",
            TraceEventKind::PartitionHealed { .. } => "PartitionHealed",
            TraceEventKind::LinkDegraded { .. } => "LinkDegraded",
            TraceEventKind::LinksHealed { .. } => "LinksHealed",
            TraceEventKind::GemCrashed { .. } => "GemCrashed",
            TraceEventKind::LemCrashed { .. } => "LemCrashed",
            TraceEventKind::ProvisionerStalled { .. } => "ProvisionerStalled",
        }
    }

    /// The actor this event is about, when it is about exactly one.
    pub fn subject_actor(&self) -> Option<u64> {
        match self {
            TraceEventKind::ActorCreated { actor, .. }
            | TraceEventKind::ActorRemoved { actor, .. }
            | TraceEventKind::MigrationStart { actor, .. }
            | TraceEventKind::MigrationComplete { actor, .. }
            | TraceEventKind::PlanProposed { actor, .. }
            | TraceEventKind::QuerySent { actor, .. }
            | TraceEventKind::QueryReply { actor, .. }
            | TraceEventKind::ActorRecovered { actor, .. }
            | TraceEventKind::MigrationAborted { actor, .. }
            | TraceEventKind::MigrationRetry { actor, .. } => Some(*actor),
            _ => None,
        }
    }
}

/// One recorded trace event.
#[derive(Clone, PartialEq, Debug)]
pub struct TraceEvent {
    /// Sequential id (see [`EventId`]).
    pub id: EventId,
    /// Virtual time of the event.
    pub at: SimTime,
    /// Emitting component.
    pub component: Component,
    /// Causal parent, when the emitter knows one.
    pub parent: Option<EventId>,
    /// What happened.
    pub kind: TraceEventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_set_operations() {
        let all = CategorySet::all();
        for c in Category::ALL {
            assert!(all.contains(c));
        }
        let none = CategorySet::none();
        for c in Category::ALL {
            assert!(!none.contains(c));
        }
        let only_msg = CategorySet::none().with(Category::Message);
        assert!(only_msg.contains(Category::Message));
        assert!(!only_msg.contains(Category::Rule));
        let no_msg = CategorySet::all().without(Category::Message);
        assert!(!no_msg.contains(Category::Message));
        assert!(no_msg.contains(Category::Migration));
    }

    #[test]
    fn kind_category_mapping_is_total() {
        let kinds = [
            TraceEventKind::MessageSend {
                from_actor: None,
                from_client: Some(0),
                to: 1,
                func: 0,
                bytes: 8,
            },
            TraceEventKind::ActorCreated {
                actor: 0,
                actor_type: "A".into(),
                server: 0,
            },
            TraceEventKind::MigrationStart {
                actor: 0,
                src: 0,
                dst: 1,
                state_bytes: 64,
            },
            TraceEventKind::RuleEvaluated {
                rule: 0,
                matches: 1,
            },
            TraceEventKind::PlanProposed {
                round: 1,
                actor: 0,
                src: 0,
                dst: 1,
                action: "reserve".into(),
                priority: 0,
                rule: 0,
            },
            TraceEventKind::QuerySent {
                round: 1,
                actor: 0,
                src: 0,
                dst: 1,
            },
            TraceEventKind::ScaleVote {
                gem: 0,
                scale_out: true,
                scale_in: false,
            },
            TraceEventKind::ServerDrain { server: 3 },
            TraceEventKind::FaultInjected {
                fault: "server-crash".into(),
                server: Some(3),
            },
            TraceEventKind::ServerDeclaredDead {
                server: 3,
                detect_latency_us: 10,
            },
        ];
        let cats: Vec<Category> = kinds.iter().map(|k| k.category()).collect();
        assert_eq!(
            cats,
            vec![
                Category::Message,
                Category::Actor,
                Category::Migration,
                Category::Rule,
                Category::Plan,
                Category::Admission,
                Category::Scale,
                Category::Server,
                Category::Fault,
                Category::Recovery,
            ]
        );
    }

    #[test]
    fn fault_and_recovery_kinds_have_stable_names_and_subjects() {
        let aborted = TraceEventKind::MigrationAborted {
            actor: 9,
            src: 0,
            dst: 1,
            reason: "injected".into(),
        };
        assert_eq!(aborted.name(), "MigrationAborted");
        assert_eq!(aborted.subject_actor(), Some(9));
        assert_eq!(aborted.category(), Category::Fault);
        let recovered = TraceEventKind::ActorRecovered {
            actor: 4,
            src: 1,
            dst: 2,
            state_bytes_lost: 1024,
        };
        assert_eq!(recovered.subject_actor(), Some(4));
        assert_eq!(recovered.category(), Category::Recovery);
        let crashed = TraceEventKind::ServerCrashed {
            server: 1,
            actors_lost: 2,
            messages_lost: 5,
        };
        assert_eq!(crashed.subject_actor(), None);
        assert_eq!(crashed.category(), Category::Fault);
    }

    #[test]
    fn subject_actor_extraction() {
        let k = TraceEventKind::MigrationComplete {
            actor: 7,
            src: 0,
            dst: 1,
            transfer_us: 10,
        };
        assert_eq!(k.subject_actor(), Some(7));
        let k = TraceEventKind::ServerBoot {
            server: 1,
            instance: "m1.small".into(),
            ready_at_us: 0,
        };
        assert_eq!(k.subject_actor(), None);
    }
}
