//! The actor-program signature a policy is compiled against.
//!
//! The paper's PLASMA compiler "parses both PLASMA elasticity rules and the
//! AEON program" (§5.1); the schema is our stand-in for the application
//! side: the set of actor types with their reference properties and
//! functions (Fig. 3.I's `aclass`, `prop`, `func`).

use std::collections::{BTreeMap, BTreeSet};

/// Signature of one actor type.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TypeSig {
    props: BTreeSet<String>,
    funcs: BTreeSet<String>,
}

impl TypeSig {
    /// Declares a reference property; returns `self` for chaining.
    pub fn prop(&mut self, name: &str) -> &mut Self {
        self.props.insert(name.to_string());
        self
    }

    /// Declares a function; returns `self` for chaining.
    pub fn func(&mut self, name: &str) -> &mut Self {
        self.funcs.insert(name.to_string());
        self
    }

    /// Returns whether the type declares property `name`.
    pub fn has_prop(&self, name: &str) -> bool {
        self.props.contains(name)
    }

    /// Returns whether the type declares function `name`.
    pub fn has_func(&self, name: &str) -> bool {
        self.funcs.contains(name)
    }

    /// Returns the declared properties.
    pub fn props(&self) -> impl Iterator<Item = &str> {
        self.props.iter().map(String::as_str)
    }

    /// Returns the declared functions.
    pub fn funcs(&self) -> impl Iterator<Item = &str> {
        self.funcs.iter().map(String::as_str)
    }
}

/// The full application schema: actor types and their signatures.
///
/// # Examples
///
/// ```
/// use plasma_epl::ActorSchema;
///
/// let mut schema = ActorSchema::new();
/// schema
///     .actor_type("Session")
///     .prop("players")
///     .func("heartbeat");
/// assert!(schema.has_type("Session"));
/// assert!(schema.get("Session").unwrap().has_prop("players"));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ActorSchema {
    types: BTreeMap<String, TypeSig>,
}

impl ActorSchema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        ActorSchema::default()
    }

    /// Declares (or fetches) an actor type for further signature building.
    pub fn actor_type(&mut self, name: &str) -> &mut TypeSig {
        self.types.entry(name.to_string()).or_default()
    }

    /// Returns whether `name` is a declared actor type.
    pub fn has_type(&self, name: &str) -> bool {
        self.types.contains_key(name)
    }

    /// Returns the signature of type `name`.
    pub fn get(&self, name: &str) -> Option<&TypeSig> {
        self.types.get(name)
    }

    /// Returns all declared type names, sorted.
    pub fn type_names(&self) -> impl Iterator<Item = &str> {
        self.types.keys().map(String::as_str)
    }

    /// Returns the number of declared types.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Returns whether no types are declared.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let mut s = ActorSchema::new();
        s.actor_type("Folder")
            .prop("files")
            .func("open")
            .func("close");
        let sig = s.get("Folder").unwrap();
        assert!(sig.has_prop("files"));
        assert!(sig.has_func("open"));
        assert!(sig.has_func("close"));
        assert!(!sig.has_func("delete"));
        assert_eq!(sig.funcs().collect::<Vec<_>>(), vec!["close", "open"]);
    }

    #[test]
    fn redeclaration_merges() {
        let mut s = ActorSchema::new();
        s.actor_type("A").prop("x");
        s.actor_type("A").prop("y");
        let sig = s.get("A").unwrap();
        assert!(sig.has_prop("x") && sig.has_prop("y"));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn type_names_sorted() {
        let mut s = ActorSchema::new();
        s.actor_type("Zeta");
        s.actor_type("Alpha");
        assert_eq!(s.type_names().collect::<Vec<_>>(), vec!["Alpha", "Zeta"]);
    }
}
