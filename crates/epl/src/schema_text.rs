//! A textual format for actor schemas, mirroring the paper's Fig. 3.I.
//!
//! The PLASMA compiler reads the application program to learn its actor
//! classes; standalone policy tooling (the `eplc` binary) instead reads a
//! small interface description:
//!
//! ```text
//! // The Metadata Server's actor classes.
//! actor Folder {
//!     prop files;
//!     func open;
//! }
//! actor File {
//!     func read;
//! }
//! ```
//!
//! # Examples
//!
//! ```
//! use plasma_epl::schema_text::parse_schema;
//!
//! let schema = parse_schema("actor Worker { func run; }").unwrap();
//! assert!(schema.get("Worker").unwrap().has_func("run"));
//! ```

use crate::error::ParseError;
use crate::schema::ActorSchema;
use crate::token::{lex, Spanned, Tok};

/// Parses the textual schema format into an [`ActorSchema`].
pub fn parse_schema(source: &str) -> Result<ActorSchema, ParseError> {
    let toks = lex(source)?;
    let mut p = SchemaParser { toks, idx: 0 };
    let mut schema = ActorSchema::new();
    while !p.at_eof() {
        p.actor_decl(&mut schema)?;
    }
    Ok(schema)
}

struct SchemaParser {
    toks: Vec<Spanned>,
    idx: usize,
}

impl SchemaParser {
    fn peek(&self) -> &Tok {
        &self.toks[self.idx].tok
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.idx].tok.clone();
        if self.idx + 1 < self.toks.len() {
            self.idx += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(self.toks[self.idx].pos, message)
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected {what}, found {other}"))),
        }
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {want} {what}, found {}", self.peek())))
        }
    }

    fn actor_decl(&mut self, schema: &mut ActorSchema) -> Result<(), ParseError> {
        let kw = self.ident("`actor`")?;
        if kw != "actor" {
            return Err(self.err(format!("expected `actor`, found `{kw}`")));
        }
        let name = self.ident("actor type name")?;
        self.expect(&Tok::LBrace, "to open the actor body")?;
        let sig = schema.actor_type(&name);
        loop {
            match self.peek().clone() {
                Tok::RBrace => {
                    self.bump();
                    break;
                }
                Tok::Ident(kind) if kind == "prop" || kind == "func" => {
                    self.bump();
                    let member = self.ident("member name")?;
                    self.expect(&Tok::Semi, "after member")?;
                    if kind == "prop" {
                        sig.prop(&member);
                    } else {
                        sig.func(&member);
                    }
                }
                other => {
                    return Err(self.err(format!(
                        "expected `prop`, `func` or `}}` in actor body, found {other}"
                    )))
                }
            }
        }
        Ok(())
    }
}

/// Renders a schema back to the textual format (round-trips through
/// [`parse_schema`]).
pub fn format_schema(schema: &ActorSchema) -> String {
    let mut out = String::new();
    for name in schema.type_names() {
        let sig = schema.get(name).expect("listed type exists");
        out.push_str(&format!("actor {name} {{\n"));
        for prop in sig.props() {
            out.push_str(&format!("    prop {prop};\n"));
        }
        for func in sig.funcs() {
            out.push_str(&format!("    func {func};\n"));
        }
        out.push_str("}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_schema() {
        let schema = parse_schema(
            "# the metadata server\n\
             actor Folder {\n\
                 prop files;\n\
                 func open;\n\
                 func close;\n\
             }\n\
             actor File { func read; }",
        )
        .unwrap();
        assert_eq!(schema.len(), 2);
        let folder = schema.get("Folder").unwrap();
        assert!(folder.has_prop("files"));
        assert!(folder.has_func("open") && folder.has_func("close"));
        assert!(schema.get("File").unwrap().has_func("read"));
    }

    #[test]
    fn empty_body_is_fine() {
        let schema = parse_schema("actor Ghost { }").unwrap();
        assert!(schema.has_type("Ghost"));
    }

    #[test]
    fn rejects_bad_keyword() {
        let err = parse_schema("actor A { field x; }").unwrap_err();
        assert!(err.message.contains("prop"), "{err}");
    }

    #[test]
    fn rejects_missing_brace() {
        assert!(parse_schema("actor A prop x;").is_err());
        assert!(parse_schema("actor A { prop x; ").is_err());
    }

    #[test]
    fn rejects_non_actor_top_level() {
        let err = parse_schema("server A { }").unwrap_err();
        assert!(err.message.contains("expected `actor`"), "{err}");
    }

    #[test]
    fn format_round_trips() {
        let src = "actor B { prop q; func f; }\nactor A { func g; }";
        let schema = parse_schema(src).unwrap();
        let printed = format_schema(&schema);
        let reparsed = parse_schema(&printed).unwrap();
        assert_eq!(schema, reparsed);
    }
}
