//! Recursive-descent parser for the EPL.
//!
//! Operator precedence: `or` binds looser than `and`, as in the paper's
//! examples (`server.cpu.perc > 80 or server.cpu.perc < 60` is one `or` of
//! two comparisons). Parentheses around conditions are accepted as an
//! extension. A bare identifier in actor position parses as a variable
//! reference; the analyzer later reinterprets it as a type name if it
//! matches the schema (the grammar cannot distinguish the two).

use crate::ast::{AType, ActorRef, Behavior, Caller, Comp, Cond, Feature, Policy, Res, Rule, Stat};
use crate::error::ParseError;
use crate::token::{lex, Pos, Spanned, Tok};

/// Parses a complete policy.
pub fn parse_policy(source: &str) -> Result<Policy, ParseError> {
    let toks = lex(source)?;
    let mut p = Parser { toks, idx: 0 };
    let mut rules = Vec::new();
    while !p.at_eof() {
        rules.push(p.rule()?);
    }
    Ok(Policy { rules })
}

struct Parser {
    toks: Vec<Spanned>,
    idx: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.idx].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.idx + 1).min(self.toks.len() - 1)].tok
    }

    fn pos(&self) -> Pos {
        self.toks[self.idx].pos
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.idx].tok.clone();
        if self.idx + 1 < self.toks.len() {
            self.idx += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {want} {what}, found {}", self.peek())))
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(self.pos(), message)
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected {what}, found {other}"))),
        }
    }

    fn is_ident(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn eat_ident(&mut self, kw: &str) -> bool {
        if self.is_ident(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn number(&mut self, what: &str) -> Result<f64, ParseError> {
        match *self.peek() {
            Tok::Number(n) => {
                self.bump();
                Ok(n)
            }
            ref other => Err(self.err(format!("expected {what}, found {other}"))),
        }
    }

    // ------------------------------------------------------------------
    // Rules.
    // ------------------------------------------------------------------

    fn rule(&mut self) -> Result<Rule, ParseError> {
        let priority = if matches!(self.peek(), Tok::At) {
            self.bump();
            if !self.eat_ident("priority") {
                return Err(self.err("expected `priority` after `@`"));
            }
            self.expect(&Tok::LParen, "after `@priority`")?;
            let n = self.number("priority value")?;
            self.expect(&Tok::RParen, "after priority value")?;
            if n < 0.0 || n.fract() != 0.0 {
                return Err(self.err("priority must be a non-negative integer"));
            }
            Some(n as u32)
        } else {
            None
        };
        let cond = self.cond()?;
        self.expect(&Tok::Arrow, "between condition and behaviors")?;
        let mut behaviors = vec![self.behavior()?];
        while self.peek_behavior_keyword() {
            behaviors.push(self.behavior()?);
        }
        Ok(Rule {
            priority,
            cond,
            behaviors,
        })
    }

    fn peek_behavior_keyword(&self) -> bool {
        matches!(self.peek(), Tok::Ident(s)
            if matches!(s.as_str(), "balance" | "reserve" | "colocate" | "separate" | "pin"))
    }

    // ------------------------------------------------------------------
    // Conditions (or < and < primary).
    // ------------------------------------------------------------------

    fn cond(&mut self) -> Result<Cond, ParseError> {
        let mut lhs = self.and_cond()?;
        while self.eat_ident("or") {
            let rhs = self.and_cond()?;
            lhs = Cond::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_cond(&mut self) -> Result<Cond, ParseError> {
        let mut lhs = self.prim_cond()?;
        while self.eat_ident("and") {
            let rhs = self.prim_cond()?;
            lhs = Cond::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn prim_cond(&mut self) -> Result<Cond, ParseError> {
        if matches!(self.peek(), Tok::LParen) {
            self.bump();
            let inner = self.cond()?;
            self.expect(&Tok::RParen, "to close grouped condition")?;
            return Ok(inner);
        }
        if self.is_ident("true") && !matches!(self.peek2(), Tok::Dot | Tok::LParen) {
            self.bump();
            return Ok(Cond::True);
        }
        if self.is_ident("server") {
            self.bump();
            self.expect(&Tok::Dot, "after `server`")?;
            let res = self.res("server resource")?;
            let (stat, comp, val) = self.stat_comp_val()?;
            return Ok(Cond::Compare {
                feat: Feature::ServerRes(res),
                stat,
                comp,
                val,
            });
        }
        if self.is_ident("client") {
            self.bump();
            self.expect(&Tok::Dot, "after `client`")?;
            if !self.eat_ident("call") {
                return Err(self.err("expected `call` after `client.`"));
            }
            let (callee, fname) = self.call_target()?;
            let (stat, comp, val) = self.stat_comp_val()?;
            return Ok(Cond::Compare {
                feat: Feature::Call {
                    caller: Caller::Client,
                    callee,
                    fname,
                },
                stat,
                comp,
                val,
            });
        }
        // An actor reference heads the condition.
        let aref = self.actor_ref("condition subject")?;
        if self.eat_ident("in") {
            if !self.eat_ident("ref") {
                return Err(self.err("expected `ref` after `in`"));
            }
            self.expect(&Tok::LParen, "after `ref`")?;
            let owner = self.actor_ref("reference owner")?;
            self.expect(&Tok::Dot, "between owner and property")?;
            let prop = self.ident("property name")?;
            self.expect(&Tok::RParen, "to close `ref(...)`")?;
            return Ok(Cond::InRef {
                member: aref,
                owner,
                prop,
            });
        }
        self.expect(&Tok::Dot, "after actor reference")?;
        if self.is_ident("call") {
            self.bump();
            let (callee, fname) = self.call_target()?;
            let (stat, comp, val) = self.stat_comp_val()?;
            return Ok(Cond::Compare {
                feat: Feature::Call {
                    caller: Caller::Actor(aref),
                    callee,
                    fname,
                },
                stat,
                comp,
                val,
            });
        }
        let res = self.res("actor resource")?;
        let (stat, comp, val) = self.stat_comp_val()?;
        Ok(Cond::Compare {
            feat: Feature::ActorRes(aref, res),
            stat,
            comp,
            val,
        })
    }

    /// Parses `(callee.fname)` after `call`.
    fn call_target(&mut self) -> Result<(ActorRef, String), ParseError> {
        self.expect(&Tok::LParen, "after `call`")?;
        let callee = self.actor_ref("callee")?;
        self.expect(&Tok::Dot, "between callee and function")?;
        let fname = self.ident("function name")?;
        self.expect(&Tok::RParen, "to close `call(...)`")?;
        Ok((callee, fname))
    }

    /// Parses `.stat comp val`.
    fn stat_comp_val(&mut self) -> Result<(Stat, Comp, f64), ParseError> {
        self.expect(&Tok::Dot, "before statistic")?;
        let stat = self.stat()?;
        let comp = self.comp()?;
        let val = self.number("comparison value")?;
        Ok((stat, comp, val))
    }

    fn res(&mut self, what: &str) -> Result<Res, ParseError> {
        let name = self.ident(what)?;
        match name.as_str() {
            "cpu" => Ok(Res::Cpu),
            "mem" => Ok(Res::Mem),
            "net" => Ok(Res::Net),
            other => Err(self.err(format!(
                "unknown resource `{other}` (expected cpu, mem or net)"
            ))),
        }
    }

    fn stat(&mut self) -> Result<Stat, ParseError> {
        let name = self.ident("statistic")?;
        match name.as_str() {
            "count" => Ok(Stat::Count),
            "size" => Ok(Stat::Size),
            "perc" => Ok(Stat::Perc),
            other => Err(self.err(format!(
                "unknown statistic `{other}` (expected count, size or perc)"
            ))),
        }
    }

    fn comp(&mut self) -> Result<Comp, ParseError> {
        let c = match self.peek() {
            Tok::Lt => Comp::Lt,
            Tok::Gt => Comp::Gt,
            Tok::Le => Comp::Le,
            Tok::Ge => Comp::Ge,
            other => return Err(self.err(format!("expected comparison operator, found {other}"))),
        };
        self.bump();
        Ok(c)
    }

    /// Parses an actor reference: `Type(v)`, `any(v)`, `any`, or a bare
    /// identifier (variable or type; disambiguated by the analyzer).
    fn actor_ref(&mut self, what: &str) -> Result<ActorRef, ParseError> {
        let name = self.ident(what)?;
        let atype = if name == "any" {
            AType::Any
        } else {
            AType::Named(name.clone())
        };
        if matches!(self.peek(), Tok::LParen) {
            self.bump();
            let var = self.ident("variable name")?;
            self.expect(&Tok::RParen, "to close variable declaration")?;
            Ok(ActorRef::Decl(atype, var))
        } else if name == "any" {
            Ok(ActorRef::Type(AType::Any))
        } else {
            Ok(ActorRef::Var(name))
        }
    }

    fn atype(&mut self) -> Result<AType, ParseError> {
        let name = self.ident("actor type")?;
        Ok(if name == "any" {
            AType::Any
        } else {
            AType::Named(name)
        })
    }

    // ------------------------------------------------------------------
    // Behaviors.
    // ------------------------------------------------------------------

    fn behavior(&mut self) -> Result<Behavior, ParseError> {
        let name = self.ident("behavior")?;
        let beh = match name.as_str() {
            "balance" => {
                self.expect(&Tok::LParen, "after `balance`")?;
                self.expect(&Tok::LBrace, "to open type set")?;
                let mut types = vec![self.atype()?];
                while matches!(self.peek(), Tok::Comma) {
                    self.bump();
                    types.push(self.atype()?);
                }
                self.expect(&Tok::RBrace, "to close type set")?;
                self.expect(&Tok::Comma, "between type set and resource")?;
                let res = self.res("balance resource")?;
                self.expect(&Tok::RParen, "to close `balance(...)`")?;
                Behavior::Balance { types, res }
            }
            "reserve" => {
                self.expect(&Tok::LParen, "after `reserve`")?;
                let actor = self.actor_ref("reserve subject")?;
                self.expect(&Tok::Comma, "between actor and resource")?;
                let res = self.res("reserve resource")?;
                self.expect(&Tok::RParen, "to close `reserve(...)`")?;
                Behavior::Reserve { actor, res }
            }
            "colocate" | "separate" => {
                self.expect(&Tok::LParen, "after behavior")?;
                let a = self.actor_ref("first actor")?;
                self.expect(&Tok::Comma, "between actors")?;
                let b = self.actor_ref("second actor")?;
                self.expect(&Tok::RParen, "to close behavior")?;
                if name == "colocate" {
                    Behavior::Colocate(a, b)
                } else {
                    Behavior::Separate(a, b)
                }
            }
            "pin" => {
                self.expect(&Tok::LParen, "after `pin`")?;
                let a = self.actor_ref("pin subject")?;
                self.expect(&Tok::RParen, "to close `pin(...)`")?;
                Behavior::Pin(a)
            }
            other => {
                return Err(self.err(format!(
                "unknown behavior `{other}` (expected balance, reserve, colocate, separate or pin)"
            )))
            }
        };
        self.expect(&Tok::Semi, "after behavior")?;
        Ok(beh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Policy {
        parse_policy(src).unwrap()
    }

    #[test]
    fn parses_pagerank_rule() {
        let p = parse("server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Partition}, cpu);");
        assert_eq!(p.rules.len(), 1);
        let r = &p.rules[0];
        assert!(matches!(r.cond, Cond::Or(..)));
        assert_eq!(r.behaviors.len(), 1);
        assert!(matches!(
            r.behaviors[0],
            Behavior::Balance { ref types, res: Res::Cpu } if types.len() == 1
        ));
    }

    #[test]
    fn parses_metadata_rule() {
        let p = parse(
            "server.cpu.perc > 80 and \
             client.call(Folder(fo).open).perc > 40 and \
             File(fi) in ref(fo.files) => \
             reserve(fo, cpu); colocate(fo, fi);",
        );
        let r = &p.rules[0];
        // ((a and b) and c) left-associated.
        let Cond::And(lhs, rhs) = &r.cond else {
            panic!("expected and");
        };
        assert!(matches!(**rhs, Cond::InRef { .. }));
        assert!(matches!(**lhs, Cond::And(..)));
        assert_eq!(r.behaviors.len(), 2);
        assert!(matches!(
            r.behaviors[0],
            Behavior::Reserve {
                actor: ActorRef::Var(ref v),
                res: Res::Cpu
            } if v == "fo"
        ));
    }

    #[test]
    fn parses_halo_rule() {
        let p = parse("Player(p) in ref(Session(s).players) => pin(s); colocate(p, s);");
        let r = &p.rules[0];
        assert!(matches!(
            r.cond,
            Cond::InRef {
                member: ActorRef::Decl(AType::Named(ref m), ref p),
                owner: ActorRef::Decl(AType::Named(ref o), ref s),
                ref prop,
            } if m == "Player" && p == "p" && o == "Session" && s == "s" && prop == "players"
        ));
        assert_eq!(r.behaviors.len(), 2);
    }

    #[test]
    fn parses_actor_caller_feature() {
        let p =
            parse("VideoStream(v).call(UserInfo(u).track).count > 0 => pin(v); colocate(v, u);");
        let Cond::Compare {
            feat,
            stat,
            comp,
            val,
        } = &p.rules[0].cond
        else {
            panic!()
        };
        assert!(matches!(
            feat,
            Feature::Call {
                caller: Caller::Actor(ActorRef::Decl(AType::Named(ref t), _)),
                ..
            } if t == "VideoStream"
        ));
        assert_eq!(*stat, Stat::Count);
        assert_eq!(*comp, Comp::Gt);
        assert_eq!(*val, 0.0);
    }

    #[test]
    fn parses_true_rule() {
        let p = parse("true => pin(MovieReview(m));");
        assert_eq!(p.rules[0].cond, Cond::True);
    }

    #[test]
    fn parses_multiple_rules() {
        let p = parse(
            "server.cpu.perc > 80 => reserve(Partition(p1), cpu);\n\
             Partition(p2) in ref(p1x.children) => colocate(p1x, p2);\n\
             server.cpu.perc < 50 => balance({Partition}, cpu);",
        );
        assert_eq!(p.rules.len(), 3);
    }

    #[test]
    fn parses_any_and_multi_type_balance() {
        let p = parse("true => balance({any, Worker}, net);");
        assert!(matches!(
            p.rules[0].behaviors[0],
            Behavior::Balance { ref types, res: Res::Net }
                if types == &vec![AType::Any, AType::Named("Worker".into())]
        ));
    }

    #[test]
    fn parses_actor_resource_feature() {
        let p = parse("Worker(w).cpu.perc > 30 => separate(w, Table(t));");
        assert!(matches!(
            p.rules[0].cond,
            Cond::Compare {
                feat: Feature::ActorRes(ActorRef::Decl(..), Res::Cpu),
                stat: Stat::Perc,
                ..
            }
        ));
    }

    #[test]
    fn parses_priority_attribute() {
        let p = parse("@priority(120) true => balance({W}, cpu);");
        assert_eq!(p.rules[0].priority, Some(120));
    }

    #[test]
    fn parses_parenthesized_condition() {
        let p = parse("(server.cpu.perc > 80 or server.mem.perc > 80) and true => pin(any);");
        assert!(matches!(p.rules[0].cond, Cond::And(..)));
    }

    #[test]
    fn parses_comments() {
        let p = parse("# balance the workers\nserver.cpu.perc > 80 => balance({W}, cpu); // done");
        assert_eq!(p.rules.len(), 1);
    }

    #[test]
    fn error_on_missing_arrow() {
        let err = parse_policy("server.cpu.perc > 80 balance({W}, cpu);").unwrap_err();
        assert!(err.message.contains("`=>`"), "{err}");
    }

    #[test]
    fn error_on_unknown_behavior() {
        let err = parse_policy("true => explode(x);").unwrap_err();
        assert!(err.message.contains("unknown behavior"), "{err}");
    }

    #[test]
    fn error_on_unknown_resource() {
        let err = parse_policy("server.gpu.perc > 80 => pin(x);").unwrap_err();
        assert!(err.message.contains("unknown resource"), "{err}");
    }

    #[test]
    fn error_on_missing_semicolon() {
        let err = parse_policy("true => pin(x)").unwrap_err();
        assert!(err.message.contains("`;`"), "{err}");
    }

    #[test]
    fn error_on_bad_priority() {
        assert!(parse_policy("@priority(1.5) true => pin(x);").is_err());
        assert!(parse_policy("@later(1) true => pin(x);").is_err());
    }

    #[test]
    fn error_reports_position() {
        let err = parse_policy("true =>\n  oops(x);").unwrap_err();
        assert_eq!(err.pos.line, 2);
    }

    #[test]
    fn display_roundtrip_paper_rules() {
        let sources = [
            "server.cpu.perc > 80 and client.call(Folder(fo).open).perc > 40 and File(fi) in ref(fo.files) => reserve(fo, cpu); colocate(fo, fi);",
            "server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Partition}, cpu);",
            "server.net.perc > 80 or server.net.perc < 60 => balance({FrontEnd}, net);",
            "server.cpu.perc > 50 => reserve(VideoStream(v), cpu);",
            "VideoStream(v).call(UserInfo(u).track).count > 0 => pin(v); colocate(v, u);",
            "true => pin(MovieReview(m));",
            "Player(p) in ref(Session(s).players) => pin(s); colocate(p, s);",
        ];
        for src in sources {
            let once = parse(src);
            let printed = once.to_string();
            let twice = parse(&printed);
            assert_eq!(
                once, twice,
                "roundtrip failed for {src}\nprinted: {printed}"
            );
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn ident_strategy() -> impl Strategy<Value = String> {
        // Avoid keywords and ensure a letter first.
        "[a-zA-Z][a-zA-Z0-9_]{0,6}".prop_filter("not a keyword", |s| {
            !matches!(
                s.as_str(),
                "and"
                    | "or"
                    | "true"
                    | "in"
                    | "ref"
                    | "call"
                    | "server"
                    | "client"
                    | "any"
                    | "cpu"
                    | "mem"
                    | "net"
                    | "count"
                    | "size"
                    | "perc"
                    | "balance"
                    | "reserve"
                    | "colocate"
                    | "separate"
                    | "pin"
                    | "priority"
            )
        })
    }

    fn atype_strategy() -> impl Strategy<Value = AType> {
        prop_oneof![Just(AType::Any), ident_strategy().prop_map(AType::Named),]
    }

    fn actor_ref_strategy() -> impl Strategy<Value = ActorRef> {
        prop_oneof![
            (atype_strategy(), ident_strategy()).prop_map(|(t, v)| ActorRef::Decl(t, v)),
            Just(ActorRef::Type(AType::Any)),
            ident_strategy().prop_map(ActorRef::Var),
        ]
    }

    fn res_strategy() -> impl Strategy<Value = Res> {
        prop_oneof![Just(Res::Cpu), Just(Res::Mem), Just(Res::Net)]
    }

    fn stat_strategy() -> impl Strategy<Value = Stat> {
        prop_oneof![Just(Stat::Count), Just(Stat::Size), Just(Stat::Perc)]
    }

    fn comp_strategy() -> impl Strategy<Value = Comp> {
        prop_oneof![
            Just(Comp::Lt),
            Just(Comp::Gt),
            Just(Comp::Ge),
            Just(Comp::Le)
        ]
    }

    fn feature_strategy() -> impl Strategy<Value = Feature> {
        prop_oneof![
            res_strategy().prop_map(Feature::ServerRes),
            (actor_ref_strategy(), res_strategy()).prop_map(|(a, r)| Feature::ActorRes(a, r)),
            (
                prop_oneof![
                    Just(Caller::Client),
                    actor_ref_strategy().prop_map(Caller::Actor)
                ],
                actor_ref_strategy(),
                ident_strategy()
            )
                .prop_map(|(caller, callee, fname)| Feature::Call {
                    caller,
                    callee,
                    fname
                }),
        ]
    }

    fn leaf_cond_strategy() -> impl Strategy<Value = Cond> {
        prop_oneof![
            Just(Cond::True),
            (
                feature_strategy(),
                stat_strategy(),
                comp_strategy(),
                0u32..10_000u32
            )
                .prop_map(|(feat, stat, comp, val)| Cond::Compare {
                    feat,
                    stat,
                    comp,
                    val: val as f64
                }),
            (actor_ref_strategy(), actor_ref_strategy(), ident_strategy()).prop_map(
                |(member, owner, prop)| Cond::InRef {
                    member,
                    owner,
                    prop
                }
            ),
        ]
    }

    fn cond_strategy() -> impl Strategy<Value = Cond> {
        leaf_cond_strategy().prop_recursive(3, 12, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Cond::And(Box::new(a), Box::new(b))),
                (inner.clone(), inner).prop_map(|(a, b)| Cond::Or(Box::new(a), Box::new(b))),
            ]
        })
    }

    fn behavior_strategy() -> impl Strategy<Value = Behavior> {
        prop_oneof![
            (
                proptest::collection::vec(atype_strategy(), 1..4),
                res_strategy()
            )
                .prop_map(|(types, res)| Behavior::Balance { types, res }),
            (actor_ref_strategy(), res_strategy())
                .prop_map(|(actor, res)| Behavior::Reserve { actor, res }),
            (actor_ref_strategy(), actor_ref_strategy())
                .prop_map(|(a, b)| Behavior::Colocate(a, b)),
            (actor_ref_strategy(), actor_ref_strategy())
                .prop_map(|(a, b)| Behavior::Separate(a, b)),
            actor_ref_strategy().prop_map(Behavior::Pin),
        ]
    }

    fn rule_strategy() -> impl Strategy<Value = Rule> {
        (
            proptest::option::of(0u32..1000),
            cond_strategy(),
            proptest::collection::vec(behavior_strategy(), 1..4),
        )
            .prop_map(|(priority, cond, behaviors)| Rule {
                priority,
                cond,
                behaviors,
            })
    }

    proptest! {
        #[test]
        fn pretty_print_reparses_to_same_ast(rules in proptest::collection::vec(rule_strategy(), 1..5)) {
            let policy = Policy { rules };
            let printed = policy.to_string();
            let reparsed = parse_policy(&printed)
                .unwrap_or_else(|e| panic!("reparse failed: {e}\nsource: {printed}"));
            prop_assert_eq!(policy, reparsed);
        }

        #[test]
        fn parser_never_panics(src in "\\PC{0,200}") {
            let _ = parse_policy(&src);
        }
    }
}
