//! Lexical analysis for the EPL.

use std::fmt;

use crate::error::ParseError;

/// A source position (1-based line and column).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Pos {
    /// Line number, starting at 1.
    pub line: u32,
    /// Column number, starting at 1.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// One lexical token.
#[derive(Clone, PartialEq, Debug)]
pub enum Tok {
    /// Identifier or keyword (keywords are resolved by the parser).
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `.`
    Dot,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `=>`
    Arrow,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `@` (rule attributes, an extension)
    At,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Number(n) => write!(f, "number {n}"),
            Tok::LParen => f.write_str("`(`"),
            Tok::RParen => f.write_str("`)`"),
            Tok::LBrace => f.write_str("`{`"),
            Tok::RBrace => f.write_str("`}`"),
            Tok::Dot => f.write_str("`.`"),
            Tok::Comma => f.write_str("`,`"),
            Tok::Semi => f.write_str("`;`"),
            Tok::Arrow => f.write_str("`=>`"),
            Tok::Lt => f.write_str("`<`"),
            Tok::Gt => f.write_str("`>`"),
            Tok::Le => f.write_str("`<=`"),
            Tok::Ge => f.write_str("`>=`"),
            Tok::At => f.write_str("`@`"),
            Tok::Eof => f.write_str("end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Clone, PartialEq, Debug)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}

/// Tokenizes EPL source. Supports `#` and `//` line comments.
pub fn lex(source: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut out = Vec::new();
    let mut chars = source.chars().peekable();
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! bump {
        () => {{
            let c = chars.next();
            if c == Some('\n') {
                line += 1;
                col = 1;
            } else if c.is_some() {
                col += 1;
            }
            c
        }};
    }

    while let Some(&c) = chars.peek() {
        let pos = Pos { line, col };
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                bump!();
            }
            '#' => {
                while let Some(&c) = chars.peek() {
                    if c == '\n' {
                        break;
                    }
                    bump!();
                }
            }
            '/' => {
                bump!();
                if chars.peek() == Some(&'/') {
                    while let Some(&c) = chars.peek() {
                        if c == '\n' {
                            break;
                        }
                        bump!();
                    }
                } else {
                    return Err(ParseError::new(
                        pos,
                        "unexpected `/` (expected `//` comment)",
                    ));
                }
            }
            '(' => {
                bump!();
                out.push(Spanned {
                    tok: Tok::LParen,
                    pos,
                });
            }
            ')' => {
                bump!();
                out.push(Spanned {
                    tok: Tok::RParen,
                    pos,
                });
            }
            '{' => {
                bump!();
                out.push(Spanned {
                    tok: Tok::LBrace,
                    pos,
                });
            }
            '}' => {
                bump!();
                out.push(Spanned {
                    tok: Tok::RBrace,
                    pos,
                });
            }
            '.' => {
                bump!();
                out.push(Spanned { tok: Tok::Dot, pos });
            }
            ',' => {
                bump!();
                out.push(Spanned {
                    tok: Tok::Comma,
                    pos,
                });
            }
            ';' => {
                bump!();
                out.push(Spanned {
                    tok: Tok::Semi,
                    pos,
                });
            }
            '@' => {
                bump!();
                out.push(Spanned { tok: Tok::At, pos });
            }
            '=' => {
                bump!();
                if chars.peek() == Some(&'>') {
                    bump!();
                    out.push(Spanned {
                        tok: Tok::Arrow,
                        pos,
                    });
                } else {
                    return Err(ParseError::new(pos, "unexpected `=` (expected `=>`)"));
                }
            }
            '<' => {
                bump!();
                if chars.peek() == Some(&'=') {
                    bump!();
                    out.push(Spanned { tok: Tok::Le, pos });
                } else {
                    out.push(Spanned { tok: Tok::Lt, pos });
                }
            }
            '>' => {
                bump!();
                if chars.peek() == Some(&'=') {
                    bump!();
                    out.push(Spanned { tok: Tok::Ge, pos });
                } else {
                    out.push(Spanned { tok: Tok::Gt, pos });
                }
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                let mut seen_dot = false;
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() {
                        text.push(c);
                        bump!();
                    } else if c == '.' && !seen_dot {
                        // Lookahead: `80.5` is a float, `80.cpu` is not.
                        let mut clone = chars.clone();
                        clone.next();
                        if clone.peek().is_some_and(|d| d.is_ascii_digit()) {
                            seen_dot = true;
                            text.push(c);
                            bump!();
                        } else {
                            break;
                        }
                    } else {
                        break;
                    }
                }
                let value: f64 = text
                    .parse()
                    .map_err(|_| ParseError::new(pos, format!("invalid number `{text}`")))?;
                out.push(Spanned {
                    tok: Tok::Number(value),
                    pos,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut text = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        text.push(c);
                        bump!();
                    } else {
                        break;
                    }
                }
                out.push(Spanned {
                    tok: Tok::Ident(text),
                    pos,
                });
            }
            other => {
                return Err(ParseError::new(
                    pos,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        pos: Pos { line, col },
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_a_rule() {
        let t = toks("server.cpu.perc > 80 => balance({Partition}, cpu);");
        assert_eq!(
            t,
            vec![
                Tok::Ident("server".into()),
                Tok::Dot,
                Tok::Ident("cpu".into()),
                Tok::Dot,
                Tok::Ident("perc".into()),
                Tok::Gt,
                Tok::Number(80.0),
                Tok::Arrow,
                Tok::Ident("balance".into()),
                Tok::LParen,
                Tok::LBrace,
                Tok::Ident("Partition".into()),
                Tok::RBrace,
                Tok::Comma,
                Tok::Ident("cpu".into()),
                Tok::RParen,
                Tok::Semi,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn float_vs_member_access() {
        assert_eq!(toks("80.5"), vec![Tok::Number(80.5), Tok::Eof],);
        assert_eq!(
            toks("x.cpu"),
            vec![
                Tok::Ident("x".into()),
                Tok::Dot,
                Tok::Ident("cpu".into()),
                Tok::Eof
            ],
        );
        // `80.cpu` lexes as number then dot then ident.
        assert_eq!(
            toks("80.cpu"),
            vec![
                Tok::Number(80.0),
                Tok::Dot,
                Tok::Ident("cpu".into()),
                Tok::Eof
            ],
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("< <= > >="),
            vec![Tok::Lt, Tok::Le, Tok::Gt, Tok::Ge, Tok::Eof]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let t = toks("# a comment\ntrue // trailing\n=> pin(x);");
        assert_eq!(t[0], Tok::Ident("true".into()));
        assert_eq!(t[1], Tok::Arrow);
    }

    #[test]
    fn positions_track_lines() {
        let spanned = lex("a\n  b").unwrap();
        assert_eq!(spanned[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(spanned[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn lone_equals_is_an_error() {
        let err = lex("a = b").unwrap_err();
        assert!(err.to_string().contains("expected `=>`"), "{err}");
    }

    #[test]
    fn stray_character_is_an_error() {
        assert!(lex("a $ b").is_err());
        assert!(lex("a / b").is_err());
    }
}
