//! Abstract syntax of the EPL, mirroring Fig. 3.II of the paper.
//!
//! The [`std::fmt::Display`] implementations pretty-print an AST back to
//! concrete syntax that re-parses to the same AST (property-tested in the
//! parser module), which is also how compiled policies are logged.

use std::fmt;

/// A resource kind (`res` in the grammar).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Res {
    /// Processor time.
    Cpu,
    /// Memory.
    Mem,
    /// Network.
    Net,
}

impl Res {
    /// The concrete-syntax keyword.
    pub const fn keyword(self) -> &'static str {
        match self {
            Res::Cpu => "cpu",
            Res::Mem => "mem",
            Res::Net => "net",
        }
    }
}

/// A statistic over a feature (`stat`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Stat {
    /// Number of messages per time unit.
    Count,
    /// Bytes.
    Size,
    /// Percentage.
    Perc,
}

impl Stat {
    /// The concrete-syntax keyword.
    pub const fn keyword(self) -> &'static str {
        match self {
            Stat::Count => "count",
            Stat::Size => "size",
            Stat::Perc => "perc",
        }
    }
}

/// A comparison operator (`comp`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Comp {
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<=`
    Le,
}

impl Comp {
    /// The concrete-syntax operator.
    pub const fn symbol(self) -> &'static str {
        match self {
            Comp::Lt => "<",
            Comp::Gt => ">",
            Comp::Ge => ">=",
            Comp::Le => "<=",
        }
    }

    /// Applies the comparison.
    pub fn eval(self, lhs: f64, rhs: f64) -> bool {
        match self {
            Comp::Lt => lhs < rhs,
            Comp::Gt => lhs > rhs,
            Comp::Ge => lhs >= rhs,
            Comp::Le => lhs <= rhs,
        }
    }
}

/// An actor type name (`atype`): a named type or the wildcard `any`.
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
pub enum AType {
    /// Matches every actor type.
    Any,
    /// A specific type by name.
    Named(String),
}

impl fmt::Display for AType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AType::Any => f.write_str("any"),
            AType::Named(n) => f.write_str(n),
        }
    }
}

/// An actor reference (`actor`): `Type(var)`, bare `Type`, or bare `var`.
///
/// `Type(var)` *declares* `var` inline; bare `var` must have been declared
/// somewhere else in the same rule.
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
pub enum ActorRef {
    /// `Type(v)` — typed reference declaring variable `v`.
    Decl(AType, String),
    /// `Type` — anonymous typed reference.
    Type(AType),
    /// `v` — a previously declared variable.
    Var(String),
}

impl fmt::Display for ActorRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActorRef::Decl(t, v) => write!(f, "{t}({v})"),
            ActorRef::Type(t) => write!(f, "{t}"),
            ActorRef::Var(v) => f.write_str(v),
        }
    }
}

/// Who calls (`cllr`): external clients or actors.
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
pub enum Caller {
    /// External clients.
    Client,
    /// A calling actor.
    Actor(ActorRef),
}

impl fmt::Display for Caller {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Caller::Client => f.write_str("client"),
            Caller::Actor(a) => a.fmt(f),
        }
    }
}

/// A runtime feature (`feat`).
#[derive(Clone, PartialEq, Debug)]
pub enum Feature {
    /// `server.res` — server resource usage (`[f-rs]`).
    ServerRes(Res),
    /// `actor.res` — actor resource usage (`[f-ra]`).
    ActorRes(ActorRef, Res),
    /// `cllr.call(actor.fname)` — interaction (`[f-ia]`).
    Call {
        /// The caller.
        caller: Caller,
        /// The callee actor.
        callee: ActorRef,
        /// The invoked function name.
        fname: String,
    },
}

impl fmt::Display for Feature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Feature::ServerRes(r) => write!(f, "server.{}", r.keyword()),
            Feature::ActorRes(a, r) => write!(f, "{a}.{}", r.keyword()),
            Feature::Call {
                caller,
                callee,
                fname,
            } => write!(f, "{caller}.call({callee}.{fname})"),
        }
    }
}

/// A condition (`cond`).
#[derive(Clone, PartialEq, Debug)]
pub enum Cond {
    /// `true`
    True,
    /// `cond or cond`
    Or(Box<Cond>, Box<Cond>),
    /// `cond and cond`
    And(Box<Cond>, Box<Cond>),
    /// `feat.stat comp val`
    Compare {
        /// The measured feature.
        feat: Feature,
        /// Which statistic of it.
        stat: Stat,
        /// Comparison operator.
        comp: Comp,
        /// Bound value.
        val: f64,
    },
    /// `actor in ref(actor.pname)` — reference-containment (`[f-ia]`).
    InRef {
        /// The member actor.
        member: ActorRef,
        /// The owning actor.
        owner: ActorRef,
        /// The reference property on the owner.
        prop: String,
    },
}

impl Cond {
    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, parent_is_and: bool) -> fmt::Result {
        match self {
            Cond::True => f.write_str("true"),
            Cond::Or(a, b) => {
                // `or` under `and` needs parentheses to round-trip.
                if parent_is_and {
                    f.write_str("(")?;
                }
                a.fmt_prec(f, false)?;
                f.write_str(" or ")?;
                // A right child that is itself an `or` must be
                // parenthesized to preserve right-nesting (the parser is
                // left-associative).
                if matches!(**b, Cond::Or(..)) {
                    f.write_str("(")?;
                    b.fmt_prec(f, false)?;
                    f.write_str(")")?;
                } else {
                    b.fmt_prec(f, false)?;
                }
                if parent_is_and {
                    f.write_str(")")?;
                }
                Ok(())
            }
            Cond::And(a, b) => {
                a.fmt_prec(f, true)?;
                f.write_str(" and ")?;
                if matches!(**b, Cond::And(..)) {
                    f.write_str("(")?;
                    b.fmt_prec(f, false)?;
                    f.write_str(")")?;
                } else {
                    b.fmt_prec(f, true)?;
                }
                Ok(())
            }
            Cond::Compare {
                feat,
                stat,
                comp,
                val,
            } => write!(f, "{feat}.{} {} {val}", stat.keyword(), comp.symbol()),
            Cond::InRef {
                member,
                owner,
                prop,
            } => write!(f, "{member} in ref({owner}.{prop})"),
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, false)
    }
}

/// An elasticity behavior (`beh`).
#[derive(Clone, PartialEq, Debug)]
pub enum Behavior {
    /// `balance({T1, T2}, res)` — resource rule `[r-r]`.
    Balance {
        /// Actor types eligible for rebalancing migration.
        types: Vec<AType>,
        /// The critical resource to balance.
        res: Res,
    },
    /// `reserve(actor, res)` — resource rule `[r-r]`.
    Reserve {
        /// Actors to host on dedicated servers.
        actor: ActorRef,
        /// The resource the dedicated server must have available.
        res: Res,
    },
    /// `colocate(a, b)` — interaction rule `[r-i]`.
    Colocate(ActorRef, ActorRef),
    /// `separate(a, b)` — interaction rule `[r-i]`.
    Separate(ActorRef, ActorRef),
    /// `pin(actor)` — interaction rule `[r-i]`.
    Pin(ActorRef),
}

impl Behavior {
    /// Returns `true` for resource elasticity behaviors (`[r-r]`,
    /// executed by GEMs) and `false` for interaction behaviors (`[r-i]`,
    /// executed by LEMs).
    pub fn is_resource(&self) -> bool {
        matches!(self, Behavior::Balance { .. } | Behavior::Reserve { .. })
    }

    /// Default conflict-resolution priority (higher wins), per §4.3 where
    /// `balance` is prioritized over `colocate` so target servers only
    /// accept actors they have resources for.
    pub fn default_priority(&self) -> u32 {
        match self {
            Behavior::Balance { .. } => 100,
            Behavior::Reserve { .. } => 90,
            Behavior::Colocate(..) => 50,
            Behavior::Separate(..) => 40,
            Behavior::Pin(..) => 110,
        }
    }
}

impl fmt::Display for Behavior {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Behavior::Balance { types, res } => {
                f.write_str("balance({")?;
                for (i, t) in types.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, "}}, {})", res.keyword())
            }
            Behavior::Reserve { actor, res } => write!(f, "reserve({actor}, {})", res.keyword()),
            Behavior::Colocate(a, b) => write!(f, "colocate({a}, {b})"),
            Behavior::Separate(a, b) => write!(f, "separate({a}, {b})"),
            Behavior::Pin(a) => write!(f, "pin({a})"),
        }
    }
}

/// One elasticity rule: `cond => beh; beh; ... ;` with an optional
/// `@priority(N)` attribute (extension) overriding behavior priorities.
#[derive(Clone, PartialEq, Debug)]
pub struct Rule {
    /// Optional priority override for all behaviors of this rule.
    pub priority: Option<u32>,
    /// The trigger condition.
    pub cond: Cond,
    /// Behaviors to apply when the condition holds.
    pub behaviors: Vec<Behavior>,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(p) = self.priority {
            write!(f, "@priority({p}) ")?;
        }
        write!(f, "{} =>", self.cond)?;
        for b in &self.behaviors {
            write!(f, " {b};")?;
        }
        Ok(())
    }
}

/// A policy: the ordered set of rules (`pol`).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Policy {
    /// The rules, in source order.
    pub rules: Vec<Rule>,
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.rules.iter().enumerate() {
            if i > 0 {
                f.write_str("\n")?;
            }
            r.fmt(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comp_eval() {
        assert!(Comp::Lt.eval(1.0, 2.0));
        assert!(Comp::Gt.eval(3.0, 2.0));
        assert!(Comp::Ge.eval(2.0, 2.0));
        assert!(Comp::Le.eval(2.0, 2.0));
        assert!(!Comp::Lt.eval(2.0, 2.0));
    }

    #[test]
    fn display_rule() {
        let rule = Rule {
            priority: None,
            cond: Cond::Compare {
                feat: Feature::ServerRes(Res::Cpu),
                stat: Stat::Perc,
                comp: Comp::Gt,
                val: 80.0,
            },
            behaviors: vec![Behavior::Balance {
                types: vec![AType::Named("Partition".into())],
                res: Res::Cpu,
            }],
        };
        assert_eq!(
            rule.to_string(),
            "server.cpu.perc > 80 => balance({Partition}, cpu);"
        );
    }

    #[test]
    fn display_parenthesizes_or_under_and() {
        let or = Cond::Or(
            Box::new(Cond::True),
            Box::new(Cond::Compare {
                feat: Feature::ServerRes(Res::Net),
                stat: Stat::Perc,
                comp: Comp::Lt,
                val: 60.0,
            }),
        );
        let and = Cond::And(Box::new(or), Box::new(Cond::True));
        assert_eq!(and.to_string(), "(true or server.net.perc < 60) and true");
    }

    #[test]
    fn display_call_feature() {
        let c = Cond::Compare {
            feat: Feature::Call {
                caller: Caller::Client,
                callee: ActorRef::Decl(AType::Named("Folder".into()), "fo".into()),
                fname: "open".into(),
            },
            stat: Stat::Perc,
            comp: Comp::Gt,
            val: 40.0,
        };
        assert_eq!(c.to_string(), "client.call(Folder(fo).open).perc > 40");
    }

    #[test]
    fn display_inref_and_behaviors() {
        let r = Rule {
            priority: Some(7),
            cond: Cond::InRef {
                member: ActorRef::Decl(AType::Named("Player".into()), "p".into()),
                owner: ActorRef::Decl(AType::Named("Session".into()), "s".into()),
                prop: "players".into(),
            },
            behaviors: vec![
                Behavior::Pin(ActorRef::Var("s".into())),
                Behavior::Colocate(ActorRef::Var("p".into()), ActorRef::Var("s".into())),
            ],
        };
        assert_eq!(
            r.to_string(),
            "@priority(7) Player(p) in ref(Session(s).players) => pin(s); colocate(p, s);"
        );
    }

    #[test]
    fn behavior_classification() {
        assert!(Behavior::Balance {
            types: vec![],
            res: Res::Cpu
        }
        .is_resource());
        assert!(Behavior::Reserve {
            actor: ActorRef::Type(AType::Any),
            res: Res::Cpu
        }
        .is_resource());
        assert!(!Behavior::Pin(ActorRef::Type(AType::Any)).is_resource());
        assert!(
            !Behavior::Colocate(ActorRef::Type(AType::Any), ActorRef::Type(AType::Any))
                .is_resource()
        );
    }
}
