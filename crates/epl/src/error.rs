//! Error and warning types for the EPL compiler.

use std::fmt;

use crate::token::Pos;

/// A parse error with source position.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Where the error occurred.
    pub pos: Pos,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    /// Creates a parse error.
    pub fn new(pos: Pos, message: impl Into<String>) -> Self {
        ParseError {
            pos,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

/// A semantic (schema-binding) error.
#[derive(Clone, Debug, PartialEq)]
pub struct SemanticError {
    /// 0-based index of the offending rule.
    pub rule: usize,
    /// Human-readable description.
    pub message: String,
}

impl SemanticError {
    /// Creates a semantic error for rule `rule`.
    pub fn new(rule: usize, message: impl Into<String>) -> Self {
        SemanticError {
            rule,
            message: message.into(),
        }
    }
}

impl fmt::Display for SemanticError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error in rule {}: {}", self.rule + 1, self.message)
    }
}

impl std::error::Error for SemanticError {}

/// Severity of a compiler warning.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize)]
pub enum Severity {
    /// A probable mistake (e.g. `colocate` and `separate` on one pair).
    Warning,
    /// Worth knowing; resolved by runtime priorities (§4.3).
    Note,
}

/// A conflict-detector diagnostic, as issued by the paper's compiler.
#[derive(Clone, Debug, PartialEq)]
pub struct Warning {
    /// Severity class.
    pub severity: Severity,
    /// Indices of the rules involved.
    pub rules: Vec<usize>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Warning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.severity {
            Severity::Warning => "warning",
            Severity::Note => "note",
        };
        let rules: Vec<String> = self.rules.iter().map(|r| (r + 1).to_string()).collect();
        write!(f, "{tag} (rules {}): {}", rules.join(", "), self.message)
    }
}

/// Any failure of [`compile`](crate::compile).
#[derive(Clone, Debug, PartialEq)]
pub enum CompileError {
    /// The source did not parse.
    Parse(ParseError),
    /// The policy does not fit the actor schema.
    Semantic(SemanticError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => e.fmt(f),
            CompileError::Semantic(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let p = ParseError::new(Pos { line: 2, col: 5 }, "oops");
        assert_eq!(p.to_string(), "parse error at 2:5: oops");
        let s = SemanticError::new(0, "bad type");
        assert_eq!(s.to_string(), "error in rule 1: bad type");
        let w = Warning {
            severity: Severity::Note,
            rules: vec![0, 2],
            message: "priority".into(),
        };
        assert_eq!(w.to_string(), "note (rules 1, 3): priority");
    }
}
